//! The multi-process transport: shard processes over Unix-domain sockets.
//!
//! `--transport proc` forks `shards` child processes of the current
//! executable. Each child rebuilds the identical problem from the spec
//! file (see [`super::run::build`]), runs a [`BspExecutor`] over its
//! contiguous slice of PEs with one `WorkerPool` per process, and carries
//! ghost blocks to remote PEs as length-prefixed [`frame`](super::frame)
//! frames over a full mesh of Unix-domain sockets. Locally owned edges
//! stay in the in-process [`Mailbox`]; one reader thread per peer
//! connection drains remote ghost frames into the same mailbox, so the
//! executor's acquire path is byte-for-byte the shared-memory path.
//!
//! # Bootstrap protocol
//!
//! The parent binds `parent.sock` in a private rendezvous directory,
//! writes the spec file and spawns the children (`QUAKE_PROC_ROLE=shard`
//! plus id/dir in the environment — [`shard_host_hook`] intercepts them at
//! the top of the host binary's `main`). Each child dials the parent and
//! sends `Hello`, binds its own `shard<k>.sock`, dials every lower shard
//! and accepts every higher one (every child binds before it dials, so
//! the mesh cannot deadlock), then sends `Ready`. The parent runs the
//! socket microbenchmark against shard 0 — 64 `Ping`/`Pong` round trips
//! give Eq. (2)'s `T_l` (half the median RTT) and eight 128-KiB
//! `Bulk`/`BulkAck` transfers give `T_w` — and releases everyone with a
//! `Go` frame carrying the measured parameters. The reported link is
//! therefore *measured on this run's fabric*, never a preset.
//!
//! # Fault domain
//!
//! The socket fabric is a supervised fault domain with a five-rung
//! recovery ladder: resend → deadline + backoff → shard respawn →
//! ensemble retry → typed failure.
//!
//! *Wire chaos.* With `--wire-fault-rate` nonzero, a seeded
//! [`WireFaultPlan`] samples every outgoing ghost frame and the injector
//! mangles the live byte stream: payload corruption and tail-zeroing
//! truncation (caught by the frame checksum, recovered by `Resend` +
//! cache replay), artificial delays (billed to the delay histogram), one
//! connection reset per peer (recovered by redial + cache replay), and
//! one hung-peer stall per process (recovered by shard respawn). Every
//! injected event lands in the [`FaultReport`] ledger on the injecting
//! side, so `injected == detected == recovered` holds per process and
//! survives summation — a shard that dies takes its whole ledger with
//! it, never a partial triple.
//!
//! *Deadlines + heartbeats.* Every shard heartbeats its peers and the
//! parent at `conn-timeout / 4`. Steady-state reads carry `conn-timeout`
//! deadlines (the parent's result readers included — a hung-but-alive
//! peer can no longer block the ensemble forever). An acquire that times
//! out checks the heartbeat clock: a peer that is dead or silent past
//! the deadline is reported to the parent with a `Suspect` frame, and
//! only after every degraded-wait round expires does the waiter fail
//! with a typed [`TransportError::PeerSuspect`].
//!
//! *Per-shard supervised restart.* The parent respawns only the dead or
//! suspect shard (within `--restart-budget`), replays the stored `Go`,
//! and the survivors hold in degraded waits: their posts keep landing in
//! the resend caches, the respawned child replays to the current step
//! from the spec (the run is a pure function of it), and reconnecting
//! sides replay their caches — the constant-`x` replay invariant makes
//! every superseding re-delivery bitwise-harmless. Only when the budget
//! is exhausted does the parent fall back to the one-shot whole-ensemble
//! retry, and past that to a typed error.

use super::frame::{self, read_frame, write_frame, FrameError, FrameKind};
use super::wire::{
    decode_ghost, decode_ghost_batch, decode_result, encode_ghost, encode_ghost_batch,
    encode_result, ByteReader, ByteWriter, PeResult, RunSpec, ShardResult,
};
use super::{
    block_checksum_vec3, ghost_edges, AcquireInfo, LinkParams, Mailbox, Transport, TransportError,
    TransportKind,
};
use crate::executor::{BspExecutor, ExecutionReport, PeCounters, PhaseWalls};
use crate::transport::run::{Built, Incident, RunOutput};
use quake_core::fault::{
    mix64, record_delay_us, FaultReport, RetryBackoff, WireFaultKind, WireFaultPlan,
};
use quake_core::model::maxrate::node_of;
use quake_core::telemetry::{FlowKind, FlowRec, ShardTrace, TelemetrySnapshot, TraceContext};
use quake_sparse::dense::Vec3;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::ErrorKind;
use std::net::Shutdown;
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Environment marker selecting the shard-child entry point.
const ENV_ROLE: &str = "QUAKE_PROC_ROLE";
/// The child's shard id.
const ENV_ID: &str = "QUAKE_PROC_ID";
/// The rendezvous directory holding the spec file and sockets.
const ENV_DIR: &str = "QUAKE_PROC_DIR";
/// Respawn generation (0 = first launch). Nonzero disarms wire chaos so
/// a recovery run cannot re-injure itself.
const ENV_ATTEMPT: &str = "QUAKE_PROC_ATTEMPT";
/// Test knob: `"<shard>:<step>"` makes that shard exit hard at that step.
const ENV_KILL: &str = "QUAKE_PROC_KILL";
/// Test knob: marker-file path making [`ENV_KILL`] fire only once.
const ENV_KILL_ONCE: &str = "QUAKE_PROC_KILL_ONCE";

/// Shard `k`'s contiguous owned-PE slice — the same near-equal chunking
/// the executor uses for its worker assignment.
pub fn shard_pe_range(parts: usize, shards: usize, k: usize) -> Range<usize> {
    (parts * k / shards)..(parts * (k + 1) / shards)
}

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

/// The steady-state mailbox deadline: the test override when set, the
/// spec's `--conn-timeout` otherwise.
fn steady_timeout(conn_timeout: Duration) -> Duration {
    std::env::var("QUAKE_TRANSPORT_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(conn_timeout)
}

fn attempt_from_env() -> u64 {
    std::env::var(ENV_ATTEMPT)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Intercepts shard-child invocations. Must be the first statement of
/// `main` in every binary that hosts a proc parent (the CLI, the
/// conformance suite, the bench harness): the parent re-executes
/// `current_exe()`, and this hook routes those children into the shard
/// protocol before any argument parsing can run. Returns immediately in
/// every other process.
pub fn shard_host_hook() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("shard") {
        return;
    }
    let code = match child_main() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("quake proc shard: {e}");
            1
        }
    };
    std::process::exit(code);
}

// ---------------------------------------------------------------------------
// Child-side fabric: peers, chaos injector, reconnects, heartbeats.
// ---------------------------------------------------------------------------

/// One peer connection: swappable serialized writer, per-edge resend
/// cache, liveness/heartbeat state and the injector's per-connection
/// bookkeeping.
struct Peer {
    /// The reporting shard id of the peer.
    shard: usize,
    /// The writer half; `None` while disconnected. Replaced in place on
    /// reconnect so every handle stays valid across epochs.
    conn: Mutex<Option<UnixStream>>,
    /// Latest posted frame (kind + payload) per resend-cache key on this
    /// connection: directed `(from, to)` PE edges carry `Ghost` frames,
    /// and `(usize::MAX, dest node)` keys carry the node relay's merged
    /// `GhostBatch` frames (PE indices never reach `usize::MAX`, so the
    /// key spaces are disjoint). A `Resend` request — and every
    /// (re)connect — replays the whole cache with each entry's own kind;
    /// superseded steps are bitwise-identical by the constant-`x`
    /// invariant, so over-delivery is harmless.
    cache: Mutex<ResendCache>,
    alive: AtomicBool,
    /// The peer sent an orderly `Bye`: its posted blocks stay
    /// acquirable and nothing further is expected from it.
    done: AtomicBool,
    /// Bumped on every (re)connect; a reader of a superseded epoch
    /// stands down without touching the fresh connection's state.
    epoch: AtomicU64,
    /// Heartbeat clock: milliseconds (on the fabric origin) of the last
    /// frame heard from this peer.
    last_heard_ms: AtomicU64,
    /// Ghost-frame sequence number driving the wire-fault sampler.
    seq: AtomicU64,
    /// Injected corrupt/truncate events whose `Resend` credit is still
    /// in flight (FIFO — frames are ordered per connection).
    pending_damage: Mutex<VecDeque<WireFaultKind>>,
    /// An injected reset awaiting its reconnect credit.
    pending_reset: AtomicBool,
    /// At most one injected reset per peer connection.
    reset_used: AtomicBool,
    /// `epoch + 1` of the last `Suspect` escalation — one per epoch.
    suspected_epoch: AtomicU64,
    /// A redial thread for this peer is already running.
    redialing: AtomicBool,
}

impl Peer {
    fn new(shard: usize) -> Self {
        Peer {
            shard,
            conn: Mutex::new(None),
            cache: Mutex::new(HashMap::new()),
            alive: AtomicBool::new(false),
            done: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            last_heard_ms: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            pending_damage: Mutex::new(VecDeque::new()),
            pending_reset: AtomicBool::new(false),
            reset_used: AtomicBool::new(false),
            suspected_epoch: AtomicU64::new(0),
            redialing: AtomicBool::new(false),
        }
    }

    fn send(&self, kind: FrameKind, payload: &[u8]) -> Result<(), TransportError> {
        let mut g = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        let Some(w) = g.as_mut() else {
            return Err(TransportError::PeerDisconnected { shard: self.shard });
        };
        write_frame(w, kind, payload).map_err(|_| {
            self.alive.store(false, Ordering::Release);
            TransportError::PeerDisconnected { shard: self.shard }
        })
    }

    /// Writes pre-encoded (injector-mangled) frame bytes.
    fn send_raw(&self, bytes: &[u8]) -> Result<(), TransportError> {
        use std::io::Write as _;
        let mut g = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        let Some(w) = g.as_mut() else {
            return Err(TransportError::PeerDisconnected { shard: self.shard });
        };
        w.write_all(bytes).map_err(|_| {
            self.alive.store(false, Ordering::Release);
            TransportError::PeerDisconnected { shard: self.shard }
        })
    }
}

/// `(edge index, scheduled length)` by directed edge — shared by the link
/// and its reader threads.
type EdgeMap = HashMap<(usize, usize), (usize, usize)>;

/// Resend-cache key namespace for the relay's merged batches: `(BATCH_KEY,
/// dest node)` can never collide with a `(from, to)` PE-edge key.
const BATCH_KEY: usize = usize::MAX;

/// The two-level exchange topology of a `--nodes N` run: shards chunk
/// contiguously into nodes, the lowest shard of each node is its leader,
/// and cross-node ghost blocks route member → leader → remote leader →
/// remote member, with the leader-to-leader hop carrying exactly one
/// merged [`FrameKind::GhostBatch`] per (node, node) pair per step.
/// Intra-node edges keep the direct per-edge path.
struct NodeRelay {
    /// Our shard's node.
    node: usize,
    /// Our node's leader shard (we are the leader iff it is our id).
    leader: usize,
    /// Shard -> node.
    shard_node: Vec<usize>,
    /// Node -> leader shard.
    leaders: Vec<usize>,
    /// PE -> owning shard.
    pe_owner: Vec<usize>,
    /// Leader only: per remote node, the statically known set of directed
    /// cross edges our node injects into it — the merged block's
    /// manifest, complete when every edge has contributed a step.
    expected: Vec<HashSet<(usize, usize)>>,
    /// Leader only: partial merged blocks keyed `(step, dest node)`.
    /// Replays may recreate flushed entries; the constant-`x` invariant
    /// makes the duplicate flush harmless, and each flush GCs stale
    /// partials of older steps for the same destination.
    pending: Mutex<HashMap<(u64, usize), MergedBlock>>,
}

/// One partial merged block at a leader: per directed cross edge, the
/// contributed boundary values, in deterministic (BTreeMap) edge order so
/// the flushed frame is byte-stable across replays.
type MergedBlock = BTreeMap<(usize, usize), Vec<Vec3>>;

/// Per-connection resend cache: latest posted frame (kind + payload)
/// keyed by directed `(from, to)` PE edge, or `(usize::MAX, dest node)`
/// for the node relay's merged batches.
type ResendCache = HashMap<(usize, usize), (FrameKind, Vec<u8>)>;

impl NodeRelay {
    /// Builds the relay topology for this shard, or `None` for flat runs
    /// (`nodes == 0`), single-shard runs, and one-node-per-shard cases
    /// where no aggregation is possible.
    fn build(
        id: usize,
        parts: usize,
        shards: usize,
        nodes: usize,
        edge_list: &[super::GhostEdge],
    ) -> Option<NodeRelay> {
        if nodes == 0 || shards < 2 || nodes > shards {
            return None;
        }
        let pe_owner: Vec<usize> = (0..parts).map(|q| node_of(parts, shards, q)).collect();
        let shard_node: Vec<usize> = (0..shards).map(|k| node_of(shards, nodes, k)).collect();
        let leaders: Vec<usize> = (0..nodes)
            .map(|n| {
                shard_node
                    .iter()
                    .position(|&m| m == n)
                    .expect("node chunks are non-empty")
            })
            .collect();
        let node = shard_node[id];
        let leader = leaders[node];
        let mut expected: Vec<HashSet<(usize, usize)>> = vec![HashSet::new(); nodes];
        if leader == id {
            for e in edge_list {
                let a = shard_node[pe_owner[e.from]];
                let b = shard_node[pe_owner[e.to]];
                if a == node && b != node {
                    expected[b].insert((e.from, e.to));
                }
            }
        }
        Some(NodeRelay {
            node,
            leader,
            shard_node,
            leaders,
            pe_owner,
            expected,
            pending: Mutex::new(HashMap::new()),
        })
    }

    /// The node owning the shard that owns PE `pe`.
    fn node_of_pe(&self, pe: usize) -> Option<usize> {
        self.pe_owner.get(pe).map(|&k| self.shard_node[k])
    }
}

/// Folds one cross-node contribution into the leader's aggregation
/// buffer and, when the merged (node, node) block for this step is
/// complete, emits exactly one `GhostBatch` frame to the remote node's
/// leader (caching it for replay under the batch key namespace).
fn relay_contribution(
    fabric: &Fabric,
    step: u64,
    from: usize,
    to: usize,
    block: &[Vec3],
) -> Result<(), TransportError> {
    let relay = fabric
        .relay
        .as_ref()
        .expect("relay routing gated by caller");
    let dest = relay
        .node_of_pe(to)
        .ok_or(TransportError::UnknownEdge { from, to })?;
    let complete = {
        let mut pending = relay.pending.lock().unwrap_or_else(|p| p.into_inner());
        let entry = pending.entry((step, dest)).or_default();
        entry.insert((from, to), block.to_vec());
        if entry.len() < relay.expected[dest].len() {
            None
        } else {
            let subs = pending.remove(&(step, dest)).expect("entry just filled");
            // A flush at this step supersedes any stale partials the
            // replay machinery left behind for older steps.
            pending.retain(|&(s, d), _| d != dest || s > step);
            Some(subs)
        }
    };
    let Some(subs) = complete else { return Ok(()) };
    let refs: Vec<(u64, usize, usize, &[Vec3])> = subs
        .iter()
        .map(|(&(f, t), b)| (step, f, t, b.as_slice()))
        .collect();
    let payload = encode_ghost_batch(&refs);
    let peer = fabric.peer(relay.leaders[dest])?;
    peer.cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert((BATCH_KEY, dest), (FrameKind::GhostBatch, payload.clone()));
    ghost_send(fabric, peer, FrameKind::GhostBatch, &payload)
}

/// Everything the connection machinery shares: the peer table, the
/// mailbox the readers deliver into, the chaos plan, and the wire-fault
/// ledger. One per shard process.
struct Fabric {
    /// Our shard id.
    id: usize,
    /// The rendezvous directory (redial targets live here).
    dir: PathBuf,
    /// The `--conn-timeout` deadline governing bootstrap, heartbeats,
    /// staleness and degraded waits.
    conn_timeout: Duration,
    /// Whether the supervised-restart machinery (degraded waits, redial,
    /// rejoin accepts) is armed.
    respawn: bool,
    restart_budget: u64,
    /// The seeded wire-fault plan (rate 0 when disarmed).
    plan: WireFaultPlan,
    /// Epoch for the heartbeat clock.
    origin: Instant,
    /// The wire-fault ledger this process injects into.
    wire: Mutex<FaultReport>,
    /// Serialized writer to the parent (`None` in unit tests).
    parent: Option<Mutex<UnixStream>>,
    /// At most one injected stall per process.
    stall_used: AtomicBool,
    /// Run teardown: stops heartbeat/accept/redial threads.
    stop: AtomicBool,
    /// Peer table by shard id (`None` at our own slot).
    peers: Vec<Option<Arc<Peer>>>,
    mailbox: Arc<Mailbox>,
    edges: Arc<EdgeMap>,
    /// The two-level node topology (`--nodes N`); `None` runs flat.
    relay: Option<NodeRelay>,
    /// Emulated inter-node link latency (`--wire-latency`): every ghost
    /// frame to a shard on a different node is held this long on the
    /// sender, netem-style, so a single host can price a fabric whose
    /// inter-node leg is genuinely slower than its intra-node leg.
    /// `None` leaves the raw socket. Carries the shard → node map so the
    /// no-aggregation ablation arm (`aggregate false`) prices the same
    /// placement without a relay.
    wire_delay: Option<(Duration, Vec<usize>)>,
    /// Cross-process flow endpoints (ghost post/acquire instants on the
    /// fabric clock) for the merged trace. Empty when tracing is off.
    flows: Mutex<Vec<FlowRec>>,
    /// Whether [`Fabric::note_flow`] records anything (`spec.trace`).
    flows_enabled: bool,
    /// Flow endpoints discarded past [`MAX_FLOWS`].
    flows_dropped: AtomicU64,
}

/// Flow-endpoint retention cap per shard process; past it endpoints are
/// counted in `flows_dropped` instead of growing without bound.
const MAX_FLOWS: usize = 1 << 20;

impl Fabric {
    fn peer(&self, shard: usize) -> Result<&Arc<Peer>, TransportError> {
        match self.peers.get(shard) {
            Some(Some(p)) => Ok(p),
            _ => Err(TransportError::PeerDisconnected { shard }),
        }
    }

    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// The peer has been silent past the deadline.
    fn stale(&self, peer: &Peer) -> bool {
        let heard = peer.last_heard_ms.load(Ordering::Relaxed);
        self.now_ms().saturating_sub(heard) > self.conn_timeout.as_millis() as u64
    }

    fn ledger<R>(&self, f: impl FnOnce(&mut FaultReport) -> R) -> R {
        let mut l = self.wire.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut l)
    }

    fn send_parent(&self, kind: FrameKind, payload: &[u8]) -> Result<(), TransportError> {
        let Some(p) = &self.parent else { return Ok(()) };
        let mut w = p.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *w, kind, payload).map_err(TransportError::Frame)
    }

    /// Records one cross-process flow endpoint on the fabric clock — the
    /// same epoch the telemetry spans and the parent's handshake offset
    /// measurement use, so the merged trace can align all three.
    fn note_flow(&self, kind: FlowKind, step: u64, from: usize, to: usize, waited_ns: u64) {
        if !self.flows_enabled {
            return;
        }
        let at_ns = self.origin.elapsed().as_nanos() as u64;
        let mut flows = self.flows.lock().unwrap_or_else(|p| p.into_inner());
        if flows.len() >= MAX_FLOWS {
            self.flows_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        flows.push(FlowRec {
            kind,
            step,
            from: from as u32,
            to: to as u32,
            at_ns,
            waited_ns,
        });
    }
}

/// Replays the whole resend cache to the peer's current connection —
/// the recovery step behind both `Resend` requests and reconnects.
fn replay_cache(peer: &Peer) {
    let frames: Vec<(FrameKind, Vec<u8>)> = {
        let cache = peer.cache.lock().unwrap_or_else(|p| p.into_inner());
        cache.values().cloned().collect()
    };
    for (kind, payload) in frames {
        if peer.send(kind, &payload).is_err() {
            return;
        }
    }
}

/// Installs a (re)connected stream into the peer slot: swaps the writer,
/// bumps the epoch, credits a pending reset, spawns the reader for the
/// new connection and replays the resend cache across it.
fn install_conn(
    fabric: &Arc<Fabric>,
    peer: &Arc<Peer>,
    stream: UnixStream,
) -> Result<(), TransportError> {
    let rs = stream.try_clone().map_err(io_err)?;
    let epoch = {
        let mut g = peer.conn.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(old) = g.take() {
            let _ = old.shutdown(Shutdown::Both);
        }
        *g = Some(stream);
        peer.epoch.fetch_add(1, Ordering::SeqCst) + 1
    };
    peer.alive.store(true, Ordering::Release);
    peer.done.store(false, Ordering::Release);
    peer.last_heard_ms.store(fabric.now_ms(), Ordering::Relaxed);
    if peer.pending_reset.swap(false, Ordering::SeqCst) {
        fabric.ledger(|l| {
            l.wire_detected.reset += 1;
            l.wire_recovered.reset += 1;
        });
    }
    {
        let (f, p) = (Arc::clone(fabric), Arc::clone(peer));
        std::thread::spawn(move || reader_loop(f, p, rs, epoch));
    }
    replay_cache(peer);
    Ok(())
}

/// The connection died under this epoch: mark the peer down, settle the
/// injector's books (damage whose `Resend` can no longer arrive is
/// recovered by the reconnect replay instead) and, when we are the
/// designated initiator (the higher id dials the lower one's listener —
/// the bootstrap rule), start redialing.
fn conn_down(fabric: &Arc<Fabric>, peer: &Arc<Peer>, epoch: u64) {
    if peer.epoch.load(Ordering::SeqCst) != epoch {
        return; // superseded: a fresh connection is already installed
    }
    peer.alive.store(false, Ordering::Release);
    let drained: Vec<WireFaultKind> = {
        let mut dmg = peer
            .pending_damage
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        dmg.drain(..).collect()
    };
    if !drained.is_empty() {
        fabric.ledger(|l| {
            for k in &drained {
                l.wire_detected.add(k, 1);
                l.wire_recovered.add(k, 1);
            }
        });
    }
    if fabric.respawn && !fabric.stop.load(Ordering::Acquire) && peer.shard < fabric.id {
        spawn_redial(Arc::clone(fabric), Arc::clone(peer));
    }
}

/// Redials a lower peer's listener with decorrelated-jitter backoff until
/// it answers (a reset heals, a respawned shard rejoins) or the budgeted
/// window closes.
fn spawn_redial(fabric: Arc<Fabric>, peer: Arc<Peer>) {
    if peer.redialing.swap(true, Ordering::SeqCst) {
        return;
    }
    std::thread::spawn(move || {
        let give_up = Instant::now()
            + fabric
                .conn_timeout
                .mul_f64(fabric.restart_budget as f64 + 3.0);
        let seed = mix64(((fabric.id as u64) << 32) | peer.shard as u64);
        let mut backoff = RetryBackoff::with_bounds(seed, 500, 100_000);
        let path = fabric.dir.join(format!("shard{}.sock", peer.shard));
        while !fabric.stop.load(Ordering::Acquire) && Instant::now() < give_up {
            if let Ok(mut s) = UnixStream::connect(&path) {
                if write_frame(&mut s, FrameKind::Hello, &hello_payload(fabric.id)).is_ok()
                    && install_conn(&fabric, &peer, s).is_ok()
                {
                    fabric.ledger(|l| l.reconnects += 1);
                    break;
                }
            }
            std::thread::sleep(backoff.next_delay());
        }
        peer.redialing.store(false, Ordering::SeqCst);
    });
}

/// Accepts rejoin dials for the rest of the run: a respawned shard (or a
/// reset-healing higher peer) dials our listener exactly like bootstrap.
fn spawn_accept(fabric: Arc<Fabric>, listener: UnixListener) {
    let _ = listener.set_nonblocking(true);
    std::thread::spawn(move || loop {
        if fabric.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                if s.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = s.set_read_timeout(Some(fabric.conn_timeout));
                let Ok(j) = expect_hello(&mut s) else {
                    continue;
                };
                let _ = s.set_read_timeout(None);
                if j == fabric.id {
                    continue;
                }
                if let Some(Some(peer)) = fabric.peers.get(j) {
                    let _ = install_conn(&fabric, peer, s);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    });
}

/// Heartbeats every live peer and the parent at a quarter of the
/// deadline, so silence is a signal and not just slowness. Skipping a
/// held writer mutex is deliberate: a stalled connection must fall
/// silent for its peer's staleness check to fire.
fn spawn_heartbeats(fabric: Arc<Fabric>) {
    std::thread::spawn(move || {
        let interval =
            (fabric.conn_timeout / 4).clamp(Duration::from_millis(25), Duration::from_secs(2));
        loop {
            std::thread::sleep(interval);
            if fabric.stop.load(Ordering::Acquire) {
                return;
            }
            for peer in fabric.peers.iter().flatten() {
                if !peer.alive.load(Ordering::Acquire) || peer.done.load(Ordering::Acquire) {
                    continue;
                }
                if let Ok(mut g) = peer.conn.try_lock() {
                    if let Some(w) = g.as_mut() {
                        let _ = write_frame(w, FrameKind::Heartbeat, &[]);
                    }
                }
            }
            let _ = fabric.send_parent(FrameKind::Heartbeat, &[]);
        }
    });
}

/// Holds a cross-node ghost frame on the sender for the emulated
/// inter-node latency (`--wire-latency`), netem-style. A spin wait
/// rather than `sleep` keeps sub-100us holds accurate; frames between
/// shards on the same node — and all control traffic — ride the raw
/// socket untouched, so the hold prices exactly the slow leg that
/// node-level aggregation is supposed to cross less often.
fn emulate_wire_latency(fabric: &Fabric, dest: usize) {
    let Some((latency, shard_node)) = &fabric.wire_delay else {
        return;
    };
    if shard_node.get(dest) == shard_node.get(fabric.id) {
        return;
    }
    let until = Instant::now() + *latency;
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

/// Sends a ghost-bearing frame (`Ghost` or a merged `GhostBatch`)
/// through the chaos injector. The payload is already in the resend
/// cache under its kind, so a send that cannot complete while the
/// respawn machinery is armed is *held*, not failed: the reconnect
/// replay delivers it.
fn ghost_send(
    fabric: &Fabric,
    peer: &Arc<Peer>,
    frame_kind: FrameKind,
    payload: &[u8],
) -> Result<(), TransportError> {
    emulate_wire_latency(fabric, peer.shard);
    let inject = fabric.plan.is_armed()
        && peer.alive.load(Ordering::Acquire)
        && !peer.done.load(Ordering::Acquire);
    if !inject {
        return send_or_hold(fabric, peer, frame_kind, payload);
    }
    let seq = peer.seq.fetch_add(1, Ordering::Relaxed);
    match fabric.plan.sample(fabric.id, peer.shard, seq) {
        None => send_or_hold(fabric, peer, frame_kind, payload),
        Some(WireFaultKind::Delay { delay_us }) => {
            std::thread::sleep(Duration::from_micros(u64::from(delay_us)));
            fabric.ledger(|l| {
                l.wire_injected.delay += 1;
                l.wire_detected.delay += 1;
                l.wire_recovered.delay += 1;
                record_delay_us(l, u64::from(delay_us));
            });
            send_or_hold(fabric, peer, frame_kind, payload)
        }
        Some(kind @ WireFaultKind::Corrupt { salt }) => {
            let mut bytes = frame::encode(frame_kind, payload);
            let pos = frame::HEADER_LEN + (salt as usize) % payload.len().max(1);
            bytes[pos] ^= 0x5a;
            fabric.ledger(|l| l.wire_injected.corrupt += 1);
            push_damage(peer, kind);
            raw_send_or_hold(fabric, peer, &bytes)
        }
        Some(kind @ WireFaultKind::Truncate { cut }) => {
            // The truncation model keeps the stream framed: the declared
            // length still arrives, but everything past the cut —
            // including the checksum trailer — is zeroed, and the last
            // trailer byte is flipped so the mismatch is guaranteed.
            let mut bytes = frame::encode(frame_kind, payload);
            let start = frame::HEADER_LEN + (cut as usize) % (payload.len() + 8);
            for b in &mut bytes[start..] {
                *b = 0;
            }
            let last = bytes.len() - 1;
            bytes[last] ^= 0xa5;
            fabric.ledger(|l| l.wire_injected.truncate += 1);
            push_damage(peer, kind);
            raw_send_or_hold(fabric, peer, &bytes)
        }
        Some(WireFaultKind::Reset) => {
            if !fabric.respawn || peer.reset_used.swap(true, Ordering::SeqCst) {
                return send_or_hold(fabric, peer, frame_kind, payload);
            }
            fabric.ledger(|l| l.wire_injected.reset += 1);
            peer.pending_reset.store(true, Ordering::SeqCst);
            {
                let g = peer.conn.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(s) = g.as_ref() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
            // The frame is lost with the connection; the reconnect
            // replay carries its cached payload across.
            Ok(())
        }
        Some(WireFaultKind::Stall) => {
            if !fabric.respawn || fabric.stall_used.swap(true, Ordering::SeqCst) {
                return send_or_hold(fabric, peer, frame_kind, payload);
            }
            // Announce to the parent (its ledger owns the stall triple:
            // this process usually dies mid-nap), then go silent holding
            // the writer mutex — heartbeats to this peer stop, its
            // staleness check fires, and a Suspect escalation follows.
            // The nap must outlive the victim's staleness deadline but
            // stay well inside every recovery deadline: a stall that is
            // never escalated must release the mutex before it can jam
            // the reconnect replay of some *other* shard's respawn.
            let _ = fabric.send_parent(FrameKind::WireEvent, &[0]);
            let hold = fabric.conn_timeout.mul_f64(2.5);
            let mut g = peer.conn.lock().unwrap_or_else(|p| p.into_inner());
            std::thread::sleep(hold);
            // Only reached when the supervisor never killed us (budget
            // spent elsewhere): resume, the parent credits the stall on
            // our late Result.
            if let Some(w) = g.as_mut() {
                if write_frame(w, frame_kind, payload).is_err() {
                    peer.alive.store(false, Ordering::Release);
                }
            }
            Ok(())
        }
    }
}

fn push_damage(peer: &Peer, kind: WireFaultKind) {
    peer.pending_damage
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push_back(kind);
}

fn send_or_hold(
    fabric: &Fabric,
    peer: &Arc<Peer>,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), TransportError> {
    match peer.send(kind, payload) {
        Err(e) if !fabric.respawn => Err(e),
        _ => Ok(()), // held: the reconnect replay delivers the cache
    }
}

fn raw_send_or_hold(fabric: &Fabric, peer: &Arc<Peer>, bytes: &[u8]) -> Result<(), TransportError> {
    match peer.send_raw(bytes) {
        Err(e) if !fabric.respawn => Err(e),
        _ => Ok(()),
    }
}

/// Routes one received per-edge ghost block: validates it against the
/// schedule, then either delivers it into the mailbox (its target PE
/// lives on this node — ours or a sibling member's slot, both harmless)
/// or, on a node leader, folds a member's cross-node contribution into
/// the aggregation buffer. Returns `false` on a protocol violation.
fn route_ghost(fabric: &Arc<Fabric>, step: u64, from: usize, to: usize, block: &[Vec3]) -> bool {
    let Some(&(edge, len)) = fabric.edges.get(&(from, to)) else {
        return false;
    };
    if block.len() != len {
        return false;
    }
    if let Some(relay) = &fabric.relay {
        if relay.node_of_pe(to) != Some(relay.node) {
            // Destined for a remote node: only a leader aggregates.
            return relay.leader == fabric.id
                && relay_contribution(fabric, step, from, to, block).is_ok();
        }
    }
    // Recompute the receiver-side checksum the executor's verify path
    // will check the staged copy against.
    let ck = block_checksum_vec3(block);
    fabric.mailbox.deliver(edge, step, block, ck);
    true
}

/// Scatters one sub-block of a merged inbound (node, node) batch: own
/// PEs land in the mailbox, other members of our node get a per-edge
/// `Ghost` forward (cached for replay; a send the member cannot take
/// right now rides its reconnect replay). Returns `false` on a
/// protocol violation — a sub-block not addressed to this node.
fn scatter_merged(fabric: &Arc<Fabric>, step: u64, from: usize, to: usize, block: &[Vec3]) -> bool {
    let Some(&(edge, len)) = fabric.edges.get(&(from, to)) else {
        return false;
    };
    if block.len() != len {
        return false;
    }
    let Some(relay) = &fabric.relay else {
        return false;
    };
    if relay.node_of_pe(to) != Some(relay.node) {
        return false;
    }
    let owner = relay.pe_owner[to];
    if owner == fabric.id {
        let ck = block_checksum_vec3(block);
        fabric.mailbox.deliver(edge, step, block, ck);
        return true;
    }
    let Ok(peer) = fabric.peer(owner) else {
        // Member slot missing entirely is a topology violation; a
        // merely-down member is handled by hold + replay below.
        return false;
    };
    let payload = encode_ghost(step, from, to, block);
    peer.cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert((from, to), (FrameKind::Ghost, payload.clone()));
    let _ = ghost_send(fabric, peer, FrameKind::Ghost, &payload);
    true
}

/// Drains one peer connection into the mailbox until the peer says `Bye`,
/// the socket dies, or a fresh connection supersedes this epoch.
/// Checksum-mismatched frames leave the stream framed and trigger a
/// `Resend` request; `Resend` requests from the peer replay our cache and
/// settle one outstanding injected-damage credit.
fn reader_loop(fabric: Arc<Fabric>, peer: Arc<Peer>, mut stream: UnixStream, epoch: u64) {
    loop {
        match read_frame(&mut stream) {
            Ok(f) => {
                peer.last_heard_ms.store(fabric.now_ms(), Ordering::Relaxed);
                match f.kind {
                    FrameKind::Ghost => {
                        let Ok(g) = decode_ghost(&f.payload) else {
                            break;
                        };
                        if !route_ghost(&fabric, g.step, g.from, g.to, &g.block) {
                            break;
                        }
                    }
                    FrameKind::GhostBatch => {
                        // A merged (node, node) block from a remote
                        // leader: split it back into per-edge deliveries
                        // — own PEs into the mailbox, sibling members'
                        // PEs forwarded over the fast intra-node hop.
                        let Ok(subs) = decode_ghost_batch(&f.payload) else {
                            break;
                        };
                        if fabric.relay.is_none()
                            || !subs
                                .iter()
                                .all(|g| scatter_merged(&fabric, g.step, g.from, g.to, &g.block))
                        {
                            break;
                        }
                    }
                    FrameKind::Resend => {
                        let popped = peer
                            .pending_damage
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .pop_front();
                        fabric.ledger(|l| {
                            if let Some(kind) = &popped {
                                l.wire_detected.add(kind, 1);
                                l.wire_recovered.add(kind, 1);
                            }
                            l.wire_resends += 1;
                        });
                        replay_cache(&peer);
                    }
                    FrameKind::Heartbeat => {}
                    // An orderly goodbye: the peer finished its run. Its
                    // posted blocks stay acquirable, so `alive` stays up.
                    FrameKind::Bye => {
                        peer.done.store(true, Ordering::Release);
                        return;
                    }
                    _ => break,
                }
            }
            Err(FrameError::ChecksumMismatch { .. }) => {
                // Stream still framed: ask for a replay of everything
                // this peer posted us.
                if peer.send(FrameKind::Resend, &[]).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    conn_down(&fabric, &peer, epoch);
}

// ---------------------------------------------------------------------------
// The socket-backed Transport.
// ---------------------------------------------------------------------------

/// The socket-backed [`Transport`] a shard child runs over: local edges
/// through the shared [`Mailbox`], remote edges as `Ghost` frames through
/// the chaos injector, with the remote side's reader thread delivering
/// into the same mailbox.
pub struct ProcLink {
    shard: usize,
    fabric: Arc<Fabric>,
    /// PE -> owning shard.
    pe_owner: Vec<usize>,
    params: LinkParams,
    /// Fault-injection knob: hard-exit when posting this step.
    kill_at: Option<u64>,
}

impl ProcLink {
    fn owner_of(&self, pe: usize, peer_pe: usize) -> Result<usize, TransportError> {
        self.pe_owner
            .get(pe)
            .copied()
            .ok_or(TransportError::UnknownEdge {
                from: pe.min(peer_pe),
                to: pe.max(peer_pe),
            })
    }

    /// Sends an orderly goodbye to every peer (errors ignored — a peer
    /// that already left closed the socket first).
    fn farewell(&self) {
        for peer in self.fabric.peers.iter().flatten() {
            let _ = peer.send(FrameKind::Bye, &[]);
        }
    }
}

impl Transport for ProcLink {
    fn kind(&self) -> TransportKind {
        TransportKind::Proc
    }

    fn post(
        &self,
        step: u64,
        from: usize,
        to: usize,
        block: &[Vec3],
    ) -> Result<(), TransportError> {
        if let Some(kill) = self.kill_at {
            if step >= kill {
                // The chaos knob: die exactly like a SIGKILLed shard,
                // with sockets closing mid-protocol.
                std::process::exit(101);
            }
        }
        if self.owner_of(to, from)? == self.shard {
            return self.fabric.mailbox.post(step, from, to, block).map(|_| ());
        }
        let &(_, len) = self
            .fabric
            .edges
            .get(&(from, to))
            .ok_or(TransportError::UnknownEdge { from, to })?;
        if block.len() != len {
            return Err(TransportError::LengthMismatch {
                expected: len,
                got: block.len(),
            });
        }
        let owner = self.owner_of(to, from)?;
        // Cross-node blocks route through the node leaders; intra-node
        // (and flat-run) blocks keep the direct per-edge path.
        let target = match &self.fabric.relay {
            Some(relay) if relay.shard_node[owner] != relay.node => {
                if relay.leader == self.shard {
                    relay_contribution(&self.fabric, step, from, to, block)?;
                    self.fabric.note_flow(FlowKind::Post, step, from, to, 0);
                    return Ok(());
                }
                relay.leader
            }
            _ => owner,
        };
        let peer = self.fabric.peer(target)?;
        let payload = encode_ghost(step, from, to, block);
        peer.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert((from, to), (FrameKind::Ghost, payload.clone()));
        ghost_send(&self.fabric, peer, FrameKind::Ghost, &payload)?;
        self.fabric.note_flow(FlowKind::Post, step, from, to, 0);
        Ok(())
    }

    fn acquire(
        &self,
        step: u64,
        from: usize,
        to: usize,
        out: &mut [Vec3],
    ) -> Result<AcquireInfo, TransportError> {
        let owner = self.owner_of(from, to)?;
        if owner == self.shard {
            return self.fabric.mailbox.acquire(step, from, to, out);
        }
        let peer = self.fabric.peer(owner)?;
        if !self.fabric.respawn {
            // Legacy path: a dead peer fails the acquire immediately.
            let alive = Arc::clone(peer);
            return self
                .fabric
                .mailbox
                .acquire_watch(step, from, to, out, || alive.alive.load(Ordering::Acquire))
                .inspect(|info| {
                    self.fabric.note_flow(
                        FlowKind::Acquire,
                        step,
                        from,
                        to,
                        (info.waited_s.max(0.0) * 1e9) as u64,
                    );
                })
                .map_err(|e| match e {
                    TransportError::PeerDisconnected { .. } => {
                        TransportError::PeerDisconnected { shard: owner }
                    }
                    other => other,
                });
        }
        // Degraded wait: hold through `restart_budget + 2` deadline
        // rounds — the frame may be riding a reconnect replay, or the
        // peer may be respawning under the parent's supervision. A peer
        // that is dead or silent past the deadline is escalated to the
        // parent once per connection epoch.
        let rounds = self.fabric.restart_budget + 2;
        let mut silent_s = 0u64;
        let blocked_from = Instant::now();
        for _ in 0..rounds {
            match self
                .fabric
                .mailbox
                .acquire_watch(step, from, to, out, || true)
            {
                Ok(mut info) => {
                    // Timed-out rounds blocked this PE just as surely as
                    // the final successful watch did: report the whole
                    // degraded wait, or the profiler would book recovery
                    // stalls as apply time (and blame the wrong shard).
                    info.waited_s = info.waited_s.max(blocked_from.elapsed().as_secs_f64());
                    self.fabric.note_flow(
                        FlowKind::Acquire,
                        step,
                        from,
                        to,
                        (info.waited_s.max(0.0) * 1e9) as u64,
                    );
                    return Ok(info);
                }
                Err(TransportError::Timeout { waited_s, .. }) => {
                    silent_s += waited_s;
                    let dead = !peer.alive.load(Ordering::Acquire);
                    if (dead || self.fabric.stale(peer)) && !peer.done.load(Ordering::Acquire) {
                        let ep = peer.epoch.load(Ordering::SeqCst) + 1;
                        if peer.suspected_epoch.swap(ep, Ordering::SeqCst) != ep {
                            let mut w = ByteWriter::new();
                            w.u32(owner as u32);
                            let _ = self.fabric.send_parent(FrameKind::Suspect, &w.finish());
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(TransportError::PeerSuspect {
            shard: owner,
            silent_s,
        })
    }

    fn link(&self) -> LinkParams {
        self.params
    }

    fn shutdown(&self) -> Result<(), TransportError> {
        self.farewell();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Child process.
// ---------------------------------------------------------------------------

fn connect_retry(path: &Path, deadline: Instant) -> Result<UnixStream, TransportError> {
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(TransportError::Io(format!(
                        "connect {} timed out: {e}",
                        path.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn env_usize(key: &str) -> Result<usize, TransportError> {
    std::env::var(key)
        .map_err(|_| TransportError::Protocol(format!("missing {key}")))?
        .parse()
        .map_err(|_| TransportError::Protocol(format!("bad {key}")))
}

/// Parses the kill knob for this shard. Creating the once-marker at plan
/// time is deliberate: this process will deterministically die at the
/// planned step, and the marker must already exist when the respawned
/// (or retried) shard re-reads the environment.
fn kill_plan(shard: usize) -> Option<u64> {
    let spec = std::env::var(ENV_KILL).ok()?;
    let (victim, step) = spec.split_once(':')?;
    if victim.parse::<usize>().ok()? != shard {
        return None;
    }
    let step = step.parse().ok()?;
    if let Ok(marker) = std::env::var(ENV_KILL_ONCE) {
        if Path::new(&marker).exists() {
            return None;
        }
        let _ = std::fs::write(&marker, b"fired\n");
    }
    Some(step)
}

fn expect_hello(stream: &mut UnixStream) -> Result<usize, TransportError> {
    let f = read_frame(stream)?;
    if f.kind != FrameKind::Hello {
        return Err(TransportError::Protocol(format!(
            "expected Hello, got {:?}",
            f.kind
        )));
    }
    let mut r = ByteReader::new(&f.payload);
    let id = r.u32()? as usize;
    Ok(id)
}

fn hello_payload(id: usize) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(id as u32);
    w.finish()
}

/// The shard-child entry point: join the socket mesh, rebuild the
/// problem, serve the microbenchmark, run the owned PE slice, report.
fn child_main() -> Result<(), TransportError> {
    let id = env_usize(ENV_ID)?;
    let dir = PathBuf::from(
        std::env::var(ENV_DIR)
            .map_err(|_| TransportError::Protocol(format!("missing {ENV_DIR}")))?,
    );
    let spec_text = std::fs::read_to_string(dir.join("spec.txt")).map_err(io_err)?;
    let spec = RunSpec::deserialize(&spec_text).map_err(TransportError::Protocol)?;
    let shards = spec.shards;
    let conn_timeout = Duration::from_secs_f64(spec.conn_timeout.max(0.001));
    let attempt = attempt_from_env();
    let respawn = spec.recovery == "restart" && spec.restart_budget > 0 && shards > 1;
    // Wire chaos arms only on a shard's first launch: a respawned or
    // retried generation must not re-injure the recovery it exists for.
    let plan = if attempt == 0 && spec.wire_fault_rate > 0.0 {
        WireFaultPlan::uniform(spec.wire_fault_seed, spec.wire_fault_rate)
    } else {
        WireFaultPlan::none()
    };
    let deadline = Instant::now() + conn_timeout;

    // Dial the parent before the (slow) problem build: a respawned shard
    // must announce itself within the supervisor's accept window.
    let mut parent = connect_retry(&dir.join("parent.sock"), deadline)?;
    write_frame(&mut parent, FrameKind::Hello, &hello_payload(id))?;
    let built = super::run::build(&spec).map_err(TransportError::Protocol)?;

    // Peer mesh: bind first, then dial down, then accept from above — the
    // bind-before-dial order makes the mesh deadlock-free. A respawned
    // shard unlinks its stale socket file from the previous generation.
    let sock_path = dir.join(format!("shard{id}.sock"));
    let _ = std::fs::remove_file(&sock_path);
    let listener = UnixListener::bind(&sock_path).map_err(io_err)?;
    let mesh_deadline = Instant::now() + conn_timeout;
    let mut streams: Vec<Option<UnixStream>> = (0..shards).map(|_| None).collect();
    for j in 0..id {
        let mut s = connect_retry(&dir.join(format!("shard{j}.sock")), mesh_deadline)?;
        write_frame(&mut s, FrameKind::Hello, &hello_payload(id))?;
        streams[j] = Some(s);
    }
    for _ in id + 1..shards {
        let (mut s, _) = listener.accept().map_err(io_err)?;
        let j = expect_hello(&mut s)?;
        if j <= id || j >= shards || streams[j].is_some() {
            return Err(TransportError::Protocol(format!(
                "unexpected Hello from shard {j}"
            )));
        }
        streams[j] = Some(s);
    }
    // The shard's one clock: Pong samples, telemetry spans, flow
    // endpoints and the heartbeat epoch all count nanoseconds from this
    // instant, so the parent's handshake offset aligns every trace
    // timestamp this process ever emits.
    let clock_origin = Instant::now();
    write_frame(&mut parent, FrameKind::Ready, &[])?;

    // Serve the parent's microbenchmark and clock probes until the Go
    // carrying the run id and the measured link parameters. Every Pong
    // echoes the ping payload and appends our clock (u64 nanoseconds
    // since `clock_origin`) for the offset measurement.
    let (run_id, t_l, t_w) = loop {
        let f = read_frame(&mut parent)?;
        match f.kind {
            FrameKind::Ping => {
                let mut pong = f.payload.clone();
                let now_ns = clock_origin.elapsed().as_nanos() as u64;
                pong.extend_from_slice(&now_ns.to_le_bytes());
                write_frame(&mut parent, FrameKind::Pong, &pong)?;
            }
            FrameKind::Bulk => write_frame(&mut parent, FrameKind::BulkAck, &[])?,
            FrameKind::Go => {
                let mut r = ByteReader::new(&f.payload);
                break (r.u64()?, r.f64()?, r.f64()?);
            }
            other => {
                return Err(TransportError::Protocol(format!(
                    "expected Ping/Bulk/Go, got {other:?}"
                )))
            }
        }
    };

    // Assemble the fabric and its reader threads.
    let parts = spec.parts;
    let owned = shard_pe_range(parts, shards, id);
    let edge_list = ghost_edges(&built.system);
    let mailbox = Arc::new(Mailbox::new(&edge_list, steady_timeout(conn_timeout)));
    let edges: Arc<EdgeMap> = Arc::new(
        edge_list
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.from, e.to), (i, e.len)))
            .collect(),
    );
    let pe_owner: Vec<usize> = (0..parts)
        .map(|q| (0..shards).find(|&k| shard_pe_range(parts, shards, k).contains(&q)))
        .map(|k| k.expect("shard ranges tile the PE space"))
        .collect();
    let peers: Vec<Option<Arc<Peer>>> = (0..shards)
        .map(|j| (j != id).then(|| Arc::new(Peer::new(j))))
        .collect();
    let fabric = Arc::new(Fabric {
        id,
        dir: dir.clone(),
        conn_timeout,
        respawn,
        restart_budget: spec.restart_budget,
        plan,
        origin: clock_origin,
        wire: Mutex::new(FaultReport::default()),
        parent: Some(Mutex::new(parent.try_clone().map_err(io_err)?)),
        stall_used: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        peers,
        mailbox,
        edges,
        relay: if spec.aggregate {
            NodeRelay::build(id, parts, shards, spec.nodes, &edge_list)
        } else {
            None
        },
        wire_delay: (spec.wire_latency > 0.0 && spec.nodes >= 1 && spec.nodes <= shards).then(
            || {
                (
                    Duration::from_secs_f64(spec.wire_latency),
                    (0..shards)
                        .map(|k| node_of(shards, spec.nodes, k))
                        .collect(),
                )
            },
        ),
        flows: Mutex::new(Vec::new()),
        flows_enabled: spec.trace,
        flows_dropped: AtomicU64::new(0),
    });
    for (j, slot) in streams.iter_mut().enumerate() {
        let Some(s) = slot.take() else { continue };
        let peer = fabric.peer(j)?;
        install_conn(&fabric, &Arc::clone(peer), s)?;
    }
    if respawn {
        spawn_accept(Arc::clone(&fabric), listener);
    }
    spawn_heartbeats(Arc::clone(&fabric));
    let link = Arc::new(ProcLink {
        shard: id,
        fabric: Arc::clone(&fabric),
        pe_owner,
        params: LinkParams {
            t_l,
            t_w,
            measured: true,
        },
        kill_at: kill_plan(id),
    });

    // Run the owned slice. Transport faults surface as panics out of the
    // worker pool; catch them so a peer death exits this child cleanly
    // (nonzero) instead of aborting mid-unwind.
    let mut exec = BspExecutor::with_transport(
        &built.system,
        spec.threads,
        spec.rcm,
        spec.overlap,
        owned.clone(),
        Arc::clone(&link) as Arc<dyn Transport>,
    );
    super::run::arm_at(&mut exec, &spec, Some(clock_origin)).map_err(TransportError::Protocol)?;
    let ran = catch_unwind(AssertUnwindSafe(|| exec.run(&built.x, spec.steps)));
    if let Err(panic) = ran {
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "worker panic".into());
        return Err(TransportError::Protocol(format!(
            "shard {id} run failed: {msg}"
        )));
    }

    // Let the injector's books settle before snapshotting the ledger:
    // outstanding damage credits ride on peers' Resend requests, which
    // may still be in flight right after the last step.
    if fabric.plan.is_armed() {
        let settle = Instant::now() + conn_timeout;
        while Instant::now() < settle {
            let outstanding = fabric.peers.iter().flatten().any(|p| {
                !p.pending_damage
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty()
                    || p.pending_reset.load(Ordering::SeqCst)
            });
            if !outstanding {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Report: gather lists + post-exchange partials per owned PE, plus
    // counters, phase walls and the fault ledger (with this process's
    // wire-chaos triple folded in).
    let report = exec.report();
    let boundary = exec.overlap_boundary_rows().map(|b| b.to_vec());
    let wire = fabric.ledger(|l| *l);
    let mut fault = report.fault;
    if wire.wire_injected.total() > 0 || wire.wire_resends > 0 || wire.reconnects > 0 {
        match fault.as_mut() {
            Some(acc) => acc.merge(&wire),
            None => fault = Some(wire),
        }
    }
    let pes: Vec<PeResult> = owned
        .clone()
        .map(|q| {
            let c = report.pe[q];
            PeResult {
                gather: exec.gather_of(q).to_vec(),
                exchanged: exec.exchanged_of(q).to_vec(),
                counters: [
                    c.flops,
                    c.words_sent,
                    c.words_received,
                    c.blocks_sent,
                    c.blocks_received,
                ],
                times: [c.t_assemble, c.t_compute, c.t_exchange, c.t_barrier],
                boundary_rows: boundary.as_ref().map(|b| b[q]),
            }
        })
        .collect();
    let result = ShardResult {
        shard: id,
        pe_lo: owned.start,
        pe_hi: owned.end,
        phases: [
            report.phases.assemble,
            report.phases.compute,
            report.phases.exchange,
            report.phases.fold,
        ],
        pes,
        fault,
    };
    // Trace runs ship the shard's whole telemetry picture just before
    // the Result: the parent pairs it with the handshake-measured clock
    // offset for this generation. Same serialized writer, so a reader
    // that sees Result has already seen the snapshot.
    if let Some(telemetry) = exec.telemetry() {
        let flows = std::mem::take(&mut *fabric.flows.lock().unwrap_or_else(|p| p.into_inner()));
        let snap = TelemetrySnapshot::capture(
            telemetry,
            TraceContext {
                run_id,
                shard: id as u32,
                generation: attempt as u32,
            },
            owned.start as u32,
            owned.end as u32,
            flows,
            fabric.flows_dropped.load(Ordering::Relaxed),
        );
        let bytes = snap.encode();
        if bytes.len() <= frame::MAX_PAYLOAD as usize {
            fabric.send_parent(FrameKind::Telemetry, &bytes)?;
        } else {
            eprintln!(
                "quake proc shard {id}: telemetry snapshot of {} bytes exceeds the frame cap; dropped",
                bytes.len()
            );
        }
    }
    fabric.send_parent(FrameKind::Result, &encode_result(&result))?;
    link.farewell();
    if respawn {
        // Hold the mesh open for laggards: a survivor that exits now
        // would strand a respawned peer's rejoin dial. The parent's Bye
        // releases everyone after the last Result lands.
        parent
            .set_read_timeout(Some(conn_timeout.mul_f64(spec.restart_budget as f64 + 4.0)))
            .map_err(io_err)?;
        loop {
            match read_frame(&mut parent) {
                Ok(f) if f.kind == FrameKind::Bye => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    } else {
        // The parent stops reading the moment the Result frame lands, so
        // this courtesy Bye can race the dropped socket — not a failure.
        let _ = write_frame(&mut parent, FrameKind::Bye, &[]);
    }
    fabric.stop.store(true, Ordering::Release);
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent process.
// ---------------------------------------------------------------------------

/// Kills and reaps the children and removes the rendezvous directory,
/// whatever state the ensemble died in.
struct Ensemble {
    children: Vec<Child>,
    dir: PathBuf,
}

impl Drop for Ensemble {
    fn drop(&mut self) {
        for c in &mut self.children {
            let _ = c.kill();
        }
        for c in &mut self.children {
            let _ = c.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn rendezvous_dir() -> Result<PathBuf, TransportError> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "quake-proc-{}-{}-{nanos}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir(&dir).map_err(io_err)?;
    Ok(dir)
}

fn any_child_dead(children: &mut [Child], done: &[bool]) -> Option<usize> {
    for (k, c) in children.iter_mut().enumerate() {
        if done[k] {
            continue;
        }
        if let Ok(Some(status)) = c.try_wait() {
            if !status.success() {
                return Some(k);
            }
        }
    }
    None
}

/// Runs the Eq. (2) microbenchmark against one child: `T_l` from 64
/// ping/pong RTTs (median, halved), `T_w` from eight 128-KiB bulk
/// transfers with the latency share subtracted.
fn microbench(conn: &mut UnixStream) -> Result<LinkParams, TransportError> {
    const PINGS: usize = 64;
    const ROUNDS: usize = 8;
    const BULK_BYTES: usize = 128 * 1024;
    let mut rtts = Vec::with_capacity(PINGS);
    for i in 0..PINGS {
        let t0 = Instant::now();
        write_frame(conn, FrameKind::Ping, &(i as u64).to_le_bytes())?;
        let f = read_frame(conn)?;
        if f.kind != FrameKind::Pong {
            return Err(TransportError::Protocol(format!(
                "expected Pong, got {:?}",
                f.kind
            )));
        }
        rtts.push(t0.elapsed().as_secs_f64());
    }
    rtts.sort_by(|a, b| a.partial_cmp(b).expect("RTTs are finite"));
    let t_l = (rtts[PINGS / 2] / 2.0).max(1e-9);
    let payload = vec![0u8; BULK_BYTES];
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        write_frame(conn, FrameKind::Bulk, &payload)?;
        let f = read_frame(conn)?;
        if f.kind != FrameKind::BulkAck {
            return Err(TransportError::Protocol(format!(
                "expected BulkAck, got {:?}",
                f.kind
            )));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let words = (ROUNDS * BULK_BYTES / 8) as f64;
    let t_w = ((elapsed - (ROUNDS as f64) * 2.0 * t_l) / words).max(1e-12);
    Ok(LinkParams {
        t_l,
        t_w,
        measured: true,
    })
}

/// Measures one shard's clock offset against the parent's `epoch` with a
/// handful of Ping round trips. The child's Pong appends its own clock
/// (nanoseconds since its trace origin); the probe with the smallest RTT
/// anchors `offset = parent midpoint − child clock`, so adding the offset
/// to any child-clock nanosecond lands it on the parent's timeline.
fn clock_probe(conn: &mut UnixStream, epoch: Instant) -> Result<i64, TransportError> {
    const PROBES: u64 = 5;
    let mut best_rtt = u64::MAX;
    let mut offset = 0i64;
    for i in 0..PROBES {
        let t0 = epoch.elapsed().as_nanos() as u64;
        write_frame(conn, FrameKind::Ping, &i.to_le_bytes())?;
        let f = read_frame(conn)?;
        let t1 = epoch.elapsed().as_nanos() as u64;
        if f.kind != FrameKind::Pong {
            return Err(TransportError::Protocol(format!(
                "expected Pong, got {:?}",
                f.kind
            )));
        }
        // The child's clock rides the last eight payload bytes, after the
        // echoed ping payload.
        if f.payload.len() < 16 {
            return Err(TransportError::Protocol(
                "Pong carries no clock sample".into(),
            ));
        }
        let mut child = [0u8; 8];
        child.copy_from_slice(&f.payload[f.payload.len() - 8..]);
        let child_ns = u64::from_le_bytes(child);
        let rtt = t1.saturating_sub(t0);
        if rtt < best_rtt {
            best_rtt = rtt;
            offset = (t0 + rtt / 2) as i64 - child_ns as i64;
        }
    }
    Ok(offset)
}

fn spawn_child(exe: &Path, dir: &Path, k: usize, attempt: u64) -> Result<Child, TransportError> {
    Command::new(exe)
        .env(ENV_ROLE, "shard")
        .env(ENV_ID, k.to_string())
        .env(ENV_DIR, dir)
        .env(ENV_ATTEMPT, attempt.to_string())
        .stdin(Stdio::null())
        .spawn()
        .map_err(io_err)
}

/// What one shard's result reader tells the supervisor.
enum Ev {
    Result(Box<ShardResult>),
    /// The shard's encoded telemetry snapshot (`Telemetry` frame, trace
    /// runs only — always arrives before the shard's Result).
    Telemetry(Vec<u8>),
    /// The shard accuses another of hanging (`Suspect` frame).
    Suspect(usize),
    /// The shard announced an injected stall (`WireEvent` frame).
    Stall,
    /// Nothing heard for a whole deadline — not even a heartbeat.
    Silent,
    /// The connection or the protocol died with this error.
    Gone(TransportError),
}

/// `(shard, generation, event)` — stale generations are dropped.
type EvMsg = (usize, u64, Ev);

/// One blocking reader per live shard connection. The read deadline is
/// the supervision clock: heartbeats reset it, and a full deadline of
/// silence surfaces as [`Ev::Silent`] instead of blocking forever (the
/// hung-peer hazard the old unbounded reader had).
fn parent_reader(mut s: UnixStream, k: usize, gen: u64, tx: mpsc::Sender<EvMsg>) {
    loop {
        match read_frame(&mut s) {
            Ok(f) => match f.kind {
                FrameKind::Result => {
                    let ev = match decode_result(&f.payload) {
                        Ok(res) => Ev::Result(Box::new(res)),
                        Err(e) => Ev::Gone(e),
                    };
                    let _ = tx.send((k, gen, ev));
                    return;
                }
                FrameKind::Heartbeat => {}
                FrameKind::Telemetry => {
                    let _ = tx.send((k, gen, Ev::Telemetry(f.payload)));
                }
                FrameKind::Suspect => {
                    let mut r = ByteReader::new(&f.payload);
                    if let Ok(victim) = r.u32() {
                        let _ = tx.send((k, gen, Ev::Suspect(victim as usize)));
                    }
                }
                FrameKind::WireEvent => {
                    let _ = tx.send((k, gen, Ev::Stall));
                }
                FrameKind::Bye => {
                    let _ = tx.send((
                        k,
                        gen,
                        Ev::Gone(TransportError::Protocol("Bye before Result".into())),
                    ));
                    return;
                }
                _ => {}
            },
            Err(FrameError::TimedOut) => {
                let _ = tx.send((k, gen, Ev::Silent));
            }
            Err(FrameError::Closed) => {
                let _ = tx.send((
                    k,
                    gen,
                    Ev::Gone(TransportError::PeerDisconnected { shard: k }),
                ));
                return;
            }
            Err(e) => {
                let _ = tx.send((k, gen, Ev::Gone(TransportError::Frame(e))));
                return;
            }
        }
    }
}

/// The supervision state the parent threads share per ensemble attempt.
struct Supervisor<'a> {
    spec: &'a RunSpec,
    exe: &'a Path,
    dir: &'a Path,
    listener: &'a UnixListener,
    conn_timeout: Duration,
    attempt_base: u64,
    respawn_mode: bool,
    /// The stored Go frame a respawned shard is released with.
    go: Vec<u8>,
    tx: mpsc::Sender<EvMsg>,
    /// Respawn generation per shard; stale reader events are dropped.
    gen: Vec<u64>,
    writers: Vec<UnixStream>,
    /// The parent's own supervision ledger (stall triple, suspects,
    /// respawns) merged into the run's fault report at the end.
    ledger: FaultReport,
    incidents: Vec<Incident>,
    /// A shard announced an injected stall and has not resolved yet.
    pending_stall: Vec<bool>,
    /// Post-respawn grace window: stale Suspect/Silent events for a
    /// shard that is rebuilding are expected, not re-escalated.
    grace: Vec<Option<Instant>>,
    respawns_used: u64,
    t0: Instant,
    /// The parent-side trace timeline: clock offsets and incident stamps
    /// count nanoseconds from here.
    epoch: Instant,
    /// Handshake-measured clock offset per `(shard, generation)` — a
    /// fresh probe runs before every Go, initial and respawn alike.
    offsets: Vec<(usize, u32, i64)>,
}

impl Supervisor<'_> {
    fn t_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn in_grace(&self, k: usize) -> bool {
        matches!(self.grace[k], Some(g) if Instant::now() < g)
    }

    /// Credits a pending stall: the injured shard either respawned or
    /// delivered a late Result, so the stall is detected and recovered.
    fn settle_stall(&mut self, k: usize) {
        if std::mem::take(&mut self.pending_stall[k]) {
            self.ledger.wire_detected.stall += 1;
            self.ledger.wire_recovered.stall += 1;
        }
    }

    /// Escalation: respawn the victim — and, in the same batch, every
    /// other result-less child that has already died — within budget,
    /// else return the cause as the attempt's failure. Batching is what
    /// makes concurrent deaths recoverable: a lone rejoiner's mesh
    /// bootstrap blocks on every peer's listener, so respawning one
    /// shard at a time would deadlock against a second corpse.
    fn try_respawn(
        &mut self,
        ens: &mut Ensemble,
        k: usize,
        done: &[bool],
        cause: TransportError,
    ) -> Option<TransportError> {
        if !self.respawn_mode {
            return Some(cause);
        }
        let mut dead = vec![k];
        for (j, c) in ens.children.iter_mut().enumerate() {
            if j != k && !done[j] && matches!(c.try_wait(), Ok(Some(_))) {
                dead.push(j);
            }
        }
        if self.respawns_used + dead.len() as u64 > self.spec.restart_budget {
            return Some(cause);
        }
        self.respawns_used += dead.len() as u64;
        self.respawn_shards(ens, &dead).err()
    }

    /// Kills and relaunches a batch of shards, walks each through the
    /// bootstrap handshake (Hello, Ready, stored Go) and hands its
    /// connection to a fresh generation-tagged reader. All replacements
    /// are spawned before any handshake completes, so their mesh
    /// bootstraps can re-knit against each other; the survivors'
    /// redial/accept threads handle their side on their own.
    fn respawn_shards(&mut self, ens: &mut Ensemble, dead: &[usize]) -> Result<(), TransportError> {
        for &k in dead {
            self.gen[k] += 1;
            let _ = ens.children[k].kill();
            let _ = ens.children[k].wait();
            ens.children[k] = spawn_child(self.exe, self.dir, k, self.attempt_base + self.gen[k])?;
        }
        // Accept the replacements' Hellos in whatever order they dial in.
        let deadline = Instant::now() + self.conn_timeout.mul_f64(2.0);
        let mut conns: Vec<Option<UnixStream>> = (0..self.spec.shards).map(|_| None).collect();
        let mut missing = dead.len();
        while missing > 0 {
            match self.listener.accept() {
                Ok((mut s, _)) => {
                    s.set_nonblocking(false).map_err(io_err)?;
                    s.set_read_timeout(Some(self.conn_timeout))
                        .map_err(io_err)?;
                    match expect_hello(&mut s) {
                        Ok(id) if dead.contains(&id) && conns[id].is_none() => {
                            conns[id] = Some(s);
                            missing -= 1;
                        }
                        // A stale dial from a dead generation: drop it.
                        _ => continue,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    for &k in dead {
                        if conns[k].is_none() {
                            if let Ok(Some(status)) = ens.children[k].try_wait() {
                                if !status.success() {
                                    return Err(TransportError::PeerDisconnected { shard: k });
                                }
                            }
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(TransportError::Io("respawn accept timed out".into()));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(io_err(e)),
            }
        }
        // The rebuild happens between Hello and Ready; the waits are
        // sequential but the children proceed concurrently.
        for &k in dead {
            let mut conn = conns[k].take().expect("accepted above");
            conn.set_read_timeout(Some(self.conn_timeout.mul_f64(4.0)))
                .map_err(io_err)?;
            loop {
                let f = read_frame(&mut conn)?;
                match f.kind {
                    FrameKind::Ready => break,
                    FrameKind::Heartbeat => continue,
                    other => {
                        return Err(TransportError::Protocol(format!(
                            "respawned shard {k}: expected Ready, got {other:?}"
                        )))
                    }
                }
            }
            let off = clock_probe(&mut conn, self.epoch)?;
            self.offsets
                .push((k, (self.attempt_base + self.gen[k]) as u32, off));
            write_frame(&mut conn, FrameKind::Go, &self.go)?;
            conn.set_read_timeout(Some(self.conn_timeout))
                .map_err(io_err)?;
            let rs = conn.try_clone().map_err(io_err)?;
            self.writers[k] = conn;
            let (gen, tx) = (self.gen[k], self.tx.clone());
            std::thread::spawn(move || parent_reader(rs, k, gen, tx));
            self.ledger.respawned_shards += 1;
            self.settle_stall(k);
            self.grace[k] = Some(Instant::now() + self.conn_timeout.mul_f64(1.5));
            self.incidents.push(Incident {
                t_s: self.t_s(),
                kind: "shard-respawn",
                shard: k,
            });
        }
        Ok(())
    }
}

/// Launches the shard ensemble for a spec and merges its results. Inside
/// an attempt the supervisor recovers per shard (respawn within
/// `--restart-budget`); with the `restart` recovery policy a failed
/// attempt is then retried once whole — the run is a pure function of
/// the spec, so the retry is exact.
///
/// # Errors
///
/// Returns a typed error on any spawn, protocol, or child failure.
pub fn run_parent(spec: &RunSpec, built: &Built) -> Result<RunOutput, TransportError> {
    if spec.shards == 0 {
        return Err(TransportError::Protocol("shards must be at least 1".into()));
    }
    let attempts = if spec.recovery == "restart" { 2 } else { 1 };
    // The run id stamped into every shard's trace context. Uniqueness
    // per invocation is all that matters; it survives ensemble retries.
    let run_id = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64
        ^ (std::process::id() as u64) << 32;
    let mut last = None;
    for attempt in 0..attempts {
        match run_ensemble(spec, built, attempt, run_id) {
            Ok(mut out) => {
                if attempt > 0 {
                    let f = out.report.fault.get_or_insert_with(FaultReport::default);
                    f.ensemble_restarts += attempt;
                    out.incidents.push(Incident {
                        t_s: 0.0,
                        kind: "ensemble-restart",
                        shard: 0,
                    });
                }
                return Ok(out);
            }
            Err(e) => {
                if attempt + 1 < attempts {
                    eprintln!("quake: ensemble attempt {attempt} failed ({e}); retrying whole");
                }
                last = Some(e);
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

fn run_ensemble(
    spec: &RunSpec,
    built: &Built,
    attempt_base: u64,
    run_id: u64,
) -> Result<RunOutput, TransportError> {
    let conn_timeout = Duration::from_secs_f64(spec.conn_timeout.max(0.001));
    let respawn_mode = spec.recovery == "restart" && spec.restart_budget > 0 && spec.shards > 1;
    let dir = rendezvous_dir()?;
    std::fs::write(dir.join("spec.txt"), spec.serialize()).map_err(io_err)?;
    let listener = UnixListener::bind(dir.join("parent.sock")).map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    let exe = std::env::current_exe().map_err(io_err)?;
    let mut ensemble = Ensemble {
        children: Vec::new(),
        dir: dir.clone(),
    };
    for k in 0..spec.shards {
        ensemble
            .children
            .push(spawn_child(&exe, &dir, k, attempt_base)?);
    }

    // Collect Hellos (children dial before their problem build).
    let deadline = Instant::now() + conn_timeout.mul_f64(2.0);
    let mut conns: Vec<Option<UnixStream>> = (0..spec.shards).map(|_| None).collect();
    let mut connected = 0;
    while connected < spec.shards {
        match listener.accept() {
            Ok((mut s, _)) => {
                s.set_nonblocking(false).map_err(io_err)?;
                s.set_read_timeout(Some(conn_timeout)).map_err(io_err)?;
                let id = expect_hello(&mut s)?;
                if id >= spec.shards || conns[id].is_some() {
                    return Err(TransportError::Protocol(format!(
                        "unexpected Hello from shard {id}"
                    )));
                }
                conns[id] = Some(s);
                connected += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                let none_done = vec![false; spec.shards];
                if let Some(k) = any_child_dead(&mut ensemble.children, &none_done) {
                    return Err(TransportError::PeerDisconnected { shard: k });
                }
                if Instant::now() >= deadline {
                    return Err(TransportError::Io("bootstrap accept timed out".into()));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    let mut conns: Vec<UnixStream> = conns
        .into_iter()
        .map(|c| c.expect("all shards connected"))
        .collect();

    // Readies (the slow rebuild happens before these), then the
    // microbenchmark, then Go.
    for (k, conn) in conns.iter_mut().enumerate() {
        conn.set_read_timeout(Some(conn_timeout.mul_f64(4.0)))
            .map_err(io_err)?;
        let f = read_frame(conn)?;
        if f.kind != FrameKind::Ready {
            return Err(TransportError::Protocol(format!(
                "shard {k}: expected Ready, got {:?}",
                f.kind
            )));
        }
    }
    let params = microbench(&mut conns[0])?;
    // The trace timeline's zero. Per-shard clock probes run against it
    // just before each Go (here and on every respawn), so all trace
    // timestamps — spans, flows, incidents — land on one axis.
    let epoch = Instant::now();
    let mut offsets: Vec<(usize, u32, i64)> = Vec::with_capacity(spec.shards);
    for (k, conn) in conns.iter_mut().enumerate() {
        offsets.push((k, attempt_base as u32, clock_probe(conn, epoch)?));
    }
    let mut go = ByteWriter::new();
    go.u64(run_id);
    go.f64(params.t_l);
    go.f64(params.t_w);
    let go = go.finish();
    for conn in conns.iter_mut() {
        write_frame(conn, FrameKind::Go, &go)?;
    }

    // One deadline-bounded reader per child; the main thread supervises:
    // results, suspects, stall announcements, silence and deaths.
    let (tx, rx) = mpsc::channel::<EvMsg>();
    let mut sup = Supervisor {
        spec,
        exe: &exe,
        dir: &dir,
        listener: &listener,
        conn_timeout,
        attempt_base,
        respawn_mode,
        go,
        tx,
        gen: vec![0; spec.shards],
        writers: Vec::new(),
        ledger: FaultReport::default(),
        incidents: Vec::new(),
        pending_stall: vec![false; spec.shards],
        grace: vec![None; spec.shards],
        respawns_used: 0,
        t0: Instant::now(),
        epoch,
        offsets,
    };
    for (k, s) in conns.into_iter().enumerate() {
        s.set_read_timeout(Some(conn_timeout)).map_err(io_err)?;
        let rs = s.try_clone().map_err(io_err)?;
        sup.writers.push(s);
        let tx = sup.tx.clone();
        std::thread::spawn(move || parent_reader(rs, k, 0, tx));
    }
    let mut results: Vec<Option<ShardResult>> = (0..spec.shards).map(|_| None).collect();
    let mut snapshots: Vec<Vec<u8>> = Vec::new();
    let mut failure: Option<TransportError> = None;
    let mut pending = spec.shards;
    while pending > 0 && failure.is_none() {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((k, gen, _)) if gen != sup.gen[k] => {} // stale generation
            Ok((k, _, Ev::Result(res))) => {
                if res.shard != k
                    || (res.pe_lo..res.pe_hi) != shard_pe_range(spec.parts, spec.shards, k)
                {
                    failure = Some(TransportError::Protocol(format!(
                        "shard {k} reported foreign range {}..{}",
                        res.pe_lo, res.pe_hi
                    )));
                } else {
                    sup.settle_stall(k); // a late Result resolves a stall
                    results[k] = Some(*res);
                    pending -= 1;
                }
            }
            Ok((k, _, Ev::Telemetry(bytes))) => {
                let _ = k;
                snapshots.push(bytes);
            }
            Ok((k, _, Ev::Suspect(victim))) => {
                let actionable =
                    victim < spec.shards && results[victim].is_none() && !sup.in_grace(victim);
                if actionable {
                    sup.ledger.suspects += 1;
                    sup.incidents.push(Incident {
                        t_s: sup.t_s(),
                        kind: "suspect",
                        shard: victim,
                    });
                    let silent_s = conn_timeout.as_secs();
                    let done: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
                    failure = sup.try_respawn(
                        &mut ensemble,
                        victim,
                        &done,
                        TransportError::PeerSuspect {
                            shard: victim,
                            silent_s,
                        },
                    );
                }
                let _ = k;
            }
            Ok((k, _, Ev::Stall)) => {
                sup.ledger.wire_injected.stall += 1;
                sup.pending_stall[k] = true;
                sup.incidents.push(Incident {
                    t_s: sup.t_s(),
                    kind: "wire-stall",
                    shard: k,
                });
            }
            Ok((k, _, Ev::Silent)) => {
                if results[k].is_none() && !sup.in_grace(k) {
                    sup.ledger.suspects += 1;
                    sup.incidents.push(Incident {
                        t_s: sup.t_s(),
                        kind: "suspect",
                        shard: k,
                    });
                    let silent_s = conn_timeout.as_secs();
                    let done: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
                    failure = sup.try_respawn(
                        &mut ensemble,
                        k,
                        &done,
                        TransportError::PeerSuspect { shard: k, silent_s },
                    );
                }
            }
            Ok((k, _, Ev::Gone(e))) => {
                if results[k].is_none() {
                    let done: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
                    failure = sup.try_respawn(&mut ensemble, k, &done, e);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let done: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
                if let Some(k) = any_child_dead(&mut ensemble.children, &done) {
                    if !sup.in_grace(k) {
                        failure = sup.try_respawn(
                            &mut ensemble,
                            k,
                            &done,
                            TransportError::PeerDisconnected { shard: k },
                        );
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                failure = Some(TransportError::Protocol(
                    "result readers exited without reporting".into(),
                ));
            }
        }
    }
    if let Some(e) = failure {
        // Ensemble::drop kills the survivors; the closed sockets and the
        // read deadlines unwind the reader threads on their own.
        drop(ensemble);
        return Err(e);
    }
    // Release: the respawn-mode children hold the mesh open until this
    // Bye so a late rejoiner always finds its peers.
    for w in sup.writers.iter_mut() {
        let _ = write_frame(w, FrameKind::Bye, &[]);
    }

    // Merge: counters per owned slot, phase walls elementwise max (the
    // ensemble's critical path), fault ledgers summed, and the global
    // fold replayed first-writer-wins in ascending shard/PE order — the
    // exact order the in-process executor folds in.
    let nodes = built.system.global_nodes();
    let mut y = vec![Vec3::ZERO; nodes];
    let mut written = vec![false; nodes];
    let mut pe = vec![PeCounters::default(); spec.parts];
    let mut phases = PhaseWalls::default();
    let mut fault: Option<FaultReport> = None;
    let mut boundary: Option<Vec<usize>> = spec.overlap.then(|| vec![0usize; spec.parts]);
    for res in results.iter().map(|r| r.as_ref().expect("all reported")) {
        for (i, pr) in res.pes.iter().enumerate() {
            let q = res.pe_lo + i;
            if pr.gather.len() != pr.exchanged.len() {
                return Err(TransportError::Protocol(format!(
                    "PE {q}: gather/exchanged length mismatch"
                )));
            }
            for (l, &g) in pr.gather.iter().enumerate() {
                if g >= nodes {
                    return Err(TransportError::Protocol(format!(
                        "PE {q}: gather index {g} out of {nodes} nodes"
                    )));
                }
                if !written[g] {
                    written[g] = true;
                    y[g] = pr.exchanged[l];
                }
            }
            pe[q] = PeCounters {
                flops: pr.counters[0],
                words_sent: pr.counters[1],
                words_received: pr.counters[2],
                blocks_sent: pr.counters[3],
                blocks_received: pr.counters[4],
                t_assemble: pr.times[0],
                t_compute: pr.times[1],
                t_exchange: pr.times[2],
                t_barrier: pr.times[3],
            };
            if let (Some(b), Some(br)) = (boundary.as_mut(), pr.boundary_rows) {
                b[q] = br;
            }
        }
        phases.assemble = phases.assemble.max(res.phases[0]);
        phases.compute = phases.compute.max(res.phases[1]);
        phases.exchange = phases.exchange.max(res.phases[2]);
        phases.fold = phases.fold.max(res.phases[3]);
        if let Some(fr) = &res.fault {
            match fault.as_mut() {
                Some(acc) => acc.merge(fr),
                None => fault = Some(*fr),
            }
        }
    }
    if !written.iter().all(|&w| w) {
        return Err(TransportError::Protocol(
            "shard results do not cover every global node".into(),
        ));
    }
    // Fold in the parent's own supervision ledger (stall triple,
    // suspects, respawns).
    let supervised = sup.ledger.respawned_shards > 0
        || sup.ledger.suspects > 0
        || sup.ledger.wire_injected.total() > 0;
    if supervised {
        match fault.as_mut() {
            Some(acc) => acc.merge(&sup.ledger),
            None => fault = Some(sup.ledger),
        }
    }
    // Pair each shard's telemetry snapshot with the clock offset the
    // handshake measured for that exact generation; a snapshot whose
    // probe is missing aligns at offset 0 rather than being discarded.
    let mut shard_telemetry: Vec<ShardTrace> = Vec::with_capacity(snapshots.len());
    for bytes in &snapshots {
        match TelemetrySnapshot::decode(bytes) {
            Ok(snap) => {
                let clock_offset_ns = sup
                    .offsets
                    .iter()
                    .find(|(s, g, _)| *s == snap.ctx.shard as usize && *g == snap.ctx.generation)
                    .map_or(0, |&(_, _, o)| o);
                shard_telemetry.push(ShardTrace {
                    snap,
                    clock_offset_ns,
                });
            }
            Err(e) => eprintln!("quake: discarding malformed shard telemetry snapshot: {e}"),
        }
    }
    shard_telemetry.sort_by_key(|t| (t.snap.ctx.shard, t.snap.ctx.generation));
    // Every shard gets a ledger entry even on clean runs (a zeroed one):
    // the shard/generation-labeled metric series must exist whenever the
    // run was sharded, or dashboards built on them go blank between
    // incidents and a grep for a shard's series cannot distinguish
    // "healthy" from "unreported".
    let shard_faults: Vec<(usize, u32, FaultReport)> = results
        .iter()
        .enumerate()
        .map(|(k, r)| {
            let res = r.as_ref().expect("all reported");
            (
                k,
                (attempt_base + sup.gen[k]) as u32,
                res.fault.unwrap_or_default(),
            )
        })
        .collect();
    Ok(RunOutput {
        y,
        report: ExecutionReport {
            threads: spec.threads,
            steps: spec.steps,
            pe,
            phases,
            fault,
        },
        boundary_rows: boundary,
        link: params,
        modeled_exchange_s: None,
        incidents: sup.incidents,
        shard_telemetry,
        shard_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::frame;
    use crate::transport::GhostEdge;

    #[test]
    fn shard_ranges_tile_the_pe_space() {
        for parts in 1..12 {
            for shards in 1..=parts {
                let mut covered = 0;
                let mut expect_start = 0;
                for k in 0..shards {
                    let r = shard_pe_range(parts, shards, k);
                    assert_eq!(r.start, expect_start, "contiguous tiling");
                    expect_start = r.end;
                    covered += r.len();
                }
                assert_eq!(expect_start, parts);
                assert_eq!(covered, parts);
            }
        }
    }

    fn test_edges() -> Vec<GhostEdge> {
        vec![
            GhostEdge {
                from: 0,
                to: 1,
                len: 2,
            },
            GhostEdge {
                from: 1,
                to: 0,
                len: 2,
            },
        ]
    }

    /// A two-shard fabric whose only remote peer (shard 1) is a bare
    /// socketpair end — no parent, no respawn machinery.
    fn test_fabric(plan: WireFaultPlan) -> (Arc<Fabric>, Arc<Peer>) {
        let edges = test_edges();
        let mailbox = Arc::new(Mailbox::new(&edges, Duration::from_secs(2)));
        let map: Arc<EdgeMap> = Arc::new(
            edges
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.from, e.to), (i, e.len)))
                .collect(),
        );
        let peer = Arc::new(Peer::new(1));
        let fabric = Arc::new(Fabric {
            id: 0,
            dir: std::env::temp_dir(),
            conn_timeout: Duration::from_secs(2),
            respawn: false,
            restart_budget: 0,
            plan,
            origin: Instant::now(),
            wire: Mutex::new(FaultReport::default()),
            parent: None,
            stall_used: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            peers: vec![None, Some(Arc::clone(&peer))],
            mailbox,
            edges: map,
            relay: None,
            wire_delay: None,
            flows: Mutex::new(Vec::new()),
            flows_enabled: true,
            flows_dropped: AtomicU64::new(0),
        });
        (fabric, peer)
    }

    /// Wires a socketpair end into the peer slot and spawns its reader
    /// under epoch 0, returning the join handle.
    fn wire_up(
        fabric: &Arc<Fabric>,
        peer: &Arc<Peer>,
        stream: UnixStream,
    ) -> std::thread::JoinHandle<()> {
        *peer.conn.lock().unwrap() = Some(stream.try_clone().unwrap());
        peer.alive.store(true, Ordering::Release);
        peer.last_heard_ms.store(fabric.now_ms(), Ordering::Relaxed);
        let (f, p) = (Arc::clone(fabric), Arc::clone(peer));
        std::thread::spawn(move || reader_loop(f, p, stream, 0))
    }

    fn test_link(fabric: &Arc<Fabric>) -> ProcLink {
        ProcLink {
            shard: 0,
            fabric: Arc::clone(fabric),
            pe_owner: vec![0, 1],
            params: LinkParams {
                t_l: 0.0,
                t_w: 0.0,
                measured: false,
            },
            kill_at: None,
        }
    }

    #[test]
    fn reader_delivers_remote_ghost_blocks_into_the_mailbox() {
        let (mut ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::none());
        let h = wire_up(&fabric, &peer, theirs);
        let block = [Vec3::new(1.5, -2.5, 3.5), Vec3::new(0.25, 0.5, 0.75)];
        let payload = encode_ghost(3, 0, 1, &block);
        write_frame(&mut ours, FrameKind::Ghost, &payload).unwrap();
        let mut out = [Vec3::ZERO; 2];
        let info = fabric.mailbox.acquire(3, 0, 1, &mut out).unwrap();
        assert_eq!(out[0].x.to_bits(), block[0].x.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&block));
        assert!(peer.alive.load(Ordering::Acquire));
        write_frame(&mut ours, FrameKind::Bye, &[]).unwrap();
        h.join().unwrap();
        // An orderly Bye leaves posted blocks acquirable.
        assert!(peer.alive.load(Ordering::Acquire));
        assert!(peer.done.load(Ordering::Acquire));
        assert!(fabric.mailbox.acquire(3, 0, 1, &mut out).is_ok());
    }

    #[test]
    fn checksum_mismatch_triggers_resend_and_stream_stays_framed() {
        let (mut ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::none());
        let h = wire_up(&fabric, &peer, theirs);
        let block = [Vec3::new(9.0, 8.0, 7.0), Vec3::new(6.0, 5.0, 4.0)];
        let payload = encode_ghost(0, 0, 1, &block);
        // Corrupt one payload byte after framing: the frame checksum now
        // mismatches but the length prefix keeps the stream in sync.
        let mut bytes = frame::encode(FrameKind::Ghost, &payload);
        let flip = frame::HEADER_LEN + payload.len() / 2;
        bytes[flip] ^= 0xff;
        use std::io::Write as _;
        ours.write_all(&bytes).unwrap();
        // The reader must answer with a Resend request...
        let f = read_frame(&mut ours).unwrap();
        assert_eq!(f.kind, FrameKind::Resend);
        // ...and accept the clean replay on the still-framed stream.
        write_frame(&mut ours, FrameKind::Ghost, &payload).unwrap();
        let mut out = [Vec3::ZERO; 2];
        let info = fabric.mailbox.acquire(0, 0, 1, &mut out).unwrap();
        assert_eq!(out[1].z.to_bits(), block[1].z.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&block));
        drop(ours);
        h.join().unwrap();
    }

    #[test]
    fn peer_resends_its_cache_on_request() {
        // Post through a minimal ProcLink, then ask for a resend.
        let (ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::none());
        let reader = wire_up(&fabric, &peer, theirs);
        let link = test_link(&fabric);
        let block = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        link.post(5, 0, 1, &block).unwrap();
        let mut ours_r = ours.try_clone().unwrap();
        let f = read_frame(&mut ours_r).unwrap();
        assert_eq!(f.kind, FrameKind::Ghost);
        // Simulate a receiver that lost the frame: request a resend.
        let mut ours_w = ours;
        write_frame(&mut ours_w, FrameKind::Resend, &[]).unwrap();
        let f = read_frame(&mut ours_r).unwrap();
        assert_eq!(f.kind, FrameKind::Ghost);
        let g = decode_ghost(&f.payload).unwrap();
        assert_eq!(g.step, 5);
        assert_eq!((g.from, g.to), (0, 1));
        assert_eq!(g.block[1].y.to_bits(), block[1].y.to_bits());
        assert_eq!(fabric.ledger(|l| l.wire_resends), 1);
        // Typed errors on bad posts, never panics.
        assert!(matches!(
            link.post(5, 0, 1, &block[..1]),
            Err(TransportError::LengthMismatch { .. })
        ));
        assert!(matches!(
            link.post(5, 0, 9, &block),
            Err(TransportError::UnknownEdge { .. })
        ));
        drop(ours_w);
        drop(ours_r);
        reader.join().unwrap();
    }

    #[test]
    fn dead_peer_turns_acquires_into_typed_disconnects() {
        let (ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::none());
        let h = wire_up(&fabric, &peer, theirs);
        let link = test_link(&fabric);
        drop(ours); // peer dies without Bye
        h.join().unwrap();
        let mut out = [Vec3::ZERO; 2];
        assert_eq!(
            link.acquire(0, 1, 0, &mut out).unwrap_err(),
            TransportError::PeerDisconnected { shard: 1 }
        );
    }

    #[test]
    fn injected_wire_damage_is_resent_and_the_ledger_balances() {
        // A hot plan (rate 0.9) over a legacy fabric: resets and stalls
        // fall through to clean sends (they need the respawn machinery),
        // so every injection is a delay, a corruption or a truncation —
        // all recoverable on a bare socketpair via Resend + replay.
        let (ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::uniform(7, 0.9));
        let reader = wire_up(&fabric, &peer, theirs);
        let link = test_link(&fabric);
        let block = [Vec3::new(2.0, 4.0, 8.0), Vec3::new(1.0, 3.0, 9.0)];
        for step in 0..40u64 {
            link.post(step, 0, 1, &block).unwrap();
        }
        let injected = fabric.ledger(|l| l.wire_injected);
        assert!(injected.total() > 0, "a 0.9 plan over 40 frames injects");
        assert!(
            injected.corrupt + injected.truncate > 0,
            "damage kinds sampled"
        );
        assert_eq!(injected.reset + injected.stall, 0, "gated off respawn");
        // Far side: drain ghosts, answer every mismatch with Resend,
        // until the injector's books settle.
        ours.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut ours_r = ours.try_clone().unwrap();
        let mut ours_w = ours;
        let settle = Instant::now() + Duration::from_secs(10);
        loop {
            match read_frame(&mut ours_r) {
                Ok(_) => {}
                Err(FrameError::ChecksumMismatch { .. }) => {
                    write_frame(&mut ours_w, FrameKind::Resend, &[]).unwrap();
                }
                Err(FrameError::TimedOut) | Err(FrameError::Io(_)) => {
                    let l = fabric.ledger(|l| *l);
                    if l.wire_detected.total() == l.wire_injected.total() {
                        break;
                    }
                    assert!(Instant::now() < settle, "ledger never balanced: {l:?}");
                }
                Err(e) => panic!("far side lost framing: {e}"),
            }
        }
        let l = fabric.ledger(|l| *l);
        assert!(l.balanced(), "wire triple balances: {l:?}");
        assert_eq!(l.wire_detected.total(), l.wire_injected.total());
        assert_eq!(l.wire_recovered.total(), l.wire_injected.total());
        assert!(
            l.wire_resends >= l.wire_injected.corrupt + l.wire_injected.truncate,
            "every damaged frame drew a Resend"
        );
        drop(ours_w);
        drop(ours_r);
        reader.join().unwrap();
    }

    /// A four-shard, two-node fabric seen from shard 0 (leader of node 0
    /// = shards {0, 1}; node 1 = shards {2, 3}, led by shard 2). One PE
    /// per shard; peers 1..=3 are bare socketpair ends.
    fn relay_edges() -> Vec<GhostEdge> {
        vec![
            GhostEdge {
                from: 0,
                to: 2,
                len: 2,
            },
            GhostEdge {
                from: 1,
                to: 2,
                len: 1,
            },
            GhostEdge {
                from: 2,
                to: 0,
                len: 2,
            },
            GhostEdge {
                from: 2,
                to: 1,
                len: 1,
            },
        ]
    }

    fn relay_fabric() -> (Arc<Fabric>, Vec<Arc<Peer>>) {
        let edges = relay_edges();
        let mailbox = Arc::new(Mailbox::new(&edges, Duration::from_secs(2)));
        let map: Arc<EdgeMap> = Arc::new(
            edges
                .iter()
                .enumerate()
                .map(|(i, e)| ((e.from, e.to), (i, e.len)))
                .collect(),
        );
        let peers: Vec<Arc<Peer>> = (1..4).map(|j| Arc::new(Peer::new(j))).collect();
        let relay = NodeRelay::build(0, 4, 4, 2, &edges).expect("two-node topology");
        assert_eq!(relay.node, 0);
        assert_eq!(relay.leader, 0);
        assert_eq!(relay.leaders, vec![0, 2]);
        let fabric = Arc::new(Fabric {
            id: 0,
            dir: std::env::temp_dir(),
            conn_timeout: Duration::from_secs(2),
            respawn: false,
            restart_budget: 0,
            plan: WireFaultPlan::none(),
            origin: Instant::now(),
            wire: Mutex::new(FaultReport::default()),
            parent: None,
            stall_used: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            peers: std::iter::once(None)
                .chain(peers.iter().map(|p| Some(Arc::clone(p))))
                .collect(),
            mailbox,
            edges: map,
            relay: Some(relay),
            wire_delay: None,
            flows: Mutex::new(Vec::new()),
            flows_enabled: false,
            flows_dropped: AtomicU64::new(0),
        });
        (fabric, peers)
    }

    #[test]
    fn leader_merges_contributions_into_one_batch_frame() {
        let (fabric, peers) = relay_fabric();
        let (leader2_ours, leader2_theirs) = UnixStream::pair().unwrap();
        let h = wire_up(&fabric, &peers[1], leader2_theirs);
        let link = ProcLink {
            shard: 0,
            fabric: Arc::clone(&fabric),
            pe_owner: vec![0, 1, 2, 3],
            params: LinkParams {
                t_l: 0.0,
                t_w: 0.0,
                measured: false,
            },
            kill_at: None,
        };
        // The leader's own cross-node edge stages but does not flush: the
        // merged (0 -> 1) block still misses PE 1's contribution.
        let b02 = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)];
        link.post(5, 0, 2, &b02).unwrap();
        leader2_ours
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut rd = leader2_ours.try_clone().unwrap();
        assert!(
            matches!(read_frame(&mut rd), Err(FrameError::TimedOut)),
            "half-built merged block must not cross the node boundary"
        );
        // The member's contribution (as its reader thread would route it)
        // completes the manifest: exactly one GhostBatch crosses.
        let b12 = [Vec3::new(-7.0, 8.0, -9.0)];
        assert!(route_ghost(&fabric, 5, 1, 2, &b12));
        let f = read_frame(&mut rd).unwrap();
        assert_eq!(f.kind, FrameKind::GhostBatch);
        let subs = decode_ghost_batch(&f.payload).unwrap();
        assert_eq!(subs.len(), 2, "both riders in one frame");
        assert_eq!((subs[0].from, subs[0].to, subs[0].step), (0, 2, 5));
        assert_eq!((subs[1].from, subs[1].to, subs[1].step), (1, 2, 5));
        assert_eq!(subs[0].block[1].y.to_bits(), b02[1].y.to_bits());
        assert_eq!(subs[1].block[0].x.to_bits(), b12[0].x.to_bits());
        assert!(
            matches!(read_frame(&mut rd), Err(FrameError::TimedOut)),
            "exactly one frame per (node, node) pair per step"
        );
        // The merged frame sits in the replay cache under the batch key,
        // kind-tagged so a replay re-sends it as a batch.
        {
            let cache = peers[1].cache.lock().unwrap();
            let (kind, _) = cache.get(&(BATCH_KEY, 1)).expect("batch cached");
            assert_eq!(*kind, FrameKind::GhostBatch);
        }
        // A Resend replays it (and nothing of another kind) on request.
        let mut wr = leader2_ours.try_clone().unwrap();
        write_frame(&mut wr, FrameKind::Resend, &[]).unwrap();
        let f = read_frame(&mut rd).unwrap();
        assert_eq!(f.kind, FrameKind::GhostBatch);
        assert!(decode_ghost_batch(&f.payload).is_ok());
        drop(wr);
        drop(rd);
        drop(leader2_ours);
        h.join().unwrap();
    }

    #[test]
    fn inbound_merged_batches_scatter_to_mailbox_and_members() {
        let (fabric, peers) = relay_fabric();
        // Member 1's connection (to receive the forward)...
        let (member1_ours, member1_theirs) = UnixStream::pair().unwrap();
        let h1 = wire_up(&fabric, &peers[0], member1_theirs);
        // ...and remote leader 2's connection (to inject the batch).
        let (mut leader2_ours, leader2_theirs) = UnixStream::pair().unwrap();
        let h2 = wire_up(&fabric, &peers[1], leader2_theirs);
        let b20 = [Vec3::new(10.0, 20.0, 30.0), Vec3::new(40.0, 50.0, 60.0)];
        let b21 = [Vec3::new(-1.5, 2.5, -3.5)];
        let payload = encode_ghost_batch(&[(7, 2, 0, &b20[..]), (7, 2, 1, &b21[..])]);
        write_frame(&mut leader2_ours, FrameKind::GhostBatch, &payload).unwrap();
        // Our own PE's sub-block lands in the mailbox...
        let mut out = [Vec3::ZERO; 2];
        let info = fabric.mailbox.acquire(7, 2, 0, &mut out).unwrap();
        assert_eq!(out[0].x.to_bits(), b20[0].x.to_bits());
        assert_eq!(info.checksum, block_checksum_vec3(&b20));
        // ...and the sibling member's rides a per-edge Ghost forward.
        member1_ours
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut rd = member1_ours.try_clone().unwrap();
        let f = read_frame(&mut rd).unwrap();
        assert_eq!(f.kind, FrameKind::Ghost);
        let g = decode_ghost(&f.payload).unwrap();
        assert_eq!((g.step, g.from, g.to), (7, 2, 1));
        assert_eq!(g.block[0].z.to_bits(), b21[0].z.to_bits());
        // The forward is cached on the member's connection for replay.
        {
            let cache = peers[0].cache.lock().unwrap();
            let (kind, _) = cache.get(&(2, 1)).expect("forward cached");
            assert_eq!(*kind, FrameKind::Ghost);
        }
        drop(rd);
        drop(member1_ours);
        drop(leader2_ours);
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn relay_topology_is_inert_for_flat_and_single_node_runs() {
        assert!(NodeRelay::build(0, 4, 4, 0, &relay_edges()).is_none());
        assert!(NodeRelay::build(0, 4, 1, 2, &relay_edges()).is_none());
        assert!(NodeRelay::build(0, 4, 2, 3, &relay_edges()).is_none());
        // nodes == 1: every cross-shard edge is intra-node, so leaders
        // have nothing to aggregate and posts stay direct.
        let relay = NodeRelay::build(1, 4, 4, 1, &relay_edges()).expect("one-node topology");
        assert_eq!(relay.node, 0);
        assert_eq!(relay.leader, 0);
        assert!(relay.expected.iter().all(|s| s.is_empty()));
        assert_eq!(relay.node_of_pe(3), Some(0));
    }

    #[test]
    fn damage_credits_survive_a_dying_connection() {
        // A corrupted frame whose Resend never comes back must still
        // settle when the connection dies: the drain-credit at conn_down
        // keeps the shard's ledger a full triple.
        let (ours, theirs) = UnixStream::pair().unwrap();
        let (fabric, peer) = test_fabric(WireFaultPlan::none());
        let h = wire_up(&fabric, &peer, theirs);
        push_damage(&peer, WireFaultKind::Corrupt { salt: 3 });
        fabric.ledger(|l| l.wire_injected.corrupt += 1);
        drop(ours); // the peer dies before requesting a resend
        h.join().unwrap();
        let l = fabric.ledger(|l| *l);
        assert!(l.balanced(), "drain-credit balanced the triple: {l:?}");
        assert_eq!(l.wire_detected.corrupt, 1);
        assert_eq!(l.wire_recovered.corrupt, 1);
    }
}
