//! From partitioned mesh to the paper's characterization quantities: the
//! synthetic Figure 7 rows, EXFLOW-style aggregates, and netsim workloads.

use quake_core::characterize::{AppCommSummary, SmvpInstance};
use quake_core::machine::WORD_BYTES;
use quake_mesh::mesh::{TetMesh, BYTES_PER_NODE};
use quake_netsim::workload::Workload;
use quake_partition::comm::CommAnalysis;
use quake_partition::geometric::Partitioner;
use quake_partition::partition::Partition;

/// A fully analyzed SMVP instance: the Figure 7 row plus the data needed
/// for Figure 8 (bisection volume) and the β bound (Figure 6).
#[derive(Debug, Clone)]
pub struct AnalyzedInstance {
    /// The Figure 7 row.
    pub instance: SmvpInstance,
    /// The β bound for this partition.
    pub beta: f64,
    /// Words crossing the canonical bisection per SMVP.
    pub bisection_words: u64,
    /// Mean flops per PE (for imbalance reporting).
    pub f_avg: f64,
    /// The full communication analysis (retained for workload export).
    pub analysis: CommAnalysis,
}

impl AnalyzedInstance {
    /// Characterizes `mesh` partitioned into `parts` subdomains by
    /// `partitioner`.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn characterize<P: Partitioner + ?Sized>(
        app: &str,
        mesh: &TetMesh,
        partitioner: &P,
        parts: usize,
    ) -> Result<Self, quake_partition::partition::PartitionError> {
        let partition = partitioner.partition(mesh, parts)?;
        Ok(Self::from_partition(app, mesh, &partition))
    }

    /// Characterizes an existing partition.
    pub fn from_partition(app: &str, mesh: &TetMesh, partition: &Partition) -> Self {
        let analysis = CommAnalysis::new(mesh, partition);
        let instance = SmvpInstance::new(
            app,
            partition.parts(),
            analysis.f_max(),
            analysis.c_max(),
            analysis.b_max(),
            analysis.m_avg(),
        );
        AnalyzedInstance {
            instance,
            beta: analysis.beta(),
            bisection_words: analysis.bisection_words(),
            f_avg: analysis.f_avg(),
            analysis,
        }
    }

    /// The EXFLOW-comparison aggregates for this instance (the paper's §1
    /// table quotes *per-PE* figures: `C_max` bytes over `F` MFLOPs, `B_max`
    /// messages over `F` MFLOPs, and the mean message size).
    pub fn comm_summary(&self, mesh: &TetMesh) -> AppCommSummary {
        let i = &self.instance;
        let mflops = i.f as f64 / 1e6;
        AppCommSummary {
            data_mb_per_pe: mesh.node_count() as f64 * BYTES_PER_NODE as f64
                / i.subdomains as f64
                / 1e6,
            comm_kb_per_mflop: i.c_max as f64 * WORD_BYTES / 1e3 / mflops,
            messages_per_mflop: i.b_max as f64 / mflops,
            avg_message_kb: i.m_avg * WORD_BYTES / 1e3,
        }
    }

    /// Exports the netsim workload (per-PE flops + traffic matrix).
    pub fn workload(&self) -> Workload {
        let p = self.analysis.parts();
        let flops: Vec<u64> = self.analysis.per_pe().iter().map(|l| l.flops).collect();
        let traffic: Vec<Vec<u64>> = (0..p)
            .map(|i| (0..p).map(|j| self.analysis.traffic(i, j)).collect())
            .collect();
        Workload::new(flops, traffic).expect("CommAnalysis traffic is square and loop-free")
    }
}

/// Produces the synthetic Figure 7 table: one [`AnalyzedInstance`] per
/// subdomain count.
pub fn figure7_table<P: Partitioner + ?Sized>(
    app: &str,
    mesh: &TetMesh,
    partitioner: &P,
    subdomain_counts: &[usize],
) -> Vec<AnalyzedInstance> {
    subdomain_counts
        .iter()
        .map(|&p| {
            AnalyzedInstance::characterize(app, mesh, partitioner, p)
                .expect("positive part counts cannot fail")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_partition::geometric::RecursiveBisection;

    fn app() -> QuakeApp {
        QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap()
    }

    #[test]
    fn instance_fields_are_consistent() {
        let app = app();
        let a =
            AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
                .unwrap();
        let i = &a.instance;
        assert_eq!(i.subdomains, 8);
        assert!(i.f > 0);
        assert_eq!(i.c_max % 6, 0);
        assert_eq!(i.b_max % 2, 0);
        assert!((1.0..=2.0).contains(&a.beta));
        assert!(a.bisection_words > 0);
        assert!(a.f_avg <= i.f as f64);
    }

    #[test]
    fn figure7_ratio_falls_with_parts() {
        let app = app();
        let table = figure7_table(
            "sf10",
            &app.mesh,
            &RecursiveBisection::inertial(),
            &[2, 4, 8, 16],
        );
        assert_eq!(table.len(), 4);
        let ratios: Vec<f64> = table.iter().map(|a| a.instance.comp_comm_ratio()).collect();
        for w in ratios.windows(2) {
            assert!(
                w[1] < w[0] * 1.1,
                "F/C_max should broadly fall with p: {ratios:?}"
            );
        }
    }

    #[test]
    fn workload_matches_analysis() {
        let app = app();
        let a =
            AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::coordinate(), 4)
                .unwrap();
        let w = a.workload();
        assert_eq!(w.parts(), 4);
        assert_eq!(w.c_max(), a.instance.c_max);
        assert_eq!(w.b_max(), a.instance.b_max);
        assert_eq!(w.f_max(), a.instance.f);
    }

    #[test]
    fn comm_summary_units() {
        let app = app();
        let a =
            AnalyzedInstance::characterize("sf10", &app.mesh, &RecursiveBisection::inertial(), 8)
                .unwrap();
        let s = a.comm_summary(&app.mesh);
        assert!(s.data_mb_per_pe > 0.0);
        assert!(s.comm_kb_per_mflop > 0.0);
        assert!(s.messages_per_mflop > 0.0);
        // Message size consistency: volume/messages ≈ m_avg.
        assert!((s.avg_message_kb - a.instance.m_avg * 8.0 / 1e3).abs() < 1e-12);
    }
}
