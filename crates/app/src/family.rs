//! The synthetic Quake application family: sf10′, sf5′, sf2′, sf1′.
//!
//! Each member resolves seismic waves of a given period on the
//! San-Fernando-like basin; halving the period multiplies the node count by
//! ≈ 8, reproducing the paper's Figure 2 scaling. A *scale* parameter
//! shrinks the domain linearly so tests and laptops can run geometrically
//! similar miniatures (the architectural ratios depend on mesh structure,
//! not absolute size).

use quake_mesh::generator::{generate_basin_mesh, GenerateError, GeneratorOptions};
use quake_mesh::ground::BasinModel;
use quake_mesh::mesh::{MeshSizeStats, TetMesh};
use serde::{Deserialize, Serialize};

/// Configuration of one synthetic Quake application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppConfig {
    /// Application name (`sf10`, `sf5`, …).
    pub name: String,
    /// Resolved wave period in seconds.
    pub period_s: f64,
    /// Linear domain shrink factor (1.0 = paper-sized domain).
    pub scale: f64,
    /// Mesh generator seed.
    pub seed: u64,
}

impl AppConfig {
    /// The canonical member with the given period at a given scale.
    pub fn new(name: impl Into<String>, period_s: f64, scale: f64) -> Self {
        AppConfig {
            name: name.into(),
            period_s,
            scale,
            seed: 0x5eed,
        }
    }
}

/// The standard family at a given scale: sf10, sf5, and (for `scale ≤ 4`)
/// sf2. sf1 is omitted by default — at scale 1 it would need ~2.5M nodes,
/// which is a batch job, not a test.
pub fn standard_family(scale: f64) -> Vec<AppConfig> {
    let mut family = vec![
        AppConfig::new("sf10", 10.0, scale),
        AppConfig::new("sf5", 5.0, scale),
    ];
    if scale <= 4.0 {
        family.push(AppConfig::new("sf2", 2.0, scale));
    }
    family
}

/// A generated application: its config, ground model, and mesh.
#[derive(Debug, Clone)]
pub struct QuakeApp {
    /// The configuration that produced this app.
    pub config: AppConfig,
    /// The ground model.
    pub ground: BasinModel,
    /// The generated mesh.
    pub mesh: TetMesh,
}

impl QuakeApp {
    /// Generates the mesh for `config` over the standard basin.
    ///
    /// # Errors
    ///
    /// Propagates mesh-generation failures.
    pub fn generate(config: AppConfig) -> Result<Self, GenerateError> {
        let ground = BasinModel::san_fernando_like();
        let options = GeneratorOptions {
            seed: config.seed,
            ..GeneratorOptions::default()
        };
        let mesh = generate_basin_mesh(&ground, config.period_s, config.scale, options)?;
        Ok(QuakeApp {
            config,
            ground,
            mesh,
        })
    }

    /// Mesh size statistics (the synthetic Figure 2 row).
    pub fn size_stats(&self) -> MeshSizeStats {
        self.mesh.size_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_membership() {
        let fam = standard_family(8.0);
        assert_eq!(fam.len(), 2);
        let fam = standard_family(4.0);
        assert_eq!(fam.len(), 3);
        assert_eq!(fam[2].name, "sf2");
        assert_eq!(fam[0].period_s, 10.0);
    }

    #[test]
    fn generation_produces_graded_mesh() {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let stats = app.size_stats();
        assert!(stats.nodes > 50);
        assert!(stats.elements > stats.nodes);
        assert!(stats.edges > stats.nodes);
    }

    #[test]
    fn period_halving_scales_nodes() {
        let coarse = QuakeApp::generate(AppConfig::new("sf20", 20.0, 8.0)).unwrap();
        let fine = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let growth = fine.size_stats().nodes as f64 / coarse.size_stats().nodes as f64;
        assert!(
            (3.0..16.0).contains(&growth),
            "growth {growth} should be ≈ 8 (paper Fig. 2)"
        );
    }

    #[test]
    fn average_degree_matches_paper_ballpark() {
        // Paper: each node connected to ≈ 13 neighbors + self ⇒ degree ≈ 14.
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let degree = app.mesh.avg_node_degree();
        assert!(
            (9.0..20.0).contains(&degree),
            "avg node degree {degree} far from the paper's ≈ 14"
        );
    }

    #[test]
    fn config_round_trips_name() {
        let c = AppConfig::new("sf5", 5.0, 2.0);
        assert_eq!(c.name, "sf5");
        assert_eq!(c.scale, 2.0);
    }
}
