//! Instrumented bulk-synchronous SMVP executor.
//!
//! [`DistributedSystem::smvp`](crate::distributed::DistributedSystem::smvp)
//! models the paper's distributed product but runs serially and reports
//! nothing. [`BspExecutor`] runs the same assemble→compute→exchange→fold
//! phases over a persistent [`WorkerPool`] — one task per PE per phase,
//! with the pool's batch barrier standing in for the machine's phase
//! barriers — and *measures* what the characterization layer only
//! *predicts*: per-PE flops, words and blocks sent/received, per-phase
//! wall times, and per-PE barrier wait.
//!
//! Observed `F_i`/`C_i`/`B_i` are counted from the data structures the
//! kernel actually traverses, so for a correct build they match
//! [`CommAnalysis`](quake_partition::comm::CommAnalysis) *exactly* — that
//! exact match (checked in tests and by `quake smvp-run`) is the executor's
//! reason to exist: it closes the loop between the paper's Figure 7
//! characterization and a live parallel execution, and its phase times feed
//! the Eq. (1)/(2) validation in `quake_core::model::validate`.

use crate::distributed::DistributedSystem;
use quake_core::model::validate::MeasuredSmvp;
use quake_spark::pool::{Task, WorkerPool};
use quake_sparse::dense::Vec3;
use std::time::Instant;

/// Observability counters for one PE, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeCounters {
    /// Flops executed by this PE's local SMVPs (18 per traversed 3×3 block,
    /// the paper's `F_i = 2·m_i`).
    pub flops: u64,
    /// Words this PE sent during exchange phases.
    pub words_sent: u64,
    /// Words this PE received during exchange phases.
    pub words_received: u64,
    /// Messages (blocks under maximal aggregation) this PE sent.
    pub blocks_sent: u64,
    /// Messages this PE received.
    pub blocks_received: u64,
    /// Seconds spent gathering local `x` (assemble phase).
    pub t_assemble: f64,
    /// Seconds spent in local SMVP (compute phase).
    pub t_compute: f64,
    /// Seconds spent summing neighbor contributions (exchange phase).
    pub t_exchange: f64,
    /// Seconds spent waiting at phase barriers (phase wall time minus this
    /// PE's own work, summed over phases and steps).
    pub t_barrier: f64,
}

impl PeCounters {
    /// Words sent + received (the paper's `C_i`).
    pub fn words(&self) -> u64 {
        self.words_sent + self.words_received
    }

    /// Blocks sent + received (the paper's `B_i`).
    pub fn blocks(&self) -> u64 {
        self.blocks_sent + self.blocks_received
    }
}

/// Wall-clock seconds per phase, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseWalls {
    /// Assemble (gather local `x`) phase.
    pub assemble: f64,
    /// Compute (local SMVP) phase.
    pub compute: f64,
    /// Exchange (pairwise sum) phase.
    pub exchange: f64,
    /// Fold (replicated results → global vector) phase.
    pub fold: f64,
}

impl PhaseWalls {
    /// Total wall-clock across phases.
    pub fn total(&self) -> f64 {
        self.assemble + self.compute + self.exchange + self.fold
    }
}

/// Structured measurement report of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Worker threads in the pool.
    pub threads: usize,
    /// SMVP steps executed.
    pub steps: u64,
    /// Per-PE counters (accumulated over all steps).
    pub pe: Vec<PeCounters>,
    /// Per-phase wall times (accumulated over all steps).
    pub phases: PhaseWalls,
}

impl ExecutionReport {
    /// Observed max per-PE flops per SMVP (the paper's `F`).
    pub fn f_max(&self) -> u64 {
        self.per_step_max(|c| c.flops)
    }

    /// Observed max per-PE words per SMVP (`C_max`).
    pub fn c_max(&self) -> u64 {
        self.per_step_max(|c| c.words())
    }

    /// Observed max per-PE blocks per SMVP (`B_max`).
    pub fn b_max(&self) -> u64 {
        self.per_step_max(|c| c.blocks())
    }

    /// Observed per-PE `(C_i, B_i)` loads per SMVP, the β-bound input.
    pub fn comm_loads(&self) -> Vec<(u64, u64)> {
        let steps = self.steps.max(1);
        self.pe
            .iter()
            .map(|c| (c.words() / steps, c.blocks() / steps))
            .collect()
    }

    /// Compute-phase wall seconds per SMVP step.
    pub fn t_compute_per_step(&self) -> f64 {
        self.phases.compute / self.steps.max(1) as f64
    }

    /// Exchange-phase wall seconds per SMVP step.
    pub fn t_exchange_per_step(&self) -> f64 {
        self.phases.exchange / self.steps.max(1) as f64
    }

    /// Measured parallel efficiency proxy: compute wall over compute +
    /// exchange wall (the paper's `E` with communication as the only
    /// overhead).
    pub fn efficiency(&self) -> f64 {
        let c = self.phases.compute;
        let x = self.phases.exchange;
        if c + x == 0.0 {
            return 1.0;
        }
        c / (c + x)
    }

    /// Per-PE exchange seconds per step (for fitting effective `t_l`/`t_w`).
    pub fn exchange_times_per_step(&self) -> Vec<f64> {
        let steps = self.steps.max(1) as f64;
        self.pe.iter().map(|c| c.t_exchange / steps).collect()
    }

    /// The per-SMVP measurements in the shape
    /// [`quake_core::model::validate`] consumes.
    pub fn measured(&self) -> MeasuredSmvp {
        let steps = self.steps.max(1);
        MeasuredSmvp {
            per_pe_flops: self.pe.iter().map(|c| c.flops / steps).collect(),
            per_pe_loads: self.comm_loads(),
            per_pe_exchange: self.exchange_times_per_step(),
            t_compute: self
                .pe
                .iter()
                .map(|c| c.t_compute / steps as f64)
                .fold(0.0, f64::max),
        }
    }

    fn per_step_max(&self, f: impl Fn(&PeCounters) -> u64) -> u64 {
        let steps = self.steps.max(1);
        self.pe.iter().map(|c| f(c) / steps).max().unwrap_or(0)
    }
}

/// Per-PE slice of the exchange schedule: what PE `q` receives, from whom.
struct Inbound {
    neighbor: usize,
    /// `(local index on q, local index on neighbor)` per shared node.
    pairs: Vec<(usize, usize)>,
}

/// Bulk-synchronous instrumented executor over a [`DistributedSystem`].
pub struct BspExecutor<'a> {
    system: &'a DistributedSystem,
    pool: WorkerPool,
    /// `inbound[q]`: messages PE q receives each exchange phase.
    inbound: Vec<Vec<Inbound>>,
    counters: Vec<PeCounters>,
    phases: PhaseWalls,
    steps: u64,
}

impl<'a> BspExecutor<'a> {
    /// Creates an executor running `system`'s PEs on `threads` pooled
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(system: &'a DistributedSystem, threads: usize) -> Self {
        let p = system.parts();
        let mut inbound: Vec<Vec<Inbound>> = (0..p).map(|_| Vec::new()).collect();
        for ex in system.exchanges() {
            inbound[ex.a].push(Inbound {
                neighbor: ex.b,
                pairs: ex.pairs.clone(),
            });
            inbound[ex.b].push(Inbound {
                neighbor: ex.a,
                pairs: ex.pairs.iter().map(|&(la, lb)| (lb, la)).collect(),
            });
        }
        BspExecutor {
            system,
            pool: WorkerPool::new(threads),
            inbound,
            counters: vec![PeCounters::default(); p],
            phases: PhaseWalls::default(),
            steps: 0,
        }
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Executes one bulk-synchronous SMVP `y = Kx` for a global input
    /// vector, updating the counters.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the mesh node count.
    pub fn step(&mut self, x: &[Vec3]) -> Vec<Vec3> {
        assert_eq!(
            x.len(),
            self.system.global_nodes(),
            "x length must match mesh nodes"
        );
        let subdomains = self.system.subdomains();
        let p = subdomains.len();
        let mut elapsed = vec![0.0f64; p];

        // --- Assemble phase: gather replicated local x per PE. ---
        let mut x_local: Vec<Vec<Vec3>> = (0..p).map(|_| Vec::new()).collect();
        let wall = self.phase(
            x_local
                .iter_mut()
                .zip(subdomains)
                .zip(elapsed.iter_mut())
                .map(|((xl, sd), dt)| {
                    Box::new(move || {
                        let t0 = Instant::now();
                        xl.extend(sd.global_nodes.iter().map(|&g| x[g]));
                        *dt = t0.elapsed().as_secs_f64();
                    }) as Task
                })
                .collect(),
        );
        self.phases.assemble += wall;
        for (c, &dt) in self.counters.iter_mut().zip(&elapsed) {
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }

        // --- Compute phase: local SMVP per PE. ---
        let mut partials: Vec<Vec<Vec3>> = (0..p).map(|_| Vec::new()).collect();
        let wall = self.phase(
            partials
                .iter_mut()
                .zip(subdomains)
                .zip(x_local.iter())
                .zip(elapsed.iter_mut())
                .map(|(((part, sd), xl), dt)| {
                    Box::new(move || {
                        let t0 = Instant::now();
                        *part = sd
                            .stiffness
                            .spmv_alloc(xl)
                            .expect("local dimensions consistent by construction");
                        *dt = t0.elapsed().as_secs_f64();
                    }) as Task
                })
                .collect(),
        );
        self.phases.compute += wall;
        for ((c, &dt), sd) in self.counters.iter_mut().zip(&elapsed).zip(subdomains) {
            c.t_compute += dt;
            c.t_barrier += (wall - dt).max(0.0);
            // 18 flops per traversed 3×3 block: the paper's F_i = 2·m_i
            // counted from the matrix this step just multiplied.
            c.flops += sd.smvp_flops();
        }

        // --- Exchange phase: each PE sums neighbor contributions into its
        // own copy, reading the immutable compute-phase snapshot. ---
        let mut exchanged: Vec<Vec<Vec3>> = (0..p).map(|_| Vec::new()).collect();
        let partials_ref = &partials;
        let inbound_ref = &self.inbound;
        let wall = self.phase(
            exchanged
                .iter_mut()
                .zip(elapsed.iter_mut())
                .enumerate()
                .map(|(q, (out, dt))| {
                    Box::new(move || {
                        let t0 = Instant::now();
                        let mut acc = partials_ref[q].clone();
                        for msg in &inbound_ref[q] {
                            let theirs = &partials_ref[msg.neighbor];
                            for &(mine, their) in &msg.pairs {
                                acc[mine] += theirs[their];
                            }
                        }
                        *out = acc;
                        *dt = t0.elapsed().as_secs_f64();
                    }) as Task
                })
                .collect(),
        );
        self.phases.exchange += wall;
        for (q, (c, &dt)) in self.counters.iter_mut().zip(&elapsed).enumerate() {
            c.t_exchange += dt;
            c.t_barrier += (wall - dt).max(0.0);
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
        }

        // --- Fold phase: replicated results → global vector. ---
        let t0 = Instant::now();
        let mut y = vec![Vec3::ZERO; self.system.global_nodes()];
        let mut written = vec![false; y.len()];
        for (sd, part) in subdomains.iter().zip(&exchanged) {
            for (l, &g) in sd.global_nodes.iter().enumerate() {
                if written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    written[g] = true;
                }
            }
        }
        self.phases.fold += t0.elapsed().as_secs_f64();

        self.steps += 1;
        y
    }

    /// Runs `steps` SMVPs of the same input (the paper's repeated time-loop
    /// product) and returns the final result.
    pub fn run(&mut self, x: &[Vec3], steps: u64) -> Vec<Vec3> {
        let mut y = Vec::new();
        for _ in 0..steps {
            y = self.step(x);
        }
        y
    }

    /// The accumulated measurement report.
    pub fn report(&self) -> ExecutionReport {
        ExecutionReport {
            threads: self.pool.threads(),
            steps: self.steps,
            pe: self.counters.clone(),
            phases: self.phases,
        }
    }

    /// Runs one task batch as a barrier-delimited phase, returning its wall
    /// time in seconds.
    fn phase(&self, tasks: Vec<Task>) -> f64 {
        let t0 = Instant::now();
        self.pool.execute(tasks);
        t0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_fem::assembly::UniformMaterial;
    use quake_mesh::ground::Material;
    use quake_mesh::mesh::TetMesh;
    use quake_partition::comm::CommAnalysis;
    use quake_partition::geometric::{Partitioner, RecursiveBisection};
    use quake_partition::partition::Partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(parts: usize) -> (TetMesh, Partition, DistributedSystem) {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, parts)
            .unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat)).unwrap();
        (app.mesh, partition, sys)
    }

    fn random_x(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn executor_matches_serial_distributed_smvp() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 11);
        let serial = sys.smvp(&x);
        for threads in [1, 4] {
            let mut exec = BspExecutor::new(&sys, threads);
            let pooled = exec.step(&x);
            let scale: f64 = serial.iter().map(|v| v.norm()).fold(0.0, f64::max);
            for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
                assert!(
                    (*a - *b).norm() <= 1e-12 * (1.0 + scale),
                    "node {i} at {threads} threads: serial {a} vs pooled {b}"
                );
            }
        }
    }

    #[test]
    fn measured_counters_match_characterization_exactly() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 3);
        let mut exec = BspExecutor::new(&sys, 4);
        exec.run(&x, 3);
        let report = exec.report();
        assert_eq!(report.steps, 3);
        assert_eq!(report.f_max(), analysis.f_max(), "F mismatch");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max mismatch");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max mismatch");
        for (q, (c, predicted)) in report.pe.iter().zip(analysis.per_pe()).enumerate() {
            assert_eq!(c.flops / 3, predicted.flops, "PE {q} flops");
            assert_eq!(c.words() / 3, predicted.words, "PE {q} words");
            assert_eq!(c.blocks() / 3, predicted.blocks, "PE {q} blocks");
            assert_eq!(c.words_sent, c.words_received, "exchange is symmetric");
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let (mesh, _, sys) = setup(2);
        let x = random_x(mesh.node_count(), 5);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.run(&x, 2);
        let report = exec.report();
        assert!(report.phases.compute > 0.0);
        assert!(report.phases.exchange > 0.0);
        assert!(report.phases.total() > 0.0);
        assert!(report.efficiency() > 0.0 && report.efficiency() <= 1.0);
        for c in &report.pe {
            assert!(c.t_compute > 0.0);
            assert!(c.t_barrier >= 0.0);
        }
    }

    #[test]
    fn single_pe_has_no_communication() {
        let (mesh, _, _) = setup(2);
        let partition = RecursiveBisection::inertial().partition(&mesh, 1).unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&mesh, &partition, &UniformMaterial(mat)).unwrap();
        let x = random_x(mesh.node_count(), 7);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.step(&x);
        let report = exec.report();
        assert_eq!(report.c_max(), 0);
        assert_eq!(report.b_max(), 0);
        assert_eq!(report.efficiency(), report.efficiency().clamp(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let (_, _, sys) = setup(2);
        let mut exec = BspExecutor::new(&sys, 2);
        let _ = exec.step(&[Vec3::ZERO]);
    }
}
