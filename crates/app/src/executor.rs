//! Instrumented bulk-synchronous SMVP executor.
//!
//! [`DistributedSystem::smvp`](crate::distributed::DistributedSystem::smvp)
//! models the paper's distributed product but runs serially and reports
//! nothing. [`BspExecutor`] runs the same assemble→compute→exchange→fold
//! phases over a persistent [`WorkerPool`] — PEs striped across workers
//! per phase, with the pool's broadcast barrier standing in for the
//! machine's phase barriers — and *measures* what the characterization
//! layer only *predicts*: per-PE flops, words and blocks sent/received,
//! per-phase wall times, and per-PE barrier wait.
//!
//! Observed `F_i`/`C_i`/`B_i` are counted from the data structures the
//! kernel actually traverses, so for a correct build they match
//! [`CommAnalysis`](quake_partition::comm::CommAnalysis) *exactly* — that
//! exact match (checked in tests and by `quake smvp-run`) is the executor's
//! reason to exist: it closes the loop between the paper's Figure 7
//! characterization and a live parallel execution, and its phase times feed
//! the Eq. (1)/(2) validation in `quake_core::model::validate`.
//!
//! # Allocation-free steady state
//!
//! The paper's time loop repeats this product 6000 times, so the executor
//! owns every per-step buffer (`x_local`, partials, exchanged copies,
//! timing scratch) and each [`BspExecutor::step_into`] reuses them: after
//! the first step no phase allocates, dispatch goes through
//! [`WorkerPool::broadcast`] (one shared closure per phase, nothing boxed),
//! and the measured phase walls reflect memory-system behaviour instead of
//! allocator traffic. [`BspExecutor::buffer_fingerprint`] exposes buffer
//! pointers/capacities so tests can assert the steady state really is
//! allocation-free.
//!
//! # RCM locality pre-pass
//!
//! [`BspExecutor::with_rcm`] renumbers each PE's local nodes with reverse
//! Cuthill–McKee before executing: the local stiffness is permuted
//! (`P K Pᵀ`), the gather list and exchange pair indices are remapped to
//! match, and everything downstream runs over the bandwidth-reduced
//! matrices. The permutation relabels rows within each PE, so flop and
//! communication counters are invariant — the `CommAnalysis` match stays
//! exact — while the `x[col]` gather of the compute phase touches a
//! compact window of the local vector (the paper's "irregular memory
//! reference" mitigation, executed rather than simulated).

use crate::distributed::DistributedSystem;
use quake_core::model::validate::MeasuredSmvp;
use quake_spark::pool::WorkerPool;
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::dense::Vec3;
use quake_sparse::pattern::Pattern;
use quake_sparse::reorder::rcm;
use std::time::Instant;

/// Observability counters for one PE, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeCounters {
    /// Flops executed by this PE's local SMVPs (18 per traversed 3×3 block,
    /// the paper's `F_i = 2·m_i`).
    pub flops: u64,
    /// Words this PE sent during exchange phases.
    pub words_sent: u64,
    /// Words this PE received during exchange phases.
    pub words_received: u64,
    /// Messages (blocks under maximal aggregation) this PE sent.
    pub blocks_sent: u64,
    /// Messages this PE received.
    pub blocks_received: u64,
    /// Seconds spent gathering local `x` (assemble phase).
    pub t_assemble: f64,
    /// Seconds spent in local SMVP (compute phase).
    pub t_compute: f64,
    /// Seconds spent summing neighbor contributions (exchange phase).
    pub t_exchange: f64,
    /// Seconds spent waiting at phase barriers (phase wall time minus this
    /// PE's own work, summed over phases and steps).
    pub t_barrier: f64,
}

impl PeCounters {
    /// Words sent + received (the paper's `C_i`).
    pub fn words(&self) -> u64 {
        self.words_sent + self.words_received
    }

    /// Blocks sent + received (the paper's `B_i`).
    pub fn blocks(&self) -> u64 {
        self.blocks_sent + self.blocks_received
    }
}

/// Wall-clock seconds per phase, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseWalls {
    /// Assemble (gather local `x`) phase.
    pub assemble: f64,
    /// Compute (local SMVP) phase.
    pub compute: f64,
    /// Exchange (pairwise sum) phase.
    pub exchange: f64,
    /// Fold (replicated results → global vector) phase.
    pub fold: f64,
}

impl PhaseWalls {
    /// Total wall-clock across phases.
    pub fn total(&self) -> f64 {
        self.assemble + self.compute + self.exchange + self.fold
    }
}

/// Structured measurement report of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Worker threads in the pool.
    pub threads: usize,
    /// SMVP steps executed.
    pub steps: u64,
    /// Per-PE counters (accumulated over all steps).
    pub pe: Vec<PeCounters>,
    /// Per-phase wall times (accumulated over all steps).
    pub phases: PhaseWalls,
}

impl ExecutionReport {
    /// Observed max per-PE flops per SMVP (the paper's `F`).
    pub fn f_max(&self) -> u64 {
        self.per_step_max(|c| c.flops)
    }

    /// Observed max per-PE words per SMVP (`C_max`).
    pub fn c_max(&self) -> u64 {
        self.per_step_max(|c| c.words())
    }

    /// Observed max per-PE blocks per SMVP (`B_max`).
    pub fn b_max(&self) -> u64 {
        self.per_step_max(|c| c.blocks())
    }

    /// Observed per-PE `(C_i, B_i)` loads per SMVP, the β-bound input.
    pub fn comm_loads(&self) -> Vec<(u64, u64)> {
        let steps = self.steps.max(1);
        self.pe
            .iter()
            .map(|c| (c.words() / steps, c.blocks() / steps))
            .collect()
    }

    /// Compute-phase wall seconds per SMVP step.
    pub fn t_compute_per_step(&self) -> f64 {
        self.phases.compute / self.steps.max(1) as f64
    }

    /// Exchange-phase wall seconds per SMVP step.
    pub fn t_exchange_per_step(&self) -> f64 {
        self.phases.exchange / self.steps.max(1) as f64
    }

    /// Measured parallel efficiency proxy: compute wall over compute +
    /// exchange wall (the paper's `E` with communication as the only
    /// overhead).
    pub fn efficiency(&self) -> f64 {
        let c = self.phases.compute;
        let x = self.phases.exchange;
        if c + x == 0.0 {
            return 1.0;
        }
        c / (c + x)
    }

    /// Per-PE exchange seconds per step (for fitting effective `t_l`/`t_w`).
    pub fn exchange_times_per_step(&self) -> Vec<f64> {
        let steps = self.steps.max(1) as f64;
        self.pe.iter().map(|c| c.t_exchange / steps).collect()
    }

    /// The per-SMVP measurements in the shape
    /// [`quake_core::model::validate`] consumes.
    pub fn measured(&self) -> MeasuredSmvp {
        let steps = self.steps.max(1);
        MeasuredSmvp {
            per_pe_flops: self.pe.iter().map(|c| c.flops / steps).collect(),
            per_pe_loads: self.comm_loads(),
            per_pe_exchange: self.exchange_times_per_step(),
            t_compute: self
                .pe
                .iter()
                .map(|c| c.t_compute / steps as f64)
                .fold(0.0, f64::max),
        }
    }

    fn per_step_max(&self, f: impl Fn(&PeCounters) -> u64) -> u64 {
        let steps = self.steps.max(1);
        self.pe.iter().map(|c| f(c) / steps).max().unwrap_or(0)
    }
}

/// Per-PE slice of the exchange schedule: what PE `q` receives, from whom.
struct Inbound {
    neighbor: usize,
    /// `(local index on q, local index on neighbor)` per shared node.
    pairs: Vec<(usize, usize)>,
}

/// One PE's executable state: the gather list and stiffness it actually
/// traverses (identical to the subdomain's, or RCM-renumbered).
struct PeState {
    /// `gather[l]`: global node id held in local slot `l`.
    gather: Vec<usize>,
    stiffness: Bcsr3,
}

/// A raw pointer that may cross thread boundaries; each phase closure
/// dereferences it only for the PEs its worker owns (disjoint indices), and
/// the broadcast barrier orders every access.
struct SendPtr<T>(*mut T);

// Manual impls: the derived ones would demand `T: Copy`, but copying the
// *pointer* never copies the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the type's doc comment — all dereferences are to disjoint
// per-PE elements between barriers.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

/// The `w`-th of `workers` near-equal contiguous chunks of `0..p` — the
/// static PE-to-worker assignment, computed arithmetically so phase
/// closures never allocate.
fn pe_chunk(p: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    (p * w / workers)..(p * (w + 1) / workers)
}

/// Bulk-synchronous instrumented executor over a [`DistributedSystem`].
pub struct BspExecutor {
    pool: WorkerPool,
    pe: Vec<PeState>,
    /// `inbound[q]`: messages PE q receives each exchange phase.
    inbound: Vec<Vec<Inbound>>,
    global_nodes: usize,
    rcm: bool,
    // Persistent per-step buffers: sized once in `build`, reused by every
    // `step_into` so the steady-state step never touches the allocator.
    x_local: Vec<Vec<Vec3>>,
    partials: Vec<Vec<Vec3>>,
    exchanged: Vec<Vec<Vec3>>,
    elapsed: Vec<f64>,
    written: Vec<bool>,
    counters: Vec<PeCounters>,
    phases: PhaseWalls,
    steps: u64,
}

impl BspExecutor {
    /// Creates an executor running `system`'s PEs on `threads` pooled
    /// workers, in the subdomains' natural node order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(system: &DistributedSystem, threads: usize) -> Self {
        Self::build(system, threads, false)
    }

    /// Like [`BspExecutor::new`], but renumbers each PE's local nodes with
    /// reverse Cuthill–McKee first (see the module docs). Numerics and
    /// counters are unchanged; only the traversal order (and hence cache
    /// behaviour) differs.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_rcm(system: &DistributedSystem, threads: usize) -> Self {
        Self::build(system, threads, true)
    }

    fn build(system: &DistributedSystem, threads: usize, use_rcm: bool) -> Self {
        let subdomains = system.subdomains();
        let p = subdomains.len();
        // Per-PE local permutations (`perm[old] = new`), or None for the
        // natural order.
        let perms: Vec<Option<Vec<usize>>> = subdomains
            .iter()
            .map(|sd| {
                if !use_rcm {
                    return None;
                }
                let n = sd.stiffness.block_rows();
                let (row_ptr, col_idx) = sd.stiffness.adjacency();
                let mut edges = Vec::new();
                for i in 0..n {
                    for k in row_ptr[i]..row_ptr[i + 1] {
                        let j = col_idx[k];
                        if j > i {
                            edges.push((i, j));
                        }
                    }
                }
                let pattern =
                    Pattern::from_edges(n, &edges).expect("block adjacency indices are in range");
                Some(rcm(&pattern))
            })
            .collect();
        let pe: Vec<PeState> = subdomains
            .iter()
            .zip(&perms)
            .map(|(sd, perm)| match perm {
                None => PeState {
                    gather: sd.global_nodes.clone(),
                    stiffness: sd.stiffness.clone(),
                },
                Some(perm) => {
                    let mut gather = vec![0usize; sd.node_count()];
                    for (old, &g) in sd.global_nodes.iter().enumerate() {
                        gather[perm[old]] = g;
                    }
                    PeState {
                        gather,
                        stiffness: sd
                            .stiffness
                            .permute_symmetric(perm)
                            .expect("RCM yields a valid permutation"),
                    }
                }
            })
            .collect();
        // Exchange pair indices are local slots, so they follow the
        // renumbering.
        let map = |q: usize, l: usize| perms[q].as_ref().map_or(l, |pm| pm[l]);
        let mut inbound: Vec<Vec<Inbound>> = (0..p).map(|_| Vec::new()).collect();
        for ex in system.exchanges() {
            inbound[ex.a].push(Inbound {
                neighbor: ex.b,
                pairs: ex
                    .pairs
                    .iter()
                    .map(|&(la, lb)| (map(ex.a, la), map(ex.b, lb)))
                    .collect(),
            });
            inbound[ex.b].push(Inbound {
                neighbor: ex.a,
                pairs: ex
                    .pairs
                    .iter()
                    .map(|&(la, lb)| (map(ex.b, lb), map(ex.a, la)))
                    .collect(),
            });
        }
        let local_buf = || {
            pe.iter()
                .map(|s| vec![Vec3::ZERO; s.gather.len()])
                .collect::<Vec<_>>()
        };
        BspExecutor {
            pool: WorkerPool::new(threads),
            x_local: local_buf(),
            partials: local_buf(),
            exchanged: local_buf(),
            elapsed: vec![0.0; p],
            written: vec![false; system.global_nodes()],
            global_nodes: system.global_nodes(),
            pe,
            inbound,
            rcm: use_rcm,
            counters: vec![PeCounters::default(); p],
            phases: PhaseWalls::default(),
            steps: 0,
        }
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// True if this executor runs over RCM-renumbered subdomains.
    pub fn rcm_enabled(&self) -> bool {
        self.rcm
    }

    /// `(pointer, capacity)` of every persistent per-step buffer. Steady
    /// state means this is identical before and after a `step_into` — the
    /// step reallocated nothing.
    pub fn buffer_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp = Vec::new();
        for group in [&self.x_local, &self.partials, &self.exchanged] {
            for v in group {
                fp.push((v.as_ptr() as usize, v.capacity()));
            }
        }
        fp.push((self.elapsed.as_ptr() as usize, self.elapsed.capacity()));
        fp.push((self.written.as_ptr() as usize, self.written.capacity()));
        fp
    }

    /// Executes one bulk-synchronous SMVP `y = Kx` for a global input
    /// vector, updating the counters. Allocation-free: every buffer
    /// (including `y`) is caller- or executor-owned and reused.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` does not match the mesh node count.
    pub fn step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        assert_eq!(x.len(), self.global_nodes, "x length must match mesh nodes");
        assert_eq!(y.len(), self.global_nodes, "y length must match mesh nodes");
        let p = self.pe.len();
        let threads = self.pool.threads();

        // --- Assemble phase: gather replicated local x per PE. ---
        let wall = {
            let pe = &self.pe;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in pe_chunk(p, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.assemble += wall;
        for (c, &dt) in self.counters.iter_mut().zip(&self.elapsed) {
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }

        // --- Compute phase: local SMVP per PE, in place. ---
        let wall = {
            let pe = &self.pe;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in pe_chunk(p, threads, w) {
                    let t = Instant::now();
                    // SAFETY: per-q accesses are disjoint (one worker per
                    // PE); x_local was fully written before the assemble
                    // barrier.
                    let xl = unsafe { &*x_local.get().add(q) };
                    let part = unsafe { &mut *partials.get().add(q) };
                    pe[q]
                        .stiffness
                        .spmv(xl, part)
                        .expect("local dimensions consistent by construction");
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.compute += wall;
        for ((c, &dt), s) in self.counters.iter_mut().zip(&self.elapsed).zip(&self.pe) {
            c.t_compute += dt;
            c.t_barrier += (wall - dt).max(0.0);
            // 18 flops per traversed 3×3 block: the paper's F_i = 2·m_i
            // counted from the matrix this step just multiplied.
            c.flops += s.stiffness.smvp_flops();
        }

        // --- Exchange phase: each PE sums neighbor contributions into its
        // own copy, reading the immutable compute-phase snapshot. ---
        let wall = {
            let inbound = &self.inbound;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in pe_chunk(p, threads, w) {
                    let t = Instant::now();
                    // SAFETY: only exchanged[q] is written (one worker per
                    // PE); partials are read-only this phase, so the shared
                    // cross-PE reads don't race.
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    out.copy_from_slice(mine);
                    for msg in &inbound[q] {
                        let theirs =
                            unsafe { &*(partials.get().add(msg.neighbor) as *const Vec<Vec3>) };
                        for &(m, their) in &msg.pairs {
                            out[m] += theirs[their];
                        }
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.exchange += wall;
        for (q, (c, &dt)) in self.counters.iter_mut().zip(&self.elapsed).enumerate() {
            c.t_exchange += dt;
            c.t_barrier += (wall - dt).max(0.0);
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
        }

        // --- Fold phase: replicated results → global vector. ---
        let t0 = Instant::now();
        self.written.fill(false);
        for (s, part) in self.pe.iter().zip(&self.exchanged) {
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        self.phases.fold += t0.elapsed().as_secs_f64();

        self.steps += 1;
    }

    /// Executes one bulk-synchronous SMVP `y = Kx`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the mesh node count.
    pub fn step(&mut self, x: &[Vec3]) -> Vec<Vec3> {
        let mut y = vec![Vec3::ZERO; self.global_nodes];
        self.step_into(x, &mut y);
        y
    }

    /// Runs `steps` SMVPs of the same input (the paper's repeated time-loop
    /// product) and returns the final result. The output buffer is
    /// allocated once and reused by every step.
    pub fn run(&mut self, x: &[Vec3], steps: u64) -> Vec<Vec3> {
        let mut y = vec![Vec3::ZERO; self.global_nodes];
        for _ in 0..steps {
            self.step_into(x, &mut y);
        }
        y
    }

    /// The accumulated measurement report.
    pub fn report(&self) -> ExecutionReport {
        ExecutionReport {
            threads: self.pool.threads(),
            steps: self.steps,
            pe: self.counters.clone(),
            phases: self.phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_fem::assembly::UniformMaterial;
    use quake_mesh::ground::Material;
    use quake_mesh::mesh::TetMesh;
    use quake_partition::comm::CommAnalysis;
    use quake_partition::geometric::{Partitioner, RecursiveBisection};
    use quake_partition::partition::Partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(parts: usize) -> (TetMesh, Partition, DistributedSystem) {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, parts)
            .unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat)).unwrap();
        (app.mesh, partition, sys)
    }

    fn random_x(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn assert_matches_serial(serial: &[Vec3], pooled: &[Vec3], what: &str) {
        let scale: f64 = serial.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (i, (a, b)) in serial.iter().zip(pooled).enumerate() {
            assert!(
                (*a - *b).norm() <= 1e-12 * (1.0 + scale),
                "node {i} ({what}): serial {a} vs pooled {b}"
            );
        }
    }

    #[test]
    fn executor_matches_serial_distributed_smvp() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 11);
        let serial = sys.smvp(&x);
        for threads in [1, 4] {
            let mut exec = BspExecutor::new(&sys, threads);
            let pooled = exec.step(&x);
            assert_matches_serial(&serial, &pooled, &format!("{threads} threads"));
        }
    }

    #[test]
    fn rcm_executor_matches_serial_and_counters() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 13);
        let serial = sys.smvp(&x);
        let mut exec = BspExecutor::with_rcm(&sys, 3);
        assert!(exec.rcm_enabled());
        let pooled = exec.step(&x);
        assert_matches_serial(&serial, &pooled, "rcm");
        // Renumbering is PE-local, so the characterization match stays
        // exact.
        let report = exec.report();
        assert_eq!(report.f_max(), analysis.f_max(), "F mismatch under RCM");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max mismatch under RCM");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max mismatch under RCM");
    }

    #[test]
    fn steady_state_steps_do_not_reallocate() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 17);
        let mut exec = BspExecutor::new(&sys, 2);
        let mut y = vec![Vec3::ZERO; mesh.node_count()];
        // Warmup step, then the buffers must be pinned.
        exec.step_into(&x, &mut y);
        let fp = exec.buffer_fingerprint();
        let y_fp = (y.as_ptr() as usize, y.capacity());
        for _ in 0..100 {
            exec.step_into(&x, &mut y);
        }
        assert_eq!(
            exec.buffer_fingerprint(),
            fp,
            "executor buffers moved or regrew during steady-state steps"
        );
        assert_eq!(
            (y.as_ptr() as usize, y.capacity()),
            y_fp,
            "output buffer moved during steady-state steps"
        );
        assert_eq!(exec.report().steps, 101);
    }

    #[test]
    fn measured_counters_match_characterization_exactly() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 3);
        let mut exec = BspExecutor::new(&sys, 4);
        exec.run(&x, 3);
        let report = exec.report();
        assert_eq!(report.steps, 3);
        assert_eq!(report.f_max(), analysis.f_max(), "F mismatch");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max mismatch");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max mismatch");
        for (q, (c, predicted)) in report.pe.iter().zip(analysis.per_pe()).enumerate() {
            assert_eq!(c.flops / 3, predicted.flops, "PE {q} flops");
            assert_eq!(c.words() / 3, predicted.words, "PE {q} words");
            assert_eq!(c.blocks() / 3, predicted.blocks, "PE {q} blocks");
            assert_eq!(c.words_sent, c.words_received, "exchange is symmetric");
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let (mesh, _, sys) = setup(2);
        let x = random_x(mesh.node_count(), 5);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.run(&x, 2);
        let report = exec.report();
        assert!(report.phases.compute > 0.0);
        assert!(report.phases.exchange > 0.0);
        assert!(report.phases.total() > 0.0);
        assert!(report.efficiency() > 0.0 && report.efficiency() <= 1.0);
        for c in &report.pe {
            assert!(c.t_compute > 0.0);
            assert!(c.t_barrier >= 0.0);
        }
    }

    #[test]
    fn single_pe_has_no_communication() {
        let (mesh, _, _) = setup(2);
        let partition = RecursiveBisection::inertial().partition(&mesh, 1).unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&mesh, &partition, &UniformMaterial(mat)).unwrap();
        let x = random_x(mesh.node_count(), 7);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.step(&x);
        let report = exec.report();
        assert_eq!(report.c_max(), 0);
        assert_eq!(report.b_max(), 0);
        assert_eq!(report.efficiency(), report.efficiency().clamp(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let (_, _, sys) = setup(2);
        let mut exec = BspExecutor::new(&sys, 2);
        let _ = exec.step(&[Vec3::ZERO]);
    }
}
