//! Instrumented bulk-synchronous SMVP executor.
//!
//! [`DistributedSystem::smvp`](crate::distributed::DistributedSystem::smvp)
//! models the paper's distributed product but runs serially and reports
//! nothing. [`BspExecutor`] runs the same assemble→compute→exchange→fold
//! phases over a persistent [`WorkerPool`] — PEs striped across workers
//! per phase, with the pool's broadcast barrier standing in for the
//! machine's phase barriers — and *measures* what the characterization
//! layer only *predicts*: per-PE flops, words and blocks sent/received,
//! per-phase wall times, and per-PE barrier wait.
//!
//! Observed `F_i`/`C_i`/`B_i` are counted from the data structures the
//! kernel actually traverses, so for a correct build they match
//! [`CommAnalysis`](quake_partition::comm::CommAnalysis) *exactly* — that
//! exact match (checked in tests and by `quake smvp-run`) is the executor's
//! reason to exist: it closes the loop between the paper's Figure 7
//! characterization and a live parallel execution, and its phase times feed
//! the Eq. (1)/(2) validation in `quake_core::model::validate`.
//!
//! # Allocation-free steady state
//!
//! The paper's time loop repeats this product 6000 times, so the executor
//! owns every per-step buffer (`x_local`, partials, exchanged copies,
//! timing scratch) and each [`BspExecutor::step_into`] reuses them: after
//! the first step no phase allocates, dispatch goes through
//! [`WorkerPool::broadcast`] (one shared closure per phase, nothing boxed),
//! and the measured phase walls reflect memory-system behaviour instead of
//! allocator traffic. [`BspExecutor::buffer_fingerprint`] exposes buffer
//! pointers/capacities so tests can assert the steady state really is
//! allocation-free.
//!
//! # RCM locality pre-pass
//!
//! [`BspExecutor::with_rcm`] renumbers each PE's local nodes with reverse
//! Cuthill–McKee before executing: the local stiffness is permuted
//! (`P K Pᵀ`), the gather list and exchange pair indices are remapped to
//! match, and everything downstream runs over the bandwidth-reduced
//! matrices. The permutation relabels rows within each PE, so flop and
//! communication counters are invariant — the `CommAnalysis` match stays
//! exact — while the `x[col]` gather of the compute phase touches a
//! compact window of the local vector (the paper's "irregular memory
//! reference" mitigation, executed rather than simulated).
//!
//! # Latency-hiding overlap
//!
//! [`BspExecutor::with_options`] can replace the strict compute→exchange
//! barrier with a latency-hiding schedule. At build time each PE's local
//! rows are split: a row is **boundary** if it appears in an exchange pair
//! (a neighbor consumes its partial), **interior** otherwise; a stable
//! boundary-first permutation makes the boundary rows contiguous at the
//! front without disturbing any row's entry order. At step time compute
//! and exchange share ONE pool broadcast: every worker first computes and
//! *posts* its PEs' boundary rows (a Release-flagged publish — the only
//! data any neighbor waits on), then computes the interior rows while
//! other workers are still posting, then runs the exchange, blocking per
//! inbound message only until that sender's flag is up. The interior SMVP
//! is the work the schedule hides the exchange latency behind — the
//! paper's overlap opportunity, executed rather than simulated — and
//! [`OverlapAnalysis`](quake_partition::comm::OverlapAnalysis) prices
//! exactly this schedule (`T_step = max(T_interior, T_exchange) +
//! T_boundary`). Because rows are independent, the permutation is
//! entry-order-stable, and inbound pairs apply in the barrier order, the
//! overlapped product is **bitwise-equal** to the barrier product and
//! every flop/word/block counter is unchanged (both asserted by the
//! `overlap_equivalence` tests). With faults armed the executor falls
//! back to the barrier-phase chaos path — the staged, checksummed
//! exchange already serializes against compute — over the same
//! boundary-first matrices, so recovery invariants survive unchanged.
//!
//! # Fault injection & recovery
//!
//! [`BspExecutor::enable_faults`] arms a seeded
//! [`FaultPlan`](quake_core::fault::FaultPlan): per-step, per-PE straggler
//! delays and PE crashes fire in the compute phase; dropped and corrupted
//! exchange blocks fire in the exchange phase, where every inbound block is
//! routed through a staging buffer with a sender-side checksum. Recovery is
//! built in — dropped blocks are re-fetched after a bounded
//! exponential-backoff retry, checksum mismatches force a clean re-fetch,
//! and a crashed PE is healed per [`RecoveryPolicy`]: `FailFast` re-raises
//! (the pre-chaos behaviour), `Degrade` re-executes the dead shard on a
//! surviving thread, `Restart` replaces the worker thread, restores the
//! last in-memory checkpoint, and replays the lost steps. Because every
//! injected event is one-shot and every recovery path re-executes exactly
//! the deterministic work the fault interrupted, a recovered run is
//! **bitwise-equal** to a fault-free run (asserted by the chaos tests), and
//! under `Restart` the checkpoint rollback keeps even the accumulated
//! `F`/`C`/`B` counters exactly equal to the fault-free characterization.
//! With faults disabled the clean `step_into` path is untouched — zero
//! overhead, identical counters.

use crate::distributed::DistributedSystem;
use crate::transport::{ghost_edges, SharedTransport, Transport};
use quake_core::fault::{mix64, FaultKind, FaultPlan, FaultReport, RecoveryPolicy, RetryBackoff};
use quake_core::model::validate::MeasuredSmvp;
use quake_core::telemetry::{PhaseId, Span, Telemetry, TelemetryConfig, TraceInstant};
use quake_memsim::hierarchy::Hierarchy;
use quake_spark::kernels::bmv_range_into;
use quake_spark::pool::WorkerPool;
use quake_spark::tile_kernels::bmv_tiles_banded_into;
use quake_sparse::bcsr::Bcsr3;
use quake_sparse::dense::Vec3;
use quake_sparse::pattern::Pattern;
use quake_sparse::reorder::rcm;
use quake_sparse::tiles::{BandPlan, Bcsr3Tiles};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Observability counters for one PE, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeCounters {
    /// Flops executed by this PE's local SMVPs (18 per traversed 3×3 block,
    /// the paper's `F_i = 2·m_i`).
    pub flops: u64,
    /// Words this PE sent during exchange phases.
    pub words_sent: u64,
    /// Words this PE received during exchange phases.
    pub words_received: u64,
    /// Messages (blocks under maximal aggregation) this PE sent.
    pub blocks_sent: u64,
    /// Messages this PE received.
    pub blocks_received: u64,
    /// Seconds spent gathering local `x` (assemble phase).
    pub t_assemble: f64,
    /// Seconds spent in local SMVP (compute phase).
    pub t_compute: f64,
    /// Seconds spent summing neighbor contributions (exchange phase).
    pub t_exchange: f64,
    /// Seconds spent waiting at phase barriers (phase wall time minus this
    /// PE's own work, summed over phases and steps).
    pub t_barrier: f64,
}

impl PeCounters {
    /// Words sent + received (the paper's `C_i`).
    pub fn words(&self) -> u64 {
        self.words_sent + self.words_received
    }

    /// Blocks sent + received (the paper's `B_i`).
    pub fn blocks(&self) -> u64 {
        self.blocks_sent + self.blocks_received
    }
}

/// Wall-clock seconds per phase, accumulated over all executed steps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseWalls {
    /// Assemble (gather local `x`) phase.
    pub assemble: f64,
    /// Compute (local SMVP) phase.
    pub compute: f64,
    /// Exchange (pairwise sum) phase.
    pub exchange: f64,
    /// Fold (replicated results → global vector) phase.
    pub fold: f64,
}

impl PhaseWalls {
    /// Total wall-clock across phases.
    pub fn total(&self) -> f64 {
        self.assemble + self.compute + self.exchange + self.fold
    }
}

/// Structured measurement report of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Worker threads in the pool.
    pub threads: usize,
    /// SMVP steps executed.
    pub steps: u64,
    /// Per-PE counters (accumulated over all steps).
    pub pe: Vec<PeCounters>,
    /// Per-phase wall times (accumulated over all steps).
    pub phases: PhaseWalls,
    /// Chaos-layer ledger, present when fault injection was enabled.
    pub fault: Option<FaultReport>,
}

impl ExecutionReport {
    /// Observed max per-PE flops per SMVP (the paper's `F`).
    pub fn f_max(&self) -> u64 {
        self.per_step_max(|c| c.flops)
    }

    /// Observed max per-PE words per SMVP (`C_max`).
    pub fn c_max(&self) -> u64 {
        self.per_step_max(|c| c.words())
    }

    /// Observed max per-PE blocks per SMVP (`B_max`).
    pub fn b_max(&self) -> u64 {
        self.per_step_max(|c| c.blocks())
    }

    /// Observed per-PE `(C_i, B_i)` loads per SMVP, the β-bound input.
    pub fn comm_loads(&self) -> Vec<(u64, u64)> {
        let steps = self.steps.max(1);
        self.pe
            .iter()
            .map(|c| (c.words() / steps, c.blocks() / steps))
            .collect()
    }

    /// Compute-phase wall seconds per SMVP step.
    pub fn t_compute_per_step(&self) -> f64 {
        self.phases.compute / self.steps.max(1) as f64
    }

    /// Exchange-phase wall seconds per SMVP step.
    pub fn t_exchange_per_step(&self) -> f64 {
        self.phases.exchange / self.steps.max(1) as f64
    }

    /// Measured parallel efficiency proxy: compute wall over compute +
    /// exchange wall (the paper's `E` with communication as the only
    /// overhead).
    pub fn efficiency(&self) -> f64 {
        let c = self.phases.compute;
        let x = self.phases.exchange;
        if c + x == 0.0 {
            return 1.0;
        }
        c / (c + x)
    }

    /// Per-PE exchange seconds per step (for fitting effective `t_l`/`t_w`).
    pub fn exchange_times_per_step(&self) -> Vec<f64> {
        let steps = self.steps.max(1) as f64;
        self.pe.iter().map(|c| c.t_exchange / steps).collect()
    }

    /// The per-SMVP measurements in the shape
    /// [`quake_core::model::validate`] consumes.
    pub fn measured(&self) -> MeasuredSmvp {
        let steps = self.steps.max(1);
        MeasuredSmvp {
            per_pe_flops: self.pe.iter().map(|c| c.flops / steps).collect(),
            per_pe_loads: self.comm_loads(),
            per_pe_exchange: self.exchange_times_per_step(),
            t_compute: self
                .pe
                .iter()
                .map(|c| c.t_compute / steps as f64)
                .fold(0.0, f64::max),
        }
    }

    fn per_step_max(&self, f: impl Fn(&PeCounters) -> u64) -> u64 {
        let steps = self.steps.max(1);
        self.pe.iter().map(|c| f(c) / steps).max().unwrap_or(0)
    }
}

/// Per-PE slice of the exchange schedule: what PE `q` receives, from whom.
struct Inbound {
    neighbor: usize,
    /// `(local index on q, local index on neighbor)` per shared node.
    pairs: Vec<(usize, usize)>,
}

/// Per-PE slice of the outbound schedule: what PE `q` posts, to whom.
/// `send_idx` lists q's local slots in the *receiver's* pair order, so a
/// packed block applies on the far side index-for-index — that shared
/// order is what keeps every transport bitwise-equal to the in-memory
/// exchange.
struct Outbound {
    to: usize,
    send_idx: Vec<usize>,
}

/// Which local SMVP microkernel the compute phases run. Both kernels
/// traverse the same matrix in the same row order with the same per-lane
/// operation order, so the choice never changes a single output bit or
/// counter — only raw speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// The register-blocked scalar 3×3 microkernel (`bmv_range_into`).
    #[default]
    Micro,
    /// The SIMD tile kernel over the flat BCSR layout ([`Bcsr3Tiles`]),
    /// cache-blocked by a memsim-sized [`BandPlan`], with runtime AVX
    /// dispatch and a bitwise-identical scalar fallback.
    MicroSimd,
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "micro" => Ok(KernelKind::Micro),
            "micro-simd" => Ok(KernelKind::MicroSimd),
            other => Err(format!(
                "unknown kernel '{other}' (expected micro or micro-simd)"
            )),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelKind::Micro => "micro",
            KernelKind::MicroSimd => "micro-simd",
        })
    }
}

/// The x-window budget for [`BandPlan`] sizing: half the modeled modern
/// core's L2, leaving the other half to the streamed tiles and indices.
/// Derived from the memsim hierarchy so the model that *predicts* the
/// blocking win is the one that sizes it.
fn band_window_bytes() -> usize {
    (Hierarchy::modern_core_like().l2().capacity_bytes() / 2) as usize
}

/// One PE's executable state: the gather list and stiffness it actually
/// traverses (identical to the subdomain's, or RCM-renumbered).
struct PeState {
    /// `gather[l]`: global node id held in local slot `l`.
    gather: Vec<usize>,
    stiffness: Bcsr3,
    /// The stiffness's flat tile twin plus its band plan, present exactly
    /// when [`KernelKind::MicroSimd`] is selected.
    tiled: Option<(Bcsr3Tiles, BandPlan)>,
}

impl PeState {
    /// Local SMVP over the block-row range `rows` through the selected
    /// microkernel; `out[i - rows.start]` receives row `i`. Bitwise-equal
    /// across kernels.
    fn mult_range(&self, xl: &[Vec3], rows: Range<usize>, out: &mut [Vec3]) {
        match &self.tiled {
            Some((tiles, plan)) => bmv_tiles_banded_into(tiles, plan, xl, rows, out),
            None => bmv_range_into(&self.stiffness, xl, rows, out),
        }
    }

    /// Full local SMVP (every block row), overwriting `out`.
    fn mult_full(&self, xl: &[Vec3], out: &mut [Vec3]) {
        match &self.tiled {
            Some((tiles, plan)) => {
                bmv_tiles_banded_into(tiles, plan, xl, 0..tiles.block_rows(), out)
            }
            None => self
                .stiffness
                .spmv(xl, out)
                .expect("local dimensions consistent by construction"),
        }
    }
}

/// A raw pointer that may cross thread boundaries; each phase closure
/// dereferences it only for the PEs its worker owns (disjoint indices), and
/// the broadcast barrier orders every access.
struct SendPtr<T>(*mut T);

// Manual impls: the derived ones would demand `T: Copy`, but copying the
// *pointer* never copies the pointee.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: see the type's doc comment — all dereferences are to disjoint
// per-PE elements between barriers.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

/// The `w`-th of `workers` near-equal contiguous chunks of `0..p` — the
/// static PE-to-worker assignment, computed arithmetically so phase
/// closures never allocate.
fn pe_chunk(p: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    (p * w / workers)..(p * (w + 1) / workers)
}

/// [`pe_chunk`] over an executor's owned PE range: the `w`-th chunk of
/// `owned`, in global PE ids. With full ownership (`0..p`, the in-process
/// backends) this is exactly `pe_chunk`.
fn owned_chunk(owned: &Range<usize>, workers: usize, w: usize) -> Range<usize> {
    let r = pe_chunk(owned.len(), workers, w);
    (owned.start + r.start)..(owned.start + r.end)
}

/// In-memory snapshot of the executor's accumulated measurement state,
/// taken every K steps while chaos is armed. Restoring it and replaying the
/// lost steps is [`RecoveryPolicy::Restart`]'s crash path; because each
/// SMVP step is a pure function of `x`, replay heals the data buffers for
/// free and the snapshot only needs the accumulators.
#[derive(Debug, Clone)]
struct Checkpoint {
    step: u64,
    counters: Vec<PeCounters>,
    phases: PhaseWalls,
}

/// Per-PE chaos scratch, written by phase closures through disjoint
/// [`SendPtr`] slots and folded into the [`FaultReport`] on the caller
/// thread after each phase barrier (consumed by `std::mem::take`).
#[derive(Debug, Clone, Copy, Default)]
struct PeFaultScratch {
    straggles: u64,
    straggle_delay_s: f64,
    crashes: u64,
    drops: u64,
    drops_detected: u64,
    retries: u64,
    corrupts: u64,
    corrupts_detected: u64,
    refetches: u64,
    /// Backoff slept before retrying dropped fetches, ns (telemetry).
    backoff_ns: u64,
    /// Time staging inbound blocks through the NI buffer, ns (telemetry).
    stage_ns: u64,
    /// Time verifying receiver-side checksums, ns (telemetry).
    verify_ns: u64,
}

/// Everything the chaos layer owns while armed.
struct FaultState {
    plan: FaultPlan,
    /// One consumed-flag per plan event. Events are one-shot: a shard
    /// re-executed during recovery skips everything that already fired,
    /// which is what makes every recovery loop converge.
    fired: Vec<AtomicBool>,
    policy: RecoveryPolicy,
    checkpoint_every: u64,
    report: FaultReport,
    checkpoint: Checkpoint,
    scratch: Vec<PeFaultScratch>,
    /// Crash events caught in the current failed attempt; credited as
    /// recovered once the restart has restored state.
    pending_crashes: u64,
}

/// Fetch attempts per exchange block before the executor gives up. Injected
/// drops are transient by construction (events are one-shot), so attempt 2
/// always succeeds; the bound guards the retry loop against logic bugs.
const MAX_FETCH_ATTEMPTS: u32 = 5;

/// Everything the telemetry layer owns while armed: the core recorder plus
/// the executor-side timing scratch its phase closures write through.
struct TelemetryState {
    /// The shared clock zero every span offset is measured from.
    epoch: Instant,
    data: Telemetry,
    /// Per-PE phase-start offsets (ns since epoch), written in the phase
    /// closures through disjoint [`SendPtr`] slots.
    start_ns: Vec<u64>,
    /// Per-PE, per-inbound-message fetch latency scratch (ns), sized to the
    /// exchange schedule at arm time so recording never allocates.
    msg_ns: Vec<Vec<u64>>,
}

/// Everything the latency-hiding schedule owns while enabled: the
/// boundary-first row split plus the publish flags and timing scratch its
/// merged compute+exchange broadcast uses (see the module docs).
struct OverlapState {
    /// `boundary_rows[q]`: PE q's rows `0..nb` are boundary rows (consumed
    /// by a neighbor's exchange), `nb..n` are interior.
    boundary_rows: Vec<usize>,
    /// Raw base pointer of `partials[q]`, refreshed by the driver each
    /// step. Workers carve disjoint sub-slices out of it (boundary rows in
    /// pass A, interior rows in pass B) and read neighbor boundary
    /// elements through it in pass C — never through a reference that
    /// covers rows another thread is writing.
    part_base: Vec<SendPtr<Vec3>>,
    /// Per-PE boundary-SMVP seconds (pass A).
    post_elapsed: Vec<f64>,
    /// Per-PE exchange seconds (pass C, spin waits included).
    exch_elapsed: Vec<f64>,
    /// Per-PE seconds of pass C spent spinning on neighbor flags.
    wait_elapsed: Vec<f64>,
    /// Per-PE pass-A start offsets (ns since telemetry epoch).
    post_start: Vec<u64>,
    /// Per-PE pass-C start offsets (ns since telemetry epoch).
    exch_start: Vec<u64>,
    /// Drift-monitor input scratch (exchange minus spin wait).
    drift_scratch: Vec<f64>,
}

/// Node-placement view of a two-level (node-aware) run, used by the traced
/// step paths for attribution only. The exchange schedule never consults
/// it: aggregation happens entirely inside the transport, so arming a node
/// map changes no output, no counter, and no acquire order.
struct NodeView {
    /// PE → node placement (matches the transport's `NodeMap`).
    node_of: Vec<usize>,
    /// Words of each merged cross-node (node, node) block whose sending
    /// node's leader PE this executor owns — the blocks this shard's relay
    /// actually puts on the slow link, recorded once per traced step.
    pair_words: Vec<u64>,
}

/// Seconds to integer nanoseconds for span durations.
fn secs_to_ns(s: f64) -> u64 {
    (s * 1e9) as u64
}

/// Nanoseconds of `t` since `epoch`.
fn ns_since(epoch: Instant, t: Instant) -> u64 {
    t.duration_since(epoch).as_nanos() as u64
}

impl TelemetryState {
    /// Records one work span plus the trailing barrier-wait span for every
    /// *owned* PE of a finished phase, and feeds the phase wall counters.
    /// `elapsed` is per-PE work seconds (indexed by global PE id), `wall`
    /// the phase wall; per-PE starts were staged into `start_ns` (by the
    /// traced closures, or uniformly by the chaos caller).
    fn record_phase(
        &mut self,
        phase: PhaseId,
        step: u64,
        elapsed: &[f64],
        wall: f64,
        owned: Range<usize>,
    ) {
        self.data.add_phase_wall(phase, secs_to_ns(wall));
        for q in owned {
            let dt = elapsed[q];
            let dur_ns = secs_to_ns(dt);
            let start = self.start_ns[q];
            self.data.span(Span {
                phase,
                pe: q as u32,
                step,
                start_ns: start,
                dur_ns,
            });
            let wait = (wall - dt).max(0.0);
            if wait > 0.0 {
                let wait_ns = secs_to_ns(wait);
                self.data.add_phase_wall(PhaseId::Barrier, wait_ns);
                self.data.span(Span {
                    phase: PhaseId::Barrier,
                    pe: q as u32,
                    step,
                    start_ns: start + dur_ns,
                    dur_ns: wait_ns,
                });
            }
        }
    }
}

/// Bulk-synchronous instrumented executor over a [`DistributedSystem`].
pub struct BspExecutor {
    pool: WorkerPool,
    pe: Vec<PeState>,
    /// `inbound[q]`: messages PE q receives each exchange phase.
    inbound: Vec<Vec<Inbound>>,
    /// `outbound[q]`: blocks PE q posts each exchange phase.
    outbound: Vec<Vec<Outbound>>,
    /// The PEs this executor instance actually runs: all of them for the
    /// in-process transports, one shard's contiguous slice under `proc`.
    owned: Range<usize>,
    /// The ghost-block transport every exchange phase goes through.
    link: Arc<dyn Transport>,
    global_nodes: usize,
    rcm: bool,
    /// The microkernel the compute phases dispatch to.
    kernel: KernelKind,
    /// Armed chaos layer, or `None` for the untouched clean path.
    fault: Option<Box<FaultState>>,
    /// Armed telemetry layer, or `None` for the untouched clean path.
    telemetry: Option<Box<TelemetryState>>,
    /// Latency-hiding schedule state, or `None` for the barrier schedule.
    overlap: Option<Box<OverlapState>>,
    /// Node placement of a two-level run, or `None` when flat. Telemetry
    /// attribution only (see [`NodeView`]).
    node_view: Option<NodeView>,
    // Persistent per-step buffers: sized once in `build`, reused by every
    // `step_into` so the steady-state step never touches the allocator.
    x_local: Vec<Vec<Vec3>>,
    partials: Vec<Vec<Vec3>>,
    exchanged: Vec<Vec<Vec3>>,
    /// Per-PE send packing buffer, sized to the largest outbound edge.
    pack: Vec<Vec<Vec3>>,
    /// Per-PE receive staging buffer (the modeled NI buffer), sized to the
    /// largest inbound edge.
    stage: Vec<Vec<Vec3>>,
    elapsed: Vec<f64>,
    /// Per-PE seconds of the exchange spent blocked in `Transport::acquire`
    /// waits — subtracted from the drift-monitor feed so transport spin
    /// waits never read as per-PE load skew.
    wait_scratch: Vec<f64>,
    written: Vec<bool>,
    counters: Vec<PeCounters>,
    phases: PhaseWalls,
    steps: u64,
}

impl BspExecutor {
    /// Creates an executor running `system`'s PEs on `threads` pooled
    /// workers, in the subdomains' natural node order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(system: &DistributedSystem, threads: usize) -> Self {
        Self::build(system, threads, false, false)
    }

    /// Like [`BspExecutor::new`], but renumbers each PE's local nodes with
    /// reverse Cuthill–McKee first (see the module docs). Numerics and
    /// counters are unchanged; only the traversal order (and hence cache
    /// behaviour) differs.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_rcm(system: &DistributedSystem, threads: usize) -> Self {
        Self::build(system, threads, true, false)
    }

    /// Creates an executor with both locality options explicit: `use_rcm`
    /// for the reverse Cuthill–McKee pre-pass and `use_overlap` for the
    /// latency-hiding interior/boundary schedule (see the module docs).
    /// The options compose; either way output is bitwise-equal to
    /// [`BspExecutor::new`] with the same `use_rcm`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_options(
        system: &DistributedSystem,
        threads: usize,
        use_rcm: bool,
        use_overlap: bool,
    ) -> Self {
        Self::build(system, threads, use_rcm, use_overlap)
    }

    fn build(system: &DistributedSystem, threads: usize, use_rcm: bool, use_overlap: bool) -> Self {
        let p = system.subdomains().len();
        let link: Arc<dyn Transport> = Arc::new(SharedTransport::new(&ghost_edges(system)));
        Self::with_transport(system, threads, use_rcm, use_overlap, 0..p, link)
    }

    /// Creates an executor that runs only the PEs in `owned` and routes
    /// every ghost-block exchange through `link`. This is the fully general
    /// constructor the transport backends use: the in-process constructors
    /// above are `owned = 0..p` over a [`SharedTransport`], the `proc`
    /// backend builds one executor per shard process with that shard's PE
    /// slice and a socket-backed link. Non-owned PEs are never computed,
    /// exchanged, or folded — their ghost blocks arrive through the link.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `owned` is out of `0..p` bounds.
    pub fn with_transport(
        system: &DistributedSystem,
        threads: usize,
        use_rcm: bool,
        use_overlap: bool,
        owned: Range<usize>,
        link: Arc<dyn Transport>,
    ) -> Self {
        let subdomains = system.subdomains();
        let p = subdomains.len();
        assert!(
            owned.start <= owned.end && owned.end <= p,
            "owned PE range {owned:?} out of bounds for {p} PEs"
        );
        // Boundary flags in the subdomains' natural numbering: a local node
        // is boundary iff it appears in some exchange pair (a neighbor PE
        // holds a replica and will consume its partial), interior otherwise.
        let mut boundary_old: Vec<Vec<bool>> = subdomains
            .iter()
            .map(|sd| vec![false; sd.node_count()])
            .collect();
        if use_overlap {
            for ex in system.exchanges() {
                for &(la, lb) in &ex.pairs {
                    boundary_old[ex.a][la] = true;
                    boundary_old[ex.b][lb] = true;
                }
            }
        }
        // Per-PE: composed local permutation (`perm[old] = new`, or None
        // for the natural order), executable state, boundary row count.
        let mut perms: Vec<Option<Vec<usize>>> = Vec::with_capacity(p);
        let mut pe: Vec<PeState> = Vec::with_capacity(p);
        let mut boundary_rows: Vec<usize> = Vec::with_capacity(p);
        for (q, sd) in subdomains.iter().enumerate() {
            let n = sd.node_count();
            // Stage 1: RCM bandwidth reduction — the column-sorted
            // permutation `with_rcm` always applied.
            let p1: Option<Vec<usize>> = if use_rcm {
                let (row_ptr, col_idx) = sd.stiffness.adjacency();
                let mut edges = Vec::new();
                for i in 0..n {
                    for k in row_ptr[i]..row_ptr[i + 1] {
                        let j = col_idx[k];
                        if j > i {
                            edges.push((i, j));
                        }
                    }
                }
                let pattern =
                    Pattern::from_edges(n, &edges).expect("block adjacency indices are in range");
                Some(rcm(&pattern))
            } else {
                None
            };
            // Stage 2: boundary-first reorder, stable within each class so
            // every row keeps its stage-1 entry order — and with it its
            // floating-point summation order. That stability is what keeps
            // the overlapped schedule bitwise-equal to the barrier one.
            let (p2, nb): (Option<Vec<usize>>, usize) = if use_overlap {
                let mut b1 = vec![false; n];
                for (old, &flag) in boundary_old[q].iter().enumerate() {
                    if flag {
                        b1[p1.as_ref().map_or(old, |pm| pm[old])] = true;
                    }
                }
                let nb = b1.iter().filter(|&&b| b).count();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (!b1[i], i));
                let mut p2 = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    p2[i] = rank;
                }
                (Some(p2), nb)
            } else {
                (None, 0)
            };
            let composed: Option<Vec<usize>> = match (&p1, &p2) {
                (None, None) => None,
                (Some(a), None) => Some(a.clone()),
                (None, Some(b)) => Some(b.clone()),
                (Some(a), Some(b)) => Some(a.iter().map(|&s1| b[s1]).collect()),
            };
            let stiffness = {
                let s1 = match &p1 {
                    None => sd.stiffness.clone(),
                    Some(a) => sd
                        .stiffness
                        .permute_symmetric(a)
                        .expect("RCM yields a valid permutation"),
                };
                match &p2 {
                    None => s1,
                    Some(b) => s1
                        .permute_symmetric_stable(b)
                        .expect("boundary-first reorder is a valid permutation"),
                }
            };
            let gather = match &composed {
                None => sd.global_nodes.clone(),
                Some(f) => {
                    let mut gather = vec![0usize; n];
                    for (old, &g) in sd.global_nodes.iter().enumerate() {
                        gather[f[old]] = g;
                    }
                    gather
                }
            };
            perms.push(composed);
            pe.push(PeState {
                gather,
                stiffness,
                tiled: None,
            });
            boundary_rows.push(nb);
        }
        // Exchange pair indices are local slots, so they follow the
        // renumbering.
        let map = |q: usize, l: usize| perms[q].as_ref().map_or(l, |pm| pm[l]);
        let mut inbound: Vec<Vec<Inbound>> = (0..p).map(|_| Vec::new()).collect();
        for ex in system.exchanges() {
            inbound[ex.a].push(Inbound {
                neighbor: ex.b,
                pairs: ex
                    .pairs
                    .iter()
                    .map(|&(la, lb)| (map(ex.a, la), map(ex.b, lb)))
                    .collect(),
            });
            inbound[ex.b].push(Inbound {
                neighbor: ex.a,
                pairs: ex
                    .pairs
                    .iter()
                    .map(|&(la, lb)| (map(ex.b, lb), map(ex.a, la)))
                    .collect(),
            });
        }
        let mut outbound: Vec<Vec<Outbound>> = (0..p).map(|_| Vec::new()).collect();
        for ex in system.exchanges() {
            // Mirror of `inbound`: the entry feeding inbound[a]'s pairs is
            // outbound[b], packed in the exact same ex.pairs order.
            outbound[ex.b].push(Outbound {
                to: ex.a,
                send_idx: ex.pairs.iter().map(|&(_, lb)| map(ex.b, lb)).collect(),
            });
            outbound[ex.a].push(Outbound {
                to: ex.b,
                send_idx: ex.pairs.iter().map(|&(la, _)| map(ex.a, la)).collect(),
            });
        }
        if use_overlap {
            // The overlap schedule posts right after the boundary pass, so
            // every sent slot must be a boundary row.
            for (q, obs) in outbound.iter().enumerate() {
                for ob in obs {
                    debug_assert!(
                        ob.send_idx.iter().all(|&l| l < boundary_rows[q]),
                        "PE {q} would post interior rows before computing them"
                    );
                }
            }
        }
        let pack: Vec<Vec<Vec3>> = outbound
            .iter()
            .map(|obs| {
                let max = obs.iter().map(|o| o.send_idx.len()).max().unwrap_or(0);
                vec![Vec3::ZERO; max]
            })
            .collect();
        let stage: Vec<Vec<Vec3>> = inbound
            .iter()
            .map(|msgs| {
                let max = msgs.iter().map(|m| m.pairs.len()).max().unwrap_or(0);
                vec![Vec3::ZERO; max]
            })
            .collect();
        let local_buf = || {
            pe.iter()
                .map(|s| vec![Vec3::ZERO; s.gather.len()])
                .collect::<Vec<_>>()
        };
        let overlap = if use_overlap {
            Some(Box::new(OverlapState {
                boundary_rows,
                part_base: vec![SendPtr(std::ptr::null_mut()); p],
                post_elapsed: vec![0.0; p],
                exch_elapsed: vec![0.0; p],
                wait_elapsed: vec![0.0; p],
                post_start: vec![0; p],
                exch_start: vec![0; p],
                drift_scratch: vec![0.0; p],
            }))
        } else {
            None
        };
        BspExecutor {
            pool: WorkerPool::new(threads),
            x_local: local_buf(),
            partials: local_buf(),
            exchanged: local_buf(),
            pack,
            stage,
            elapsed: vec![0.0; p],
            wait_scratch: vec![0.0; p],
            written: vec![false; system.global_nodes()],
            global_nodes: system.global_nodes(),
            pe,
            inbound,
            outbound,
            owned,
            link,
            rcm: use_rcm,
            kernel: KernelKind::Micro,
            fault: None,
            telemetry: None,
            overlap,
            node_view: None,
            counters: vec![PeCounters::default(); p],
            phases: PhaseWalls::default(),
            steps: 0,
        }
    }

    /// Arms the chaos layer: from the next step on, `plan`'s events fire at
    /// their scheduled (step, PE) slots and the executor recovers per
    /// `policy`, snapshotting its accumulators every `checkpoint_every`
    /// steps. With an empty plan the chaos path still runs (useful for
    /// invariance tests) but injects nothing.
    ///
    /// # Panics
    ///
    /// Panics if `checkpoint_every == 0`.
    pub fn enable_faults(
        &mut self,
        plan: FaultPlan,
        policy: RecoveryPolicy,
        checkpoint_every: u64,
    ) {
        assert!(
            checkpoint_every > 0,
            "checkpoint interval must be at least 1 step"
        );
        let p = self.pe.len();
        self.fault = Some(Box::new(FaultState {
            fired: (0..plan.len()).map(|_| AtomicBool::new(false)).collect(),
            plan,
            policy,
            checkpoint_every,
            report: FaultReport::default(),
            // Seed the checkpoint with the armed-at state so a crash before
            // the first periodic snapshot restores to something valid.
            checkpoint: Checkpoint {
                step: self.steps,
                counters: self.counters.clone(),
                phases: self.phases,
            },
            scratch: vec![PeFaultScratch::default(); p],
            pending_crashes: 0,
        }));
    }

    /// The chaos ledger so far, or `None` if faults were never armed.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.fault.as_ref().map(|f| f.report)
    }

    /// Arms the telemetry layer: from the next step on, every phase records
    /// per-PE spans, the exchange feeds the block latency/size histograms,
    /// and (if configured) the drift monitor checks each step against the
    /// Eq. (2) model. With telemetry off the clean `step_into` path is
    /// untouched — zero overhead, bitwise-identical output (and the traced
    /// path performs the exact same arithmetic in the exact same order, so
    /// tracing never changes results either).
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.enable_telemetry_at(config, Instant::now());
    }

    /// [`Self::enable_telemetry`] with an explicit epoch. A shard child
    /// passes its transport fabric's origin instant so every span timestamp
    /// is already expressed on the clock the parent's handshake-time offset
    /// measurement refers to — the merged timeline needs no post-hoc shift.
    pub fn enable_telemetry_at(&mut self, config: TelemetryConfig, epoch: Instant) {
        let p = self.pe.len();
        // Per-*owned*-PE (C_i, B_i) per step, counting both directions like
        // `PeCounters::words()`/`blocks()` — the drift monitor must use the
        // same convention as the validation layer, and under a partial
        // ownership it only ever observes the owned slice.
        let loads: Vec<(u64, u64)> = self.inbound[self.owned.clone()]
            .iter()
            .map(|msgs| {
                let words: u64 = msgs.iter().map(|m| 3 * m.pairs.len() as u64).sum();
                (2 * words, 2 * msgs.len() as u64)
            })
            .collect();
        let msg_ns = self
            .inbound
            .iter()
            .map(|msgs| vec![0u64; msgs.len()])
            .collect();
        self.telemetry = Some(Box::new(TelemetryState {
            epoch,
            data: Telemetry::new(self.owned.len(), loads, config),
            start_ns: vec![0; p],
            msg_ns,
        }));
    }

    /// The telemetry recorded so far, or `None` if telemetry was never
    /// armed.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref().map(|t| &t.data)
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The worker pool's lifetime dispatch counters (batches, targeted
    /// recovery re-runs, thread respawns).
    pub fn pool_stats(&self) -> quake_spark::PoolStats {
        self.pool.stats()
    }

    /// True if this executor runs over RCM-renumbered subdomains.
    pub fn rcm_enabled(&self) -> bool {
        self.rcm
    }

    /// True if this executor runs the latency-hiding overlap schedule.
    pub fn overlap_enabled(&self) -> bool {
        self.overlap.is_some()
    }

    /// Selects the compute-phase microkernel. `MicroSimd` builds each
    /// owned PE's flat tile twin and memsim-sized band plan (a one-time
    /// cost, like the RCM pre-pass); `Micro` drops them. Output, counters
    /// and every schedule/transport interaction are bitwise-unchanged —
    /// the kernels share one traversal and operation order.
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        if kernel == self.kernel {
            return;
        }
        self.kernel = kernel;
        let window = band_window_bytes();
        for q in self.owned.clone() {
            let s = &mut self.pe[q];
            s.tiled = match kernel {
                KernelKind::Micro => None,
                KernelKind::MicroSimd => {
                    let tiles = Bcsr3Tiles::from_bcsr(&s.stiffness);
                    let plan = BandPlan::for_tiles(&tiles, window);
                    Some((tiles, plan))
                }
            };
        }
    }

    /// The microkernel the compute phases currently dispatch to.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Hands the executor the PE → node placement of a node-aware run
    /// (`node_of[q]` = the node PE q lives on, matching the transport's
    /// `NodeMap`). Telemetry attribution only: traced steps emit an
    /// intra-node `gather` span inside each exchange and feed the merged
    /// per-(node, node) block-size histogram. The exchange itself never
    /// consults the map — aggregation lives in the transport — so output,
    /// counters, and acquire order are bitwise-unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `node_of` does not cover every PE.
    pub fn set_node_map(&mut self, node_of: &[usize]) {
        let p = self.pe.len();
        assert_eq!(node_of.len(), p, "node map must cover every PE");
        let nodes = node_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut merged = vec![0u64; nodes * nodes];
        for (q, msgs) in self.inbound.iter().enumerate() {
            for msg in msgs {
                let (src, dst) = (node_of[msg.neighbor], node_of[q]);
                if src != dst {
                    merged[src * nodes + dst] += 3 * msg.pairs.len() as u64;
                }
            }
        }
        // A node's leader is its lowest PE; keeping only leader-owned
        // source nodes counts each merged block exactly once across `proc`
        // shards — the same shard whose relay puts it on the slow link.
        let mut leader = vec![usize::MAX; nodes];
        for (q, &n) in node_of.iter().enumerate().rev() {
            leader[n] = q;
        }
        let mut pair_words = Vec::new();
        for src in 0..nodes {
            if !self.owned.contains(&leader[src]) {
                continue;
            }
            for dst in 0..nodes {
                let w = merged[src * nodes + dst];
                if w > 0 {
                    pair_words.push(w);
                }
            }
        }
        self.node_view = Some(NodeView {
            node_of: node_of.to_vec(),
            pair_words,
        });
    }

    /// The armed PE → node placement, or `None` on flat runs.
    pub fn node_map(&self) -> Option<&[usize]> {
        self.node_view.as_ref().map(|nv| nv.node_of.as_slice())
    }

    /// Node-aware telemetry hooks for one traced exchange: per owned PE, a
    /// `gather` span (the share of its fetch time spent on same-node
    /// neighbors — the intra-node leg of the two-level exchange) nested at
    /// the head of the exchange span, plus one histogram sample per merged
    /// (node, node) block this shard leads. No-op on flat runs. `starts`
    /// overrides the per-PE exchange span starts (the overlap schedule
    /// stages them outside `telem.start_ns`); `durs` is per-PE exchange
    /// seconds, used to clamp the nested span.
    fn record_node_exchange(
        &self,
        telem: &mut TelemetryState,
        step: u64,
        starts: Option<&[u64]>,
        durs: &[f64],
    ) {
        let Some(nv) = &self.node_view else {
            return;
        };
        for q in self.owned.clone() {
            let intra_ns: u64 = self.inbound[q]
                .iter()
                .enumerate()
                .filter(|(_, m)| nv.node_of[m.neighbor] == nv.node_of[q])
                .map(|(mi, _)| telem.msg_ns[q][mi])
                .sum();
            let gather_ns = intra_ns.min(secs_to_ns(durs[q]));
            if gather_ns > 0 {
                telem.data.add_phase_wall(PhaseId::Gather, gather_ns);
                telem.data.span(Span {
                    phase: PhaseId::Gather,
                    pe: q as u32,
                    step,
                    start_ns: starts.map_or(telem.start_ns[q], |s| s[q]),
                    dur_ns: gather_ns,
                });
            }
        }
        for &w in &nv.pair_words {
            telem.data.node_block_words.record(w);
        }
    }

    /// Per-PE boundary row counts of the overlap split, or `None` when the
    /// executor runs the barrier schedule. Matches
    /// [`OverlapAnalysis`](quake_partition::comm::OverlapAnalysis) exactly
    /// (checked in tests): the split the executor runs is the split the
    /// model prices.
    pub fn overlap_boundary_rows(&self) -> Option<&[usize]> {
        self.overlap.as_deref().map(|o| o.boundary_rows.as_slice())
    }

    /// `(pointer, capacity)` of every persistent per-step buffer. Steady
    /// state means this is identical before and after a `step_into` — the
    /// step reallocated nothing.
    pub fn buffer_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp = Vec::new();
        for group in [
            &self.x_local,
            &self.partials,
            &self.exchanged,
            &self.pack,
            &self.stage,
        ] {
            for v in group {
                fp.push((v.as_ptr() as usize, v.capacity()));
            }
        }
        fp.push((self.elapsed.as_ptr() as usize, self.elapsed.capacity()));
        fp.push((self.written.as_ptr() as usize, self.written.capacity()));
        fp
    }

    /// The PE range this executor runs (see [`BspExecutor::with_transport`]).
    pub fn owned_range(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// PE `q`'s gather list (local slot → global node), post-renumbering.
    /// The `proc` shard host sends these alongside the exchanged vectors so
    /// the parent can fold without rebuilding the permutations.
    pub(crate) fn gather_of(&self, q: usize) -> &[usize] {
        &self.pe[q].gather
    }

    /// PE `q`'s post-exchange partial vector after the last executed step.
    pub(crate) fn exchanged_of(&self, q: usize) -> &[Vec3] {
        &self.exchanged[q]
    }

    /// Executes one bulk-synchronous SMVP `y = Kx` for a global input
    /// vector, updating the counters. Allocation-free: every buffer
    /// (including `y`) is caller- or executor-owned and reused.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` does not match the mesh node count.
    pub fn step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        assert_eq!(x.len(), self.global_nodes, "x length must match mesh nodes");
        assert_eq!(y.len(), self.global_nodes, "y length must match mesh nodes");
        if self.fault.is_some() {
            // Chaos keeps the barrier phases (the staged, checksummed
            // exchange already serializes against compute); the
            // boundary-first row order is baked into the matrices, so the
            // output and counters still match the overlap-off run exactly.
            return self.chaos_step_into(x, y);
        }
        if self.overlap.is_some() {
            if self.telemetry.is_some() {
                return self.overlap_traced_step_into(x, y);
            }
            return self.overlap_step_into(x, y);
        }
        if self.telemetry.is_some() {
            return self.traced_step_into(x, y);
        }
        let threads = self.pool.threads();
        let owned = self.owned.clone();
        let step = self.steps;

        // --- Assemble phase: gather replicated local x per PE. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.assemble += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }

        // --- Compute phase: local SMVP per PE, in place. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: per-q accesses are disjoint (one worker per
                    // PE); x_local was fully written before the assemble
                    // barrier.
                    let xl = unsafe { &*x_local.get().add(q) };
                    let part = unsafe { &mut *partials.get().add(q) };
                    pe[q].mult_full(xl, part);
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.compute += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_compute += dt;
            c.t_barrier += (wall - dt).max(0.0);
            // 18 flops per traversed 3×3 block: the paper's F_i = 2·m_i
            // counted from the matrix this step just multiplied.
            c.flops += self.pe[q].stiffness.smvp_flops();
        }

        // --- Exchange phase: post every owned PE's outbound ghost blocks
        // through the transport, then acquire and apply inbound blocks.
        // Each worker posts ALL its PEs' edges before acquiring ANY, which
        // keeps the schedule deadlock-free however PEs are striped across
        // workers and shards. ---
        let wall = {
            let inbound = &self.inbound;
            let outbound = &self.outbound;
            let link = &self.link;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let pack = SendPtr(self.pack.as_mut_ptr());
            let stage = SendPtr(self.stage.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                // Post pass — publish the ghost blocks, packed in the
                // receiver's pair order.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: pack[q], partials[q] and elapsed[q] belong to
                    // this worker alone (one worker per PE).
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    let buf = unsafe { &mut *pack.get().add(q) };
                    for ob in &outbound[q] {
                        let blk = &mut buf[..ob.send_idx.len()];
                        for (slot, &l) in blk.iter_mut().zip(&ob.send_idx) {
                            *slot = mine[l];
                        }
                        link.post(step, q, ob.to, blk).expect("transport post");
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Acquire pass — fetch and apply in schedule order, the
                // same floating-point summation order as the serial
                // product (so every transport is bitwise-equivalent).
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: only exchanged[q]/stage[q] are written (one
                    // worker per PE); own partials were fully written
                    // before the compute barrier.
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    out.copy_from_slice(mine);
                    let buf = unsafe { &mut *stage.get().add(q) };
                    for msg in &inbound[q] {
                        let block = &mut buf[..msg.pairs.len()];
                        link.acquire(step, msg.neighbor, q, block)
                            .expect("transport acquire");
                        for (&(m, _), v) in msg.pairs.iter().zip(block.iter()) {
                            out[m] += *v;
                        }
                    }
                    unsafe {
                        *elapsed.get().add(q) += t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.exchange += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_exchange += dt;
            c.t_barrier += (wall - dt).max(0.0);
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
        }
        self.link.barrier(step).expect("transport barrier");

        // --- Fold phase: replicated results → global vector. ---
        let t0 = Instant::now();
        self.written.fill(false);
        for q in owned.clone() {
            let (s, part) = (&self.pe[q], &self.exchanged[q]);
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.owned.len() < self.pe.len() || self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        self.phases.fold += t0.elapsed().as_secs_f64();

        self.steps += 1;
    }

    /// The telemetry-armed variant of [`BspExecutor::step_into`]: the exact
    /// arithmetic of the clean path (same loops, same order — output is
    /// bitwise-identical, asserted by the equivalence tests) with span,
    /// histogram, and drift recording folded in. Kept as a separate
    /// duplicate, like the chaos path, so the untraced hot path stays
    /// byte-for-byte untouched.
    fn traced_step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        // Taken out of `self` for the duration of the step so phase loops
        // can borrow executor fields freely; restored before returning.
        let mut telem = self
            .telemetry
            .take()
            .expect("traced step requires armed telemetry");
        let step = self.steps;
        let p = self.pe.len();
        let threads = self.pool.threads();
        let owned = self.owned.clone();
        let epoch = telem.epoch;

        // --- Assemble phase: gather replicated local x per PE. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let start_ns = SendPtr(telem.start_ns.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    unsafe {
                        *start_ns.get().add(q) = ns_since(epoch, t);
                    }
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.assemble += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }
        telem.record_phase(PhaseId::Assemble, step, &self.elapsed, wall, owned.clone());

        // --- Compute phase: local SMVP per PE, in place. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let start_ns = SendPtr(telem.start_ns.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: per-q accesses are disjoint (one worker per
                    // PE); x_local was fully written before the assemble
                    // barrier.
                    unsafe {
                        *start_ns.get().add(q) = ns_since(epoch, t);
                    }
                    let xl = unsafe { &*x_local.get().add(q) };
                    let part = unsafe { &mut *partials.get().add(q) };
                    pe[q].mult_full(xl, part);
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.compute += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_compute += dt;
            c.t_barrier += (wall - dt).max(0.0);
            c.flops += self.pe[q].stiffness.smvp_flops();
        }
        telem.record_phase(PhaseId::Compute, step, &self.elapsed, wall, owned.clone());
        for q in owned.clone() {
            telem.data.compute_ns.record(secs_to_ns(self.elapsed[q]));
        }

        // --- Exchange phase: post outbound ghost blocks through the
        // transport, then acquire and apply inbound blocks (see the
        // untraced path). Each inbound block's fetch-and-apply is timed
        // individually. ---
        let wall = {
            let inbound = &self.inbound;
            let outbound = &self.outbound;
            let link = &self.link;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let pack = SendPtr(self.pack.as_mut_ptr());
            let stage = SendPtr(self.stage.as_mut_ptr());
            let start_ns = SendPtr(telem.start_ns.as_mut_ptr());
            let msg_ns = SendPtr(telem.msg_ns.as_mut_ptr());
            let wait = SendPtr(self.wait_scratch.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                // Post pass — publish the ghost blocks.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: pack[q], partials[q] and the timing scratch
                    // belong to this worker alone (one worker per PE).
                    unsafe {
                        *start_ns.get().add(q) = ns_since(epoch, t);
                    }
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    let buf = unsafe { &mut *pack.get().add(q) };
                    for ob in &outbound[q] {
                        let blk = &mut buf[..ob.send_idx.len()];
                        for (slot, &l) in blk.iter_mut().zip(&ob.send_idx) {
                            *slot = mine[l];
                        }
                        link.post(step, q, ob.to, blk).expect("transport post");
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Acquire pass — fetch and apply in schedule order.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: only exchanged[q]/stage[q] (and this PE's
                    // timing scratch) are written (one worker per PE).
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    out.copy_from_slice(mine);
                    let buf = unsafe { &mut *stage.get().add(q) };
                    let lat = unsafe { &mut *msg_ns.get().add(q) };
                    let mut waited = 0.0f64;
                    for (mi, msg) in inbound[q].iter().enumerate() {
                        let tm = Instant::now();
                        let block = &mut buf[..msg.pairs.len()];
                        let info = link
                            .acquire(step, msg.neighbor, q, block)
                            .expect("transport acquire");
                        waited += info.waited_s;
                        for (&(m, _), v) in msg.pairs.iter().zip(block.iter()) {
                            out[m] += *v;
                        }
                        lat[mi] = tm.elapsed().as_nanos() as u64;
                    }
                    unsafe {
                        *elapsed.get().add(q) += t.elapsed().as_secs_f64();
                        *wait.get().add(q) = waited;
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.exchange += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_exchange += dt;
            c.t_barrier += (wall - dt).max(0.0);
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
        }
        telem.record_phase(PhaseId::Exchange, step, &self.elapsed, wall, owned.clone());
        // Transport wait, nested inside each PE's exchange span at its tail:
        // the profiler splits the exchange into apply (this PE's work) and
        // wait (blocked in `acquire` on the sender's progress).
        for q in owned.clone() {
            let waited = self.wait_scratch[q].clamp(0.0, self.elapsed[q]);
            if waited > 0.0 {
                let wait_ns = secs_to_ns(waited);
                telem.data.add_phase_wall(PhaseId::Wait, wait_ns);
                telem.data.span(Span {
                    phase: PhaseId::Wait,
                    pe: q as u32,
                    step,
                    start_ns: telem.start_ns[q] + secs_to_ns(self.elapsed[q]) - wait_ns,
                    dur_ns: wait_ns,
                });
            }
        }
        for q in owned.clone() {
            for (mi, msg) in self.inbound[q].iter().enumerate() {
                telem.data.block_latency_ns.record(telem.msg_ns[q][mi]);
                telem.data.block_words.record(3 * msg.pairs.len() as u64);
            }
        }
        self.record_node_exchange(&mut telem, step, None, &self.elapsed);
        // The drift feed is exchange time minus transport wait: blocking in
        // `acquire` tracks the *sender's* progress, not this PE's load, so
        // leaving it in would flag healthy runs.
        for q in owned.clone() {
            self.wait_scratch[q] = (self.elapsed[q] - self.wait_scratch[q]).max(0.0);
        }
        let flagged = telem
            .data
            .drift
            .as_mut()
            .and_then(|m| m.observe(step, &self.wait_scratch[owned.clone()]));
        if flagged.is_some() {
            telem.data.instant(TraceInstant {
                name: "drift:flagged",
                pe: p as u32,
                step,
                at_ns: ns_since(epoch, Instant::now()),
            });
        }
        self.link.barrier(step).expect("transport barrier");

        // --- Fold phase: replicated results → global vector (driver). ---
        let t0 = Instant::now();
        self.written.fill(false);
        for q in owned.clone() {
            let (s, part) = (&self.pe[q], &self.exchanged[q]);
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.owned.len() < self.pe.len() || self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        let fold_dt = t0.elapsed().as_secs_f64();
        self.phases.fold += fold_dt;
        telem.data.span(Span {
            phase: PhaseId::Fold,
            pe: p as u32,
            step,
            start_ns: ns_since(epoch, t0),
            dur_ns: secs_to_ns(fold_dt),
        });
        telem
            .data
            .add_phase_wall(PhaseId::Fold, secs_to_ns(fold_dt));
        telem.data.steps += 1;

        self.steps += 1;
        self.telemetry = Some(telem);
    }

    /// The latency-hiding variant of [`BspExecutor::step_into`] (see the
    /// module docs). Assemble and fold are unchanged, but compute and
    /// exchange run inside ONE pool broadcast with no barrier between
    /// them. Each worker, for every PE it owns: (A) computes the boundary
    /// rows and publishes them with a Release flag — neighbors consume
    /// nothing else, so this is the only data the exchange waits on; (B)
    /// computes the interior rows while other workers are still posting —
    /// the work the schedule hides the exchange latency behind; (C) copies
    /// its own partials and folds in each inbound message as soon as its
    /// sender's flag says the boundary rows landed (Acquire). Pass A never
    /// blocks, so every flag is eventually set and pass C cannot deadlock,
    /// no matter how PEs are striped across workers.
    ///
    /// Output is bitwise-identical to the barrier schedule: rows are
    /// independent, so computing them in two passes changes nothing; the
    /// boundary-first permutation is entry-order-stable, so every row sums
    /// in the same floating-point order; and pass C applies inbound pairs
    /// in the same order as the barrier exchange. Flop/word/block counters
    /// are identical for the same reason.
    fn overlap_step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        let threads = self.pool.threads();
        let owned = self.owned.clone();
        let step = self.steps;
        let mut ov = self
            .overlap
            .take()
            .expect("overlap step requires overlap state");

        // --- Assemble phase: gather replicated local x per PE. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.assemble += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }

        // --- Overlapped compute+exchange: one broadcast, three passes.
        // Posting goes through the transport right after the boundary
        // pass; the link's acquire is the wait the interior work hides. ---
        for (slot, buf) in ov.part_base.iter_mut().zip(self.partials.iter_mut()) {
            *slot = SendPtr(buf.as_mut_ptr());
        }
        let wall = {
            let pe = &self.pe;
            let inbound = &self.inbound;
            let outbound = &self.outbound;
            let link = &self.link;
            let owned = &owned;
            let post_elapsed = SendPtr(ov.post_elapsed.as_mut_ptr());
            let exch_elapsed = SendPtr(ov.exch_elapsed.as_mut_ptr());
            let wait_elapsed = SendPtr(ov.wait_elapsed.as_mut_ptr());
            let boundary = &ov.boundary_rows;
            let part_base = &ov.part_base;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let pack = SendPtr(self.pack.as_mut_ptr());
            let stage = SendPtr(self.stage.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                // Pass A — compute and post the boundary rows.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: per-q accesses are disjoint (one worker per
                    // PE); x_local was fully written before the assemble
                    // barrier; rows 0..nb of partials[q] are written only
                    // by this pass. Every posted slot is below nb (checked
                    // at build), so the packed blocks are complete.
                    let xl = unsafe { &*x_local.get().add(q) };
                    let nb = boundary[q];
                    let out = unsafe { std::slice::from_raw_parts_mut(part_base[q].get(), nb) };
                    pe[q].mult_range(xl, 0..nb, out);
                    let buf = unsafe { &mut *pack.get().add(q) };
                    for ob in &outbound[q] {
                        let blk = &mut buf[..ob.send_idx.len()];
                        for (slot, &l) in blk.iter_mut().zip(&ob.send_idx) {
                            *slot = out[l];
                        }
                        link.post(step, q, ob.to, blk).expect("transport post");
                    }
                    unsafe {
                        *post_elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Pass B — interior rows, overlapping the neighbors' posts.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    let xl = unsafe { &*x_local.get().add(q) };
                    let n = pe[q].stiffness.block_rows();
                    let nb = boundary[q];
                    // SAFETY: this sub-slice starts at nb — disjoint from
                    // pass A's rows.
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(part_base[q].get().add(nb), n - nb)
                    };
                    pe[q].mult_range(xl, nb..n, out);
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Pass C — exchange as the posts land; the acquire blocks
                // per inbound block only until its sender's post arrives.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    let mut waited = 0.0f64;
                    // SAFETY: only exchanged[q]/stage[q] are written (one
                    // worker per PE). Own partials are complete — this
                    // worker ran passes A and B for q above.
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe {
                        std::slice::from_raw_parts(part_base[q].get() as *const Vec3, out.len())
                    };
                    out.copy_from_slice(mine);
                    let buf = unsafe { &mut *stage.get().add(q) };
                    for msg in &inbound[q] {
                        let block = &mut buf[..msg.pairs.len()];
                        let info = link
                            .acquire(step, msg.neighbor, q, block)
                            .expect("transport acquire");
                        waited += info.waited_s;
                        for (&(m, _), v) in msg.pairs.iter().zip(block.iter()) {
                            out[m] += *v;
                        }
                    }
                    unsafe {
                        *exch_elapsed.get().add(q) = t.elapsed().as_secs_f64();
                        *wait_elapsed.get().add(q) = waited;
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        let mut cmax = 0.0f64;
        for q in owned.clone() {
            let c = &mut self.counters[q];
            let post = ov.post_elapsed[q];
            let interior = self.elapsed[q];
            let exch = ov.exch_elapsed[q];
            c.t_compute += post + interior;
            c.t_exchange += exch;
            c.t_barrier += (wall - (post + interior + exch)).max(0.0);
            c.flops += self.pe[q].stiffness.smvp_flops();
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
            cmax = cmax.max(post + interior);
        }
        // The slowest PE's SMVP bills to compute; whatever wall remains
        // past it is exchange that the interior work failed to hide.
        self.phases.compute += cmax;
        self.phases.exchange += (wall - cmax).max(0.0);
        self.overlap = Some(ov);
        self.link.barrier(step).expect("transport barrier");

        // --- Fold phase: replicated results → global vector. ---
        let t0 = Instant::now();
        self.written.fill(false);
        for q in owned.clone() {
            let (s, part) = (&self.pe[q], &self.exchanged[q]);
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.owned.len() < self.pe.len() || self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        self.phases.fold += t0.elapsed().as_secs_f64();

        self.steps += 1;
    }

    /// [`BspExecutor::overlap_step_into`] with telemetry recording folded
    /// in — the overlap analogue of [`BspExecutor::traced_step_into`].
    /// Spans are recorded manually rather than through `record_phase`
    /// (which would bill a full barrier wait to each of the three passes
    /// of the merged broadcast): each PE gets one Post, one Compute, one
    /// Exchange span at its measured offsets, plus a single Barrier span
    /// for the wall time past its own work. The drift monitor is fed
    /// exchange time *minus* spin wait, which is the barrier schedule's
    /// exchange-work equivalent — so a healthy overlapped run stays
    /// drift-silent.
    fn overlap_traced_step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        let mut telem = self
            .telemetry
            .take()
            .expect("traced step requires armed telemetry");
        let mut ov = self
            .overlap
            .take()
            .expect("overlap step requires overlap state");
        let step = self.steps;
        let p = self.pe.len();
        let threads = self.pool.threads();
        let owned = self.owned.clone();
        let epoch = telem.epoch;

        // --- Assemble phase: gather replicated local x per PE. ---
        let wall = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let start_ns = SendPtr(telem.start_ns.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    unsafe {
                        *start_ns.get().add(q) = ns_since(epoch, t);
                    }
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        self.phases.assemble += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }
        telem.record_phase(PhaseId::Assemble, step, &self.elapsed, wall, owned.clone());

        // --- Overlapped compute+exchange: one broadcast, three passes,
        // per-pass start offsets staged for manual span recording. ---
        for (slot, buf) in ov.part_base.iter_mut().zip(self.partials.iter_mut()) {
            *slot = SendPtr(buf.as_mut_ptr());
        }
        let wall = {
            let pe = &self.pe;
            let inbound = &self.inbound;
            let outbound = &self.outbound;
            let link = &self.link;
            let owned = &owned;
            let post_elapsed = SendPtr(ov.post_elapsed.as_mut_ptr());
            let exch_elapsed = SendPtr(ov.exch_elapsed.as_mut_ptr());
            let wait_elapsed = SendPtr(ov.wait_elapsed.as_mut_ptr());
            let post_start = SendPtr(ov.post_start.as_mut_ptr());
            let exch_start = SendPtr(ov.exch_start.as_mut_ptr());
            let boundary = &ov.boundary_rows;
            let part_base = &ov.part_base;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let pack = SendPtr(self.pack.as_mut_ptr());
            let stage = SendPtr(self.stage.as_mut_ptr());
            let start_ns = SendPtr(telem.start_ns.as_mut_ptr());
            let msg_ns = SendPtr(telem.msg_ns.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                // Pass A — compute and post the boundary rows.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: same disjointness argument as the untraced
                    // overlap path; the timing scratch is per-PE too.
                    unsafe {
                        *post_start.get().add(q) = ns_since(epoch, t);
                    }
                    let xl = unsafe { &*x_local.get().add(q) };
                    let nb = boundary[q];
                    let out = unsafe { std::slice::from_raw_parts_mut(part_base[q].get(), nb) };
                    pe[q].mult_range(xl, 0..nb, out);
                    let buf = unsafe { &mut *pack.get().add(q) };
                    for ob in &outbound[q] {
                        let blk = &mut buf[..ob.send_idx.len()];
                        for (slot, &l) in blk.iter_mut().zip(&ob.send_idx) {
                            *slot = out[l];
                        }
                        link.post(step, q, ob.to, blk).expect("transport post");
                    }
                    unsafe {
                        *post_elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Pass B — interior rows, overlapping the neighbors' posts.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    unsafe {
                        *start_ns.get().add(q) = ns_since(epoch, t);
                    }
                    let xl = unsafe { &*x_local.get().add(q) };
                    let n = pe[q].stiffness.block_rows();
                    let nb = boundary[q];
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(part_base[q].get().add(nb), n - nb)
                    };
                    pe[q].mult_range(xl, nb..n, out);
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
                // Pass C — exchange as the posts land; per-message fetch
                // latency (acquire wait included — that IS the latency the
                // schedule is hiding) feeds the block histogram.
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    let mut waited = 0.0f64;
                    unsafe {
                        *exch_start.get().add(q) = ns_since(epoch, t);
                    }
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe {
                        std::slice::from_raw_parts(part_base[q].get() as *const Vec3, out.len())
                    };
                    out.copy_from_slice(mine);
                    let buf = unsafe { &mut *stage.get().add(q) };
                    let lat = unsafe { &mut *msg_ns.get().add(q) };
                    for (mi, msg) in inbound[q].iter().enumerate() {
                        let tm = Instant::now();
                        let block = &mut buf[..msg.pairs.len()];
                        let info = link
                            .acquire(step, msg.neighbor, q, block)
                            .expect("transport acquire");
                        waited += info.waited_s;
                        for (&(m, _), v) in msg.pairs.iter().zip(block.iter()) {
                            out[m] += *v;
                        }
                        lat[mi] = tm.elapsed().as_nanos() as u64;
                    }
                    unsafe {
                        *exch_elapsed.get().add(q) = t.elapsed().as_secs_f64();
                        *wait_elapsed.get().add(q) = waited;
                    }
                }
            });
            t0.elapsed().as_secs_f64()
        };
        let mut cmax = 0.0f64;
        let mut post_max = 0.0f64;
        let mut interior_max = 0.0f64;
        for q in owned.clone() {
            let c = &mut self.counters[q];
            let post = ov.post_elapsed[q];
            let interior = self.elapsed[q];
            let exch = ov.exch_elapsed[q];
            c.t_compute += post + interior;
            c.t_exchange += exch;
            c.t_barrier += (wall - (post + interior + exch)).max(0.0);
            c.flops += self.pe[q].stiffness.smvp_flops();
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                // Each inbound message is matched by an equal outbound one
                // (the exchange is symmetric), so count both directions.
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
            cmax = cmax.max(post + interior);
            post_max = post_max.max(post);
            interior_max = interior_max.max(interior);
        }
        self.phases.compute += cmax;
        self.phases.exchange += (wall - cmax).max(0.0);
        telem
            .data
            .add_phase_wall(PhaseId::Post, secs_to_ns(post_max));
        telem
            .data
            .add_phase_wall(PhaseId::Compute, secs_to_ns(interior_max));
        telem
            .data
            .add_phase_wall(PhaseId::Exchange, secs_to_ns((wall - cmax).max(0.0)));
        for q in owned.clone() {
            let post = ov.post_elapsed[q];
            let interior = self.elapsed[q];
            let exch = ov.exch_elapsed[q];
            for (phase, start, dur) in [
                (PhaseId::Post, ov.post_start[q], post),
                (PhaseId::Compute, telem.start_ns[q], interior),
                (PhaseId::Exchange, ov.exch_start[q], exch),
            ] {
                telem.data.span(Span {
                    phase,
                    pe: q as u32,
                    step,
                    start_ns: start,
                    dur_ns: secs_to_ns(dur),
                });
            }
            // Transport wait, nested at the tail of the exchange span: the
            // acquire pass accumulates blocked time waiting on senders.
            let waited = ov.wait_elapsed[q].clamp(0.0, exch);
            if waited > 0.0 {
                let waited_ns = secs_to_ns(waited);
                telem.data.add_phase_wall(PhaseId::Wait, waited_ns);
                telem.data.span(Span {
                    phase: PhaseId::Wait,
                    pe: q as u32,
                    step,
                    start_ns: ov.exch_start[q] + secs_to_ns(exch) - waited_ns,
                    dur_ns: waited_ns,
                });
            }
            let wait = (wall - (post + interior + exch)).max(0.0);
            if wait > 0.0 {
                let wait_ns = secs_to_ns(wait);
                telem.data.add_phase_wall(PhaseId::Barrier, wait_ns);
                telem.data.span(Span {
                    phase: PhaseId::Barrier,
                    pe: q as u32,
                    step,
                    start_ns: ov.exch_start[q] + secs_to_ns(exch),
                    dur_ns: wait_ns,
                });
            }
            telem.data.compute_ns.record(secs_to_ns(post + interior));
        }
        for q in owned.clone() {
            for (mi, msg) in self.inbound[q].iter().enumerate() {
                telem.data.block_latency_ns.record(telem.msg_ns[q][mi]);
                telem.data.block_words.record(3 * msg.pairs.len() as u64);
            }
        }
        self.record_node_exchange(&mut telem, step, Some(&ov.exch_start), &ov.exch_elapsed);
        for q in owned.clone() {
            ov.drift_scratch[q] = (ov.exch_elapsed[q] - ov.wait_elapsed[q]).max(0.0);
        }
        let flagged = telem
            .data
            .drift
            .as_mut()
            .and_then(|m| m.observe(step, &ov.drift_scratch[owned.clone()]));
        if flagged.is_some() {
            telem.data.instant(TraceInstant {
                name: "drift:flagged",
                pe: p as u32,
                step,
                at_ns: ns_since(epoch, Instant::now()),
            });
        }
        self.overlap = Some(ov);
        self.link.barrier(step).expect("transport barrier");

        // --- Fold phase: replicated results → global vector (driver). ---
        let t0 = Instant::now();
        self.written.fill(false);
        for q in owned.clone() {
            let (s, part) = (&self.pe[q], &self.exchanged[q]);
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.owned.len() < self.pe.len() || self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        let fold_dt = t0.elapsed().as_secs_f64();
        self.phases.fold += fold_dt;
        telem.data.span(Span {
            phase: PhaseId::Fold,
            pe: p as u32,
            step,
            start_ns: ns_since(epoch, t0),
            dur_ns: secs_to_ns(fold_dt),
        });
        telem
            .data
            .add_phase_wall(PhaseId::Fold, secs_to_ns(fold_dt));
        telem.data.steps += 1;

        self.steps += 1;
        self.telemetry = Some(telem);
    }

    /// The chaos-armed variant of [`BspExecutor::step_into`]: checkpoints on
    /// schedule, executes the logical step, and on a crashed attempt
    /// (Restart policy) respawns the dead workers, restores the last
    /// checkpoint, and replays forward until the target step completes.
    fn chaos_step_into(&mut self, x: &[Vec3], y: &mut [Vec3]) {
        let target = self.steps;
        {
            let fault = self
                .fault
                .as_deref_mut()
                .expect("chaos step requires armed faults");
            if target.is_multiple_of(fault.checkpoint_every) {
                fault.checkpoint = Checkpoint {
                    step: target,
                    counters: self.counters.clone(),
                    phases: self.phases,
                };
                fault.report.checkpoints += 1;
            }
        }
        // Replay cursor: normally just `target`; after a restore it walks
        // back up from the checkpoint. Each replayed step re-runs clean
        // (its events are already consumed), so the loop always converges.
        let mut s = target;
        loop {
            match self.chaos_execute_step(x, y, s) {
                Ok(()) => {
                    if s == target {
                        break;
                    }
                    s += 1;
                }
                Err(panicked) => {
                    let t_rec = Instant::now();
                    for &w in &panicked {
                        self.pool.respawn(w);
                    }
                    let fault = self
                        .fault
                        .as_deref_mut()
                        .expect("chaos step requires armed faults");
                    fault.report.respawned_workers += panicked.len() as u64;
                    fault.report.restores += 1;
                    fault.report.recovered.crash += fault.pending_crashes;
                    fault.pending_crashes = 0;
                    fault.report.replayed_steps += s - fault.checkpoint.step;
                    self.counters = fault.checkpoint.counters.clone();
                    self.phases = fault.checkpoint.phases;
                    s = fault.checkpoint.step;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        let driver = self.pe.len() as u32;
                        let start = ns_since(t.epoch, t_rec);
                        let dur = secs_to_ns(t_rec.elapsed().as_secs_f64());
                        t.data.span(Span {
                            phase: PhaseId::Recover,
                            pe: driver,
                            step: s,
                            start_ns: start,
                            dur_ns: dur,
                        });
                        t.data.add_phase_wall(PhaseId::Recover, dur);
                        t.data.instant(TraceInstant {
                            name: "recover:restore",
                            pe: driver,
                            step: s,
                            at_ns: start,
                        });
                    }
                }
            }
        }
        // One logical step regardless of how many attempts it took.
        self.steps += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.data.steps += 1;
        }
    }

    /// Executes one step with fault events live. Returns `Err(panicked
    /// worker indices)` only under [`RecoveryPolicy::Restart`] when a crash
    /// event fired; every other fault (and every crash under `Degrade`) is
    /// healed in here and the step completes with output bitwise-equal to
    /// the fault-free path.
    fn chaos_execute_step(
        &mut self,
        x: &[Vec3],
        y: &mut [Vec3],
        step: u64,
    ) -> Result<(), Vec<usize>> {
        let p = self.pe.len();
        let threads = self.pool.threads();
        let owned = self.owned.clone();
        // Taken out of `self` so telemetry recording can run while `fault`
        // borrows its own field; restored on every exit path.
        let mut telem = self.telemetry.take();
        let fault = self
            .fault
            .as_deref_mut()
            .expect("chaos step requires armed faults");

        // --- Assemble phase: identical to the clean path (no fault kind
        // targets it). ---
        let (wall, t0) = {
            let pe = &self.pe;
            let owned = &owned;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&|w| {
                for q in owned_chunk(owned, threads, w) {
                    let t = Instant::now();
                    // SAFETY: each PE q belongs to exactly one worker's
                    // chunk, so these per-q accesses are disjoint.
                    let xl = unsafe { &mut *x_local.get().add(q) };
                    for (slot, &g) in xl.iter_mut().zip(&pe[q].gather) {
                        *slot = x[g];
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            });
            (t0.elapsed().as_secs_f64(), t0)
        };
        self.phases.assemble += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_assemble += dt;
            c.t_barrier += (wall - dt).max(0.0);
        }
        if let Some(t) = telem.as_deref_mut() {
            // Chaos-path spans share the phase start (per-PE starts would
            // need scratch in every closure; the phase-aligned view is what
            // the trace needs to show recovery structure).
            t.start_ns.fill(ns_since(t.epoch, t0));
            t.record_phase(PhaseId::Assemble, step, &self.elapsed, wall, owned.clone());
        }

        // --- Compute phase: local SMVP, with Crash and Straggle events
        // live. Crash is checked first so a consumed straggle always has a
        // written elapsed slot behind it. ---
        let mut restart_failed: Option<Vec<usize>> = None;
        let (wall, t0, degraded) = {
            let pe = &self.pe;
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let x_local = SendPtr(self.x_local.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let plan = &fault.plan;
            let fired = &fault.fired;
            let scratch = SendPtr(fault.scratch.as_mut_ptr());
            let owned_c = owned.clone();
            let compute = move |w: usize| {
                for q in owned_chunk(&owned_c, threads, w) {
                    let t = Instant::now();
                    // SAFETY: per-q accesses are disjoint (one worker per
                    // PE); the scratch slot likewise.
                    let sc = unsafe { &mut *scratch.get().add(q) };
                    for e in plan.at(step, q) {
                        if let FaultKind::Crash = plan.events()[e].kind {
                            if !fired[e].swap(true, Ordering::Relaxed) {
                                sc.crashes += 1;
                                panic!("injected fault: PE {q} crash at step {step}");
                            }
                        }
                    }
                    for e in plan.at(step, q) {
                        if let FaultKind::Straggle { delay_us } = plan.events()[e].kind {
                            if !fired[e].swap(true, Ordering::Relaxed) {
                                let delay = Duration::from_micros(u64::from(delay_us));
                                sc.straggles += 1;
                                sc.straggle_delay_s += delay.as_secs_f64();
                                std::thread::sleep(delay);
                            }
                        }
                    }
                    let xl = unsafe { &*x_local.get().add(q) };
                    let part = unsafe { &mut *partials.get().add(q) };
                    pe[q].mult_full(xl, part);
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                    }
                }
            };
            let t0 = Instant::now();
            let mut degraded = 0u64;
            if let Err(failure) = self.pool.try_broadcast(&compute) {
                match fault.policy {
                    RecoveryPolicy::FailFast => failure.resume(),
                    RecoveryPolicy::Degrade => {
                        // Re-execute each dead shard inline on this thread.
                        // spmv fully overwrites its output, so the re-run is
                        // bitwise-identical to what the worker would have
                        // produced; remaining one-shot events may fire (and
                        // panic) again, hence the loop.
                        for &w in &failure.panicked {
                            // Each attempt overwrites the chunk's phase
                            // clocks, and a straggle's sleep only shows in
                            // the attempt where it fired (events are
                            // one-shot). Track the per-PE max across
                            // attempts so the observational evidence of a
                            // straggle survives the clean re-run.
                            let chunk = owned_chunk(&owned, threads, w);
                            let mut best: Vec<f64> =
                                chunk.clone().map(|q| self.elapsed[q]).collect();
                            loop {
                                degraded += 1;
                                let done = catch_unwind(AssertUnwindSafe(|| compute(w))).is_ok();
                                for (slot, q) in best.iter_mut().zip(chunk.clone()) {
                                    *slot = slot.max(self.elapsed[q]);
                                }
                                if done {
                                    break;
                                }
                            }
                            for (&b, q) in best.iter().zip(chunk) {
                                // Restore only where a straggle fired: that
                                // PE really did spend the slept time.
                                if fault.scratch[q].straggle_delay_s > 0.0 {
                                    self.elapsed[q] = self.elapsed[q].max(b);
                                }
                            }
                        }
                    }
                    RecoveryPolicy::Restart => restart_failed = Some(failure.panicked),
                }
            }
            (t0.elapsed().as_secs_f64(), t0, degraded)
        };
        fault.report.degraded_shards += degraded;
        let mut crashes = 0u64;
        for (q, slot) in fault.scratch.iter_mut().enumerate() {
            let sc = std::mem::take(slot);
            if sc.straggles > 0 {
                fault.report.injected.straggle += sc.straggles;
                // Detection is observational: the phase clock for this PE
                // must actually show the injected delay.
                if self.elapsed[q] >= sc.straggle_delay_s * 0.999 {
                    fault.report.detected.straggle += sc.straggles;
                    // The barrier absorbs the delay; nothing else to heal.
                    fault.report.recovered.straggle += sc.straggles;
                }
            }
            crashes += sc.crashes;
            if let Some(t) = telem.as_deref_mut() {
                let at_ns = ns_since(t.epoch, Instant::now());
                for _ in 0..sc.straggles {
                    t.data.instant(TraceInstant {
                        name: "fault:straggle",
                        pe: q as u32,
                        step,
                        at_ns,
                    });
                }
                for _ in 0..sc.crashes {
                    t.data.instant(TraceInstant {
                        name: "fault:crash",
                        pe: q as u32,
                        step,
                        at_ns,
                    });
                }
            }
        }
        if crashes > 0 {
            fault.report.injected.crash += crashes;
            // Detection = the supervisor caught the panic.
            fault.report.detected.crash += crashes;
            match fault.policy {
                RecoveryPolicy::Degrade => fault.report.recovered.crash += crashes,
                // Credited as recovered once the restart actually restores.
                RecoveryPolicy::Restart => fault.pending_crashes += crashes,
                RecoveryPolicy::FailFast => {}
            }
        }
        if let Some(panicked) = restart_failed {
            self.telemetry = telem;
            return Err(panicked);
        }
        self.phases.compute += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_compute += dt;
            c.t_barrier += (wall - dt).max(0.0);
            c.flops += self.pe[q].stiffness.smvp_flops();
        }
        if let Some(t) = telem.as_deref_mut() {
            t.start_ns.fill(ns_since(t.epoch, t0));
            t.record_phase(PhaseId::Compute, step, &self.elapsed, wall, owned.clone());
            for q in owned.clone() {
                t.data.compute_ns.record(secs_to_ns(self.elapsed[q]));
            }
        }

        // --- Exchange phase: outbound blocks are posted through the
        // transport, and every inbound block is fetched through the staging
        // buffer with Drop and Corrupt events live. The transport carries
        // the sender-side checksum; the receiver re-verifies after the wire
        // (where corruption is injected) and re-fetches on mismatch. ---
        let msg_lat = telem.as_deref_mut().map(|t| SendPtr(t.msg_ns.as_mut_ptr()));
        let (wall, t0) = {
            let inbound = &self.inbound;
            let outbound = &self.outbound;
            let link = Arc::clone(&self.link);
            let owned_c = owned.clone();
            let elapsed = SendPtr(self.elapsed.as_mut_ptr());
            let partials = SendPtr(self.partials.as_mut_ptr());
            let exchanged = SendPtr(self.exchanged.as_mut_ptr());
            let plan = &fault.plan;
            let fired = &fault.fired;
            let scratch = SendPtr(fault.scratch.as_mut_ptr());
            let pack = SendPtr(self.pack.as_mut_ptr());
            let stage = SendPtr(self.stage.as_mut_ptr());
            let wait = SendPtr(self.wait_scratch.as_mut_ptr());
            let t0 = Instant::now();
            self.pool.broadcast(&move |w| {
                // Post pass — publishing is not a fault target: drops and
                // corruption are injected on the *receive* side of the
                // modeled wire, so the posted blocks are always clean.
                for q in owned_chunk(&owned_c, threads, w) {
                    // SAFETY: pack[q]/partials[q] belong to this worker
                    // alone (one worker per PE).
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    let buf = unsafe { &mut *pack.get().add(q) };
                    for ob in &outbound[q] {
                        let blk = &mut buf[..ob.send_idx.len()];
                        for (slot, &l) in blk.iter_mut().zip(&ob.send_idx) {
                            *slot = mine[l];
                        }
                        link.post(step, q, ob.to, blk).expect("transport post");
                    }
                }
                for q in owned_chunk(&owned_c, threads, w) {
                    let t = Instant::now();
                    // SAFETY: only exchanged[q], scratch[q], stage[q] (and,
                    // when telemetry is armed, this PE's latency scratch)
                    // are written (one worker per PE).
                    let out = unsafe { &mut *exchanged.get().add(q) };
                    let mine = unsafe { &*(partials.get().add(q) as *const Vec<Vec3>) };
                    out.copy_from_slice(mine);
                    let sc = unsafe { &mut *scratch.get().add(q) };
                    let buf = unsafe { &mut *stage.get().add(q) };
                    let mut waited = 0.0f64;
                    let n_msgs = inbound[q].len();
                    for (mi, msg) in inbound[q].iter().enumerate() {
                        let tm = Instant::now();
                        let block = &mut buf[..msg.pairs.len()];
                        let mut attempt: u32 = 0;
                        // Deterministic decorrelated jitter for re-fetch
                        // retries, seeded per (step, PE, message) so a
                        // replayed step sleeps the identical schedule.
                        let mut retry = RetryBackoff::new(mix64(
                            step ^ ((q as u64) << 40) ^ ((mi as u64) << 20),
                        ));
                        loop {
                            attempt += 1;
                            assert!(
                                attempt <= MAX_FETCH_ATTEMPTS,
                                "PE {q} message {mi}: fetch failed after \
                                 {MAX_FETCH_ATTEMPTS} attempts"
                            );
                            // The network eats this attempt if an unfired
                            // Drop event charged to message `mi` exists (the
                            // j-th Drop on PE q targets message j mod n).
                            let mut dropped = false;
                            let mut dcount = 0usize;
                            for e in plan.at(step, q) {
                                if let FaultKind::Drop = plan.events()[e].kind {
                                    let victim = dcount % n_msgs;
                                    dcount += 1;
                                    if victim == mi && !fired[e].swap(true, Ordering::Relaxed) {
                                        dropped = true;
                                        break;
                                    }
                                }
                            }
                            if dropped {
                                sc.drops += 1;
                                // Detection: the fetch visibly failed.
                                sc.drops_detected += 1;
                                sc.retries += 1;
                                // Bounded decorrelated-jitter backoff
                                // before retry.
                                let backoff = retry.next_delay();
                                sc.backoff_ns += backoff.as_nanos() as u64;
                                std::thread::sleep(backoff);
                                continue;
                            }
                            // Fetch: stage the block through the transport,
                            // which carries the sender-side checksum (a
                            // re-fetch acquires the same posted step again).
                            let ts = Instant::now();
                            let info = link
                                .acquire(step, msg.neighbor, q, block)
                                .expect("transport acquire");
                            waited += info.waited_s;
                            let sent = info.checksum;
                            sc.stage_ns += ts.elapsed().as_nanos() as u64;
                            // In-flight corruption: flip one bit of one
                            // staged ghost word, chosen by the event's salt.
                            for e in plan.at(step, q) {
                                if let FaultKind::Corrupt { salt } = plan.events()[e].kind {
                                    if (salt as usize) % n_msgs == mi
                                        && !fired[e].swap(true, Ordering::Relaxed)
                                    {
                                        let words = 3 * msg.pairs.len();
                                        let wi = ((salt >> 8) as usize) % words;
                                        let bit = ((salt >> 32) % 64) as u32;
                                        let v = &mut block[wi / 3];
                                        let c = match wi % 3 {
                                            0 => &mut v.x,
                                            1 => &mut v.y,
                                            _ => &mut v.z,
                                        };
                                        *c = f64::from_bits(c.to_bits() ^ (1u64 << bit));
                                        sc.corrupts += 1;
                                        break;
                                    }
                                }
                            }
                            // Receiver-side verification; a mismatch forces
                            // a clean re-fetch of the whole block.
                            let tv = Instant::now();
                            let verified = link.verify(block, sent);
                            sc.verify_ns += tv.elapsed().as_nanos() as u64;
                            if !verified {
                                sc.corrupts_detected += 1;
                                sc.refetches += 1;
                                continue;
                            }
                            break;
                        }
                        // Apply the verified block in clean-path pair order,
                        // so the sums are bitwise-identical to fault-free.
                        for (&(m, _), v) in msg.pairs.iter().zip(block.iter()) {
                            out[m] += *v;
                        }
                        if let Some(lp) = msg_lat {
                            // SAFETY: latency slot [q][mi] is only touched
                            // by this PE's worker this phase.
                            unsafe {
                                let lat = &mut *lp.get().add(q);
                                lat[mi] = tm.elapsed().as_nanos() as u64;
                            }
                        }
                    }
                    unsafe {
                        *elapsed.get().add(q) = t.elapsed().as_secs_f64();
                        *wait.get().add(q) = waited;
                    }
                }
            });
            (t0.elapsed().as_secs_f64(), t0)
        };
        self.phases.exchange += wall;
        for q in owned.clone() {
            let dt = self.elapsed[q];
            let c = &mut self.counters[q];
            c.t_exchange += dt;
            c.t_barrier += (wall - dt).max(0.0);
            for msg in &self.inbound[q] {
                let words = 3 * msg.pairs.len() as u64;
                c.words_received += words;
                c.words_sent += words;
                c.blocks_received += 1;
                c.blocks_sent += 1;
            }
        }
        if let Some(t) = telem.as_deref_mut() {
            t.start_ns.fill(ns_since(t.epoch, t0));
            t.record_phase(PhaseId::Exchange, step, &self.elapsed, wall, owned.clone());
            for q in owned.clone() {
                for (mi, msg) in self.inbound[q].iter().enumerate() {
                    t.data.block_latency_ns.record(t.msg_ns[q][mi]);
                    t.data.block_words.record(3 * msg.pairs.len() as u64);
                }
            }
        }
        for (q, slot) in fault.scratch.iter_mut().enumerate() {
            let sc = std::mem::take(slot);
            fault.report.injected.drop += sc.drops;
            fault.report.detected.drop += sc.drops_detected;
            // The step completed, so every detected drop/corruption was
            // healed by its retry/re-fetch.
            fault.report.recovered.drop += sc.drops_detected;
            fault.report.retries += sc.retries;
            fault.report.injected.corrupt += sc.corrupts;
            fault.report.detected.corrupt += sc.corrupts_detected;
            fault.report.recovered.corrupt += sc.corrupts_detected;
            fault.report.refetches += sc.refetches;
            if let Some(t) = telem.as_deref_mut() {
                let phase_start = ns_since(t.epoch, t0);
                // Aggregate staging/verification work as spans nested inside
                // this PE's exchange span.
                if sc.stage_ns > 0 {
                    t.data.add_phase_wall(PhaseId::Stage, sc.stage_ns);
                    t.data.span(Span {
                        phase: PhaseId::Stage,
                        pe: q as u32,
                        step,
                        start_ns: phase_start,
                        dur_ns: sc.stage_ns,
                    });
                }
                if sc.verify_ns > 0 {
                    t.data.add_phase_wall(PhaseId::Verify, sc.verify_ns);
                    t.data.span(Span {
                        phase: PhaseId::Verify,
                        pe: q as u32,
                        step,
                        start_ns: phase_start + sc.stage_ns,
                        dur_ns: sc.verify_ns,
                    });
                }
                // Only the total backoff survives the hot path; record the
                // mean once per retry.
                if let Some(mean_ns) = sc.backoff_ns.checked_div(sc.retries) {
                    t.data.retry_ns.record_n(mean_ns, sc.retries);
                }
                let at_ns = ns_since(t.epoch, Instant::now());
                for _ in 0..sc.drops {
                    t.data.instant(TraceInstant {
                        name: "fault:drop",
                        pe: q as u32,
                        step,
                        at_ns,
                    });
                }
                for _ in 0..sc.corrupts {
                    t.data.instant(TraceInstant {
                        name: "fault:corrupt",
                        pe: q as u32,
                        step,
                        at_ns,
                    });
                }
            }
        }
        if let Some(t) = telem.as_deref_mut() {
            self.record_node_exchange(t, step, None, &self.elapsed);
            // Same convention as the clean traced paths: drift sees the
            // exchange work net of transport waits.
            for q in owned.clone() {
                self.wait_scratch[q] = (self.elapsed[q] - self.wait_scratch[q]).max(0.0);
            }
            let flagged = t
                .data
                .drift
                .as_mut()
                .and_then(|m| m.observe(step, &self.wait_scratch[owned.clone()]));
            if flagged.is_some() {
                t.data.instant(TraceInstant {
                    name: "drift:flagged",
                    pe: p as u32,
                    step,
                    at_ns: ns_since(t.epoch, Instant::now()),
                });
            }
        }
        self.link.barrier(step).expect("transport barrier");

        // --- Fold phase: identical to the clean path. ---
        let t0 = Instant::now();
        self.written.fill(false);
        for q in owned.clone() {
            let (s, part) = (&self.pe[q], &self.exchanged[q]);
            for (l, &g) in s.gather.iter().enumerate() {
                if self.written[g] {
                    debug_assert!(
                        (y[g] - part[l]).norm() <= 1e-9 * (1.0 + y[g].norm()),
                        "replicas disagree at node {g}"
                    );
                } else {
                    y[g] = part[l];
                    self.written[g] = true;
                }
            }
        }
        debug_assert!(
            self.owned.len() < self.pe.len() || self.written.iter().all(|&w| w),
            "every node resides somewhere"
        );
        let fold_dt = t0.elapsed().as_secs_f64();
        self.phases.fold += fold_dt;
        if let Some(t) = telem.as_deref_mut() {
            t.data.span(Span {
                phase: PhaseId::Fold,
                pe: p as u32,
                step,
                start_ns: ns_since(t.epoch, t0),
                dur_ns: secs_to_ns(fold_dt),
            });
            t.data.add_phase_wall(PhaseId::Fold, secs_to_ns(fold_dt));
        }
        self.telemetry = telem;
        Ok(())
    }

    /// Executes one bulk-synchronous SMVP `y = Kx`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the mesh node count.
    pub fn step(&mut self, x: &[Vec3]) -> Vec<Vec3> {
        let mut y = vec![Vec3::ZERO; self.global_nodes];
        self.step_into(x, &mut y);
        y
    }

    /// Runs `steps` SMVPs of the same input (the paper's repeated time-loop
    /// product) and returns the final result. The output buffer is
    /// allocated once and reused by every step.
    pub fn run(&mut self, x: &[Vec3], steps: u64) -> Vec<Vec3> {
        let mut y = vec![Vec3::ZERO; self.global_nodes];
        for _ in 0..steps {
            self.step_into(x, &mut y);
        }
        y
    }

    /// The accumulated measurement report.
    pub fn report(&self) -> ExecutionReport {
        ExecutionReport {
            threads: self.pool.threads(),
            steps: self.steps,
            pe: self.counters.clone(),
            phases: self.phases,
            fault: self.fault.as_ref().map(|f| f.report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_fem::assembly::UniformMaterial;
    use quake_mesh::ground::Material;
    use quake_mesh::mesh::TetMesh;
    use quake_partition::comm::CommAnalysis;
    use quake_partition::geometric::{Partitioner, RecursiveBisection};
    use quake_partition::partition::Partition;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(parts: usize) -> (TetMesh, Partition, DistributedSystem) {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).unwrap();
        let partition = RecursiveBisection::inertial()
            .partition(&app.mesh, parts)
            .unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&app.mesh, &partition, &UniformMaterial(mat)).unwrap();
        (app.mesh, partition, sys)
    }

    fn random_x(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn assert_matches_serial(serial: &[Vec3], pooled: &[Vec3], what: &str) {
        let scale: f64 = serial.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (i, (a, b)) in serial.iter().zip(pooled).enumerate() {
            assert!(
                (*a - *b).norm() <= 1e-12 * (1.0 + scale),
                "node {i} ({what}): serial {a} vs pooled {b}"
            );
        }
    }

    #[test]
    fn executor_matches_serial_distributed_smvp() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 11);
        let serial = sys.smvp(&x);
        for threads in [1, 4] {
            let mut exec = BspExecutor::new(&sys, threads);
            let pooled = exec.step(&x);
            assert_matches_serial(&serial, &pooled, &format!("{threads} threads"));
        }
    }

    #[test]
    fn rcm_executor_matches_serial_and_counters() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 13);
        let serial = sys.smvp(&x);
        let mut exec = BspExecutor::with_rcm(&sys, 3);
        assert!(exec.rcm_enabled());
        let pooled = exec.step(&x);
        assert_matches_serial(&serial, &pooled, "rcm");
        // Renumbering is PE-local, so the characterization match stays
        // exact.
        let report = exec.report();
        assert_eq!(report.f_max(), analysis.f_max(), "F mismatch under RCM");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max mismatch under RCM");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max mismatch under RCM");
    }

    #[test]
    fn steady_state_steps_do_not_reallocate() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 17);
        let mut exec = BspExecutor::new(&sys, 2);
        let mut y = vec![Vec3::ZERO; mesh.node_count()];
        // Warmup step, then the buffers must be pinned.
        exec.step_into(&x, &mut y);
        let fp = exec.buffer_fingerprint();
        let y_fp = (y.as_ptr() as usize, y.capacity());
        for _ in 0..100 {
            exec.step_into(&x, &mut y);
        }
        assert_eq!(
            exec.buffer_fingerprint(),
            fp,
            "executor buffers moved or regrew during steady-state steps"
        );
        assert_eq!(
            (y.as_ptr() as usize, y.capacity()),
            y_fp,
            "output buffer moved during steady-state steps"
        );
        assert_eq!(exec.report().steps, 101);
    }

    #[test]
    fn overlap_executor_matches_serial_distributed_smvp() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 19);
        let serial = sys.smvp(&x);
        for threads in [1, 4] {
            let mut exec = BspExecutor::with_options(&sys, threads, false, true);
            assert!(exec.overlap_enabled());
            let pooled = exec.step(&x);
            assert_matches_serial(&serial, &pooled, &format!("overlap, {threads} threads"));
        }
    }

    #[test]
    fn simd_kernel_is_bitwise_equal_across_schedules_with_exact_counters() {
        let (mesh, _, sys) = setup(5);
        let x = random_x(mesh.node_count(), 29);
        for (threads, use_rcm, use_overlap) in [
            (1, false, false),
            (4, false, false),
            (3, true, false),
            (2, false, true),
            (4, true, true),
        ] {
            let what = format!("threads {threads}, rcm {use_rcm}, overlap {use_overlap}");
            let mut scalar = BspExecutor::with_options(&sys, threads, use_rcm, use_overlap);
            assert_eq!(scalar.kernel(), KernelKind::Micro);
            let mut simd = BspExecutor::with_options(&sys, threads, use_rcm, use_overlap);
            simd.set_kernel(KernelKind::MicroSimd);
            assert_eq!(simd.kernel(), KernelKind::MicroSimd);
            let a = scalar.run(&x, 3);
            let b = simd.run(&x, 3);
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                assert_eq!(u.x.to_bits(), v.x.to_bits(), "node {i} .x ({what})");
                assert_eq!(u.y.to_bits(), v.y.to_bits(), "node {i} .y ({what})");
                assert_eq!(u.z.to_bits(), v.z.to_bits(), "node {i} .z ({what})");
            }
            // The kernels traverse the same matrices, so every counter is
            // identical — not merely close.
            let (ra, rb) = (scalar.report(), simd.report());
            for (ca, cb) in ra.pe.iter().zip(&rb.pe) {
                assert_eq!(ca.flops, cb.flops, "flops ({what})");
                assert_eq!(ca.words_sent, cb.words_sent, "words_sent ({what})");
                assert_eq!(
                    ca.words_received, cb.words_received,
                    "words_received ({what})"
                );
                assert_eq!(ca.blocks_sent, cb.blocks_sent, "blocks_sent ({what})");
                assert_eq!(
                    ca.blocks_received, cb.blocks_received,
                    "blocks_received ({what})"
                );
            }
        }
    }

    #[test]
    fn kernel_round_trips_its_cli_spelling() {
        for k in [KernelKind::Micro, KernelKind::MicroSimd] {
            assert_eq!(k.to_string().parse::<KernelKind>().unwrap(), k);
        }
        assert!("turbo".parse::<KernelKind>().is_err());
    }

    #[test]
    fn switching_kernels_back_drops_the_tile_twin() {
        let (mesh, _, sys) = setup(2);
        let x = random_x(mesh.node_count(), 31);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.set_kernel(KernelKind::MicroSimd);
        let a = exec.step(&x);
        exec.set_kernel(KernelKind::Micro);
        assert!(exec.pe.iter().all(|s| s.tiled.is_none()));
        let b = exec.step(&x);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.x.to_bits(), v.x.to_bits());
        }
    }

    #[test]
    fn overlap_single_pe_is_all_interior_and_still_correct() {
        let (mesh, _, sys) = setup(1);
        let x = random_x(mesh.node_count(), 23);
        let serial = sys.smvp(&x);
        let mut exec = BspExecutor::with_options(&sys, 2, false, true);
        assert_eq!(
            exec.overlap_boundary_rows(),
            Some(&[0usize][..]),
            "a lone PE exchanges nothing, so nothing is boundary"
        );
        let pooled = exec.step(&x);
        assert_matches_serial(&serial, &pooled, "overlap, single PE");
    }

    #[test]
    fn overlap_steady_state_steps_do_not_reallocate() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 29);
        let mut exec = BspExecutor::with_options(&sys, 2, false, true);
        let mut y = vec![Vec3::ZERO; mesh.node_count()];
        exec.step_into(&x, &mut y);
        let fp = exec.buffer_fingerprint();
        for _ in 0..100 {
            exec.step_into(&x, &mut y);
        }
        assert_eq!(
            exec.buffer_fingerprint(),
            fp,
            "overlap buffers moved or regrew during steady-state steps"
        );
        assert_eq!(exec.report().steps, 101);
    }

    #[test]
    fn measured_counters_match_characterization_exactly() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 3);
        let mut exec = BspExecutor::new(&sys, 4);
        exec.run(&x, 3);
        let report = exec.report();
        assert_eq!(report.steps, 3);
        assert_eq!(report.f_max(), analysis.f_max(), "F mismatch");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max mismatch");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max mismatch");
        for (q, (c, predicted)) in report.pe.iter().zip(analysis.per_pe()).enumerate() {
            assert_eq!(c.flops / 3, predicted.flops, "PE {q} flops");
            assert_eq!(c.words() / 3, predicted.words, "PE {q} words");
            assert_eq!(c.blocks() / 3, predicted.blocks, "PE {q} blocks");
            assert_eq!(c.words_sent, c.words_received, "exchange is symmetric");
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let (mesh, _, sys) = setup(2);
        let x = random_x(mesh.node_count(), 5);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.run(&x, 2);
        let report = exec.report();
        assert!(report.phases.compute > 0.0);
        assert!(report.phases.exchange > 0.0);
        assert!(report.phases.total() > 0.0);
        assert!(report.efficiency() > 0.0 && report.efficiency() <= 1.0);
        for c in &report.pe {
            assert!(c.t_compute > 0.0);
            assert!(c.t_barrier >= 0.0);
        }
    }

    #[test]
    fn single_pe_has_no_communication() {
        let (mesh, _, _) = setup(2);
        let partition = RecursiveBisection::inertial().partition(&mesh, 1).unwrap();
        let mat = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        let sys = DistributedSystem::build(&mesh, &partition, &UniformMaterial(mat)).unwrap();
        let x = random_x(mesh.node_count(), 7);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.step(&x);
        let report = exec.report();
        assert_eq!(report.c_max(), 0);
        assert_eq!(report.b_max(), 0);
        assert_eq!(report.efficiency(), report.efficiency().clamp(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let (_, _, sys) = setup(2);
        let mut exec = BspExecutor::new(&sys, 2);
        let _ = exec.step(&[Vec3::ZERO]);
    }

    // --- Chaos layer ---

    use quake_core::fault::{FaultEvent, FaultRates};

    fn assert_bitwise_equal(clean: &[Vec3], chaos: &[Vec3], what: &str) {
        assert_eq!(clean.len(), chaos.len());
        for (i, (a, b)) in clean.iter().zip(chaos).enumerate() {
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits(), a.z.to_bits()),
                (b.x.to_bits(), b.y.to_bits(), b.z.to_bits()),
                "node {i} ({what}): recovered run diverged from fault-free run"
            );
        }
    }

    /// A hand-built plan exercising all four fault kinds, including one PE
    /// crash.
    fn all_kinds_plan() -> FaultPlan {
        FaultPlan::from_events(vec![
            FaultEvent {
                step: 0,
                pe: 0,
                kind: FaultKind::Straggle { delay_us: 200 },
            },
            FaultEvent {
                step: 1,
                pe: 1,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                step: 1,
                pe: 2,
                kind: FaultKind::Corrupt {
                    salt: 0xDEAD_BEEF_CAFE,
                },
            },
            FaultEvent {
                step: 3,
                pe: 3,
                kind: FaultKind::Corrupt {
                    salt: 0x1234_5678_9ABC,
                },
            },
            FaultEvent {
                step: 2,
                pe: 3,
                kind: FaultKind::Crash,
            },
        ])
    }

    #[test]
    fn empty_plan_chaos_path_is_bitwise_invariant() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 23);
        let steps = 3;

        let mut clean = BspExecutor::new(&sys, 4);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut armed = BspExecutor::new(&sys, 4);
        armed.enable_faults(FaultPlan::none(), RecoveryPolicy::Restart, 4);
        let mut y_armed = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            armed.step_into(&x, &mut y_armed);
        }

        assert_bitwise_equal(&y_clean, &y_armed, "empty plan");
        let report = armed.report();
        assert_eq!(report.f_max(), analysis.f_max());
        assert_eq!(report.c_max(), analysis.c_max());
        assert_eq!(report.b_max(), analysis.b_max());
        let fr = report.fault.expect("armed executor reports faults");
        assert!(fr.balanced());
        assert_eq!(fr.injected.total(), 0);
        assert_eq!(fr.retries + fr.refetches + fr.restores, 0);
        assert_eq!(fr.checkpoints, 1, "one checkpoint at step 0");
    }

    #[test]
    fn chaos_run_recovers_bitwise_equal_with_restart() {
        let (mesh, partition, sys) = setup(6);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 29);
        let steps = 5;

        let mut clean = BspExecutor::new(&sys, 4);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::new(&sys, 4);
        chaos.enable_faults(all_kinds_plan(), RecoveryPolicy::Restart, 2);
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "all kinds, restart");
        let report = chaos.report();
        assert_eq!(report.steps, steps as u64);
        // Even with a crash + restore in the middle, the measured
        // characterization stays exact.
        assert_eq!(report.f_max(), analysis.f_max(), "F under chaos");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max under chaos");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max under chaos");
        let fr = report.fault.expect("fault report present");
        assert!(fr.balanced(), "unbalanced ledger: {fr}");
        assert_eq!(fr.injected.straggle, 1);
        assert_eq!(fr.injected.drop, 1);
        assert_eq!(fr.injected.corrupt, 2);
        assert_eq!(fr.injected.crash, 1);
        assert!(fr.retries >= 1, "drop recovery retried");
        assert!(fr.refetches >= 2, "corruption recovery re-fetched");
        assert_eq!(fr.restores, 1, "one checkpoint restore");
        assert_eq!(fr.respawned_workers, 1, "one worker replaced");
        assert_eq!(fr.replayed_steps, 0, "crash at a checkpoint step");
        assert_eq!(fr.degraded_shards, 0);
    }

    #[test]
    fn crash_mid_interval_replays_lost_steps() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 31);
        let steps = 4;
        let plan = FaultPlan::from_events(vec![FaultEvent {
            step: 2,
            pe: 1,
            kind: FaultKind::Crash,
        }]);

        let mut clean = BspExecutor::new(&sys, 2);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::new(&sys, 2);
        // Checkpoint interval 3: the crash at step 2 rolls back to the
        // step-0 snapshot and replays steps 0 and 1.
        chaos.enable_faults(plan, RecoveryPolicy::Restart, 3);
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "mid-interval crash");
        let report = chaos.report();
        assert_eq!(report.f_max(), analysis.f_max());
        assert_eq!(report.c_max(), analysis.c_max());
        let fr = report.fault.unwrap();
        assert!(fr.balanced(), "unbalanced ledger: {fr}");
        assert_eq!(fr.replayed_steps, 2, "steps 0 and 1 replayed");
        assert_eq!(fr.restores, 1);
        // Per-PE counters must not double-count the replays.
        for (q, (c, predicted)) in report.pe.iter().zip(analysis.per_pe()).enumerate() {
            assert_eq!(c.flops / steps as u64, predicted.flops, "PE {q} flops");
            assert_eq!(c.words() / steps as u64, predicted.words, "PE {q} words");
        }
    }

    #[test]
    fn degrade_policy_heals_crashes_inline() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 37);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            step: 1,
            pe: 2,
            kind: FaultKind::Crash,
        }]);

        let mut clean = BspExecutor::new(&sys, 2);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..3 {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::new(&sys, 2);
        chaos.enable_faults(plan, RecoveryPolicy::Degrade, 4);
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..3 {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "degrade");
        let fr = chaos.fault_report().unwrap();
        assert!(fr.balanced(), "unbalanced ledger: {fr}");
        assert_eq!(fr.injected.crash, 1);
        assert!(fr.degraded_shards >= 1, "shard re-executed inline");
        assert_eq!(fr.restores, 0, "degrade never restores");
        assert_eq!(fr.respawned_workers, 0, "degrade never respawns");
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn failfast_policy_propagates_the_crash() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 41);
        let plan = FaultPlan::from_events(vec![FaultEvent {
            step: 0,
            pe: 0,
            kind: FaultKind::Crash,
        }]);
        let mut chaos = BspExecutor::new(&sys, 2);
        chaos.enable_faults(plan, RecoveryPolicy::FailFast, 4);
        let _ = chaos.step(&x);
    }

    #[test]
    fn checkpoint_restart_round_trip_under_rcm() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 43);
        let steps = 4;
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                step: 1,
                pe: 0,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                step: 2,
                pe: 2,
                kind: FaultKind::Crash,
            },
        ]);

        let mut clean = BspExecutor::with_rcm(&sys, 3);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::with_rcm(&sys, 3);
        chaos.enable_faults(plan, RecoveryPolicy::Restart, 2);
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "rcm + restart");
        let report = chaos.report();
        assert_eq!(report.f_max(), analysis.f_max(), "F under RCM chaos");
        assert_eq!(report.c_max(), analysis.c_max(), "C_max under RCM chaos");
        assert_eq!(report.b_max(), analysis.b_max(), "B_max under RCM chaos");
        let fr = report.fault.unwrap();
        assert!(fr.balanced(), "unbalanced ledger: {fr}");
        assert_eq!(fr.restores, 1);
    }

    #[test]
    fn generated_plan_runs_to_completion_balanced() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 47);
        let steps = 8;
        let plan = FaultPlan::generate(99, steps, 6, &FaultRates::uniform(0.3));
        assert!(!plan.is_empty(), "rates high enough to schedule events");

        let mut clean = BspExecutor::new(&sys, 4);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::new(&sys, 4);
        chaos.enable_faults(plan, RecoveryPolicy::Restart, 2);
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "generated plan");
        let fr = chaos.fault_report().unwrap();
        assert!(fr.balanced(), "unbalanced ledger: {fr}");
        assert!(fr.injected.total() > 0, "something actually fired");
    }

    #[test]
    #[should_panic(expected = "checkpoint interval")]
    fn zero_checkpoint_interval_is_rejected() {
        let (_, _, sys) = setup(2);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.enable_faults(FaultPlan::none(), RecoveryPolicy::Restart, 0);
    }

    // --- Telemetry layer ---

    #[test]
    fn traced_run_is_bitwise_equal_and_records_every_phase() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 53);
        let steps = 3;

        let mut plain = BspExecutor::new(&sys, 3);
        let mut y_plain = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            plain.step_into(&x, &mut y_plain);
        }
        assert!(plain.telemetry().is_none());

        let mut traced = BspExecutor::new(&sys, 3);
        // Drift floor raised past CI scheduler noise: a preempted worker
        // mid-exchange is indistinguishable from real drift, and this test
        // asserts wiring, not the monitor's sensitivity (unit-tested in
        // quake-core over synthetic times).
        traced.enable_telemetry(TelemetryConfig {
            drift: Some(quake_core::telemetry::DriftConfig {
                min_time_s: 1.0,
                ..Default::default()
            }),
            ..TelemetryConfig::default()
        });
        let mut y_traced = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            traced.step_into(&x, &mut y_traced);
        }

        assert_bitwise_equal(&y_plain, &y_traced, "traced vs untraced");
        let t = traced.telemetry().expect("telemetry armed");
        assert_eq!(t.steps, steps as u64);
        // Clean-path phases all have spans and wall time.
        for phase in [
            PhaseId::Assemble,
            PhaseId::Compute,
            PhaseId::Exchange,
            PhaseId::Fold,
        ] {
            assert!(
                t.spans.iter().any(|s| s.phase == phase),
                "no {} span recorded",
                phase.name()
            );
            assert!(t.phase_wall_ns(phase) > 0, "no {} wall", phase.name());
        }
        // 4 PEs × 3 steps of compute samples; every inbound block sampled.
        assert_eq!(t.compute_ns.count(), 4 * steps as u64);
        assert_eq!(t.block_latency_ns.count(), t.block_words.count());
        assert!(t.block_latency_ns.count() > 0, "sf10/4 communicates");
        let summary = t.block_latency_ns.summary();
        assert!(summary.p50 <= summary.p90 && summary.p99 <= summary.max);
        // A clean run never trips the drift monitor.
        let drift = t.drift.as_ref().expect("drift armed by default");
        assert_eq!(drift.steps_observed(), steps as u64);
        assert_eq!(
            drift.flagged_total(),
            0,
            "clean run flagged drift (worst: {:?})",
            drift.worst()
        );
        assert!(t.instants().is_empty(), "clean run has no fault instants");
    }

    #[test]
    fn telemetry_drift_loads_match_counter_convention() {
        let (mesh, partition, sys) = setup(4);
        let analysis = CommAnalysis::new(&mesh, &partition);
        let x = random_x(mesh.node_count(), 59);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.enable_telemetry(TelemetryConfig::default());
        exec.step(&x);
        let report = exec.report();
        // The loads armed into the drift monitor use the sent+received
        // convention, so observed per-step counters must agree with them
        // (and with the characterization).
        assert_eq!(report.c_max(), analysis.c_max());
        let t = exec.telemetry().unwrap();
        let words_recorded: u64 = t.block_words.sum() as u64;
        let words_counted: u64 = report.pe.iter().map(|c| c.words_received).sum();
        assert_eq!(words_recorded, words_counted, "histogram covers all blocks");
    }

    #[test]
    fn chaos_run_with_telemetry_records_faults_and_recovery() {
        let (mesh, _, sys) = setup(6);
        let x = random_x(mesh.node_count(), 61);
        let steps = 5;

        let mut clean = BspExecutor::new(&sys, 4);
        let mut y_clean = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            clean.step_into(&x, &mut y_clean);
        }

        let mut chaos = BspExecutor::new(&sys, 4);
        chaos.enable_faults(all_kinds_plan(), RecoveryPolicy::Restart, 2);
        chaos.enable_telemetry(TelemetryConfig::default());
        let mut y_chaos = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..steps {
            chaos.step_into(&x, &mut y_chaos);
        }

        assert_bitwise_equal(&y_clean, &y_chaos, "chaos + telemetry");
        let t = chaos.telemetry().expect("telemetry armed");
        assert_eq!(t.steps, steps as u64);
        // The chaos path stages and verifies every block, restores once, and
        // every injected fault leaves an instant in the trace.
        for phase in [PhaseId::Stage, PhaseId::Verify, PhaseId::Recover] {
            assert!(
                t.spans.iter().any(|s| s.phase == phase),
                "no {} span recorded",
                phase.name()
            );
        }
        let names: Vec<&str> = t.instants().iter().map(|i| i.name).collect();
        for expected in [
            "fault:straggle",
            "fault:drop",
            "fault:corrupt",
            "fault:crash",
            "recover:restore",
        ] {
            assert!(names.contains(&expected), "missing instant {expected}");
        }
        assert!(t.retry_ns.count() >= 1, "drop backoff was recorded");
        assert!(t.block_latency_ns.count() > 0);
    }

    #[test]
    fn telemetry_span_ring_respects_configured_capacity() {
        let (mesh, _, sys) = setup(4);
        let x = random_x(mesh.node_count(), 67);
        let mut exec = BspExecutor::new(&sys, 2);
        exec.enable_telemetry(TelemetryConfig {
            span_capacity: 8,
            instant_capacity: 4,
            drift: None,
        });
        let mut y = vec![Vec3::ZERO; mesh.node_count()];
        for _ in 0..5 {
            exec.step_into(&x, &mut y);
        }
        let t = exec.telemetry().unwrap();
        assert_eq!(t.spans.capacity(), 8);
        assert_eq!(t.spans.len(), 8);
        assert!(t.spans.dropped() > 0, "ring wrapped");
        assert!(t.drift.is_none());
    }
}
