//! Strong-scaling projection: what a full Quake run (6000 time steps, 60 s
//! of simulated ground motion) costs on a given machine, as a function of
//! the PE count — from the analytic model and from the discrete-event
//! simulator.

use crate::characterize::AnalyzedInstance;
use quake_core::machine::{BlockRegime, Network, Processor};
use quake_core::model::eq2::comm_time;
use quake_netsim::simulate::{simulate_smvp, SimOptions};

/// The number of explicit time steps in one Quake run (paper §2.2).
pub const QUAKE_TIME_STEPS: u64 = 6_000;

/// One row of a strong-scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// PE count.
    pub parts: usize,
    /// Computation phase per SMVP (seconds).
    pub t_comp: f64,
    /// Communication phase per SMVP from Equation (2) (seconds).
    pub t_comm_model: f64,
    /// Communication phase per SMVP from the event-driven simulator.
    pub t_comm_sim: f64,
    /// Efficiency from the simulator's SMVP time.
    pub efficiency: f64,
    /// Projected wall-clock for a full 6000-step run (simulator timing).
    pub run_seconds: f64,
}

impl ScalingRow {
    /// Speedup relative to another row (usually the smallest PE count).
    pub fn speedup_over(&self, base: &ScalingRow) -> f64 {
        base.run_seconds / self.run_seconds
    }
}

/// Projects a strong-scaling study from analyzed instances of the same mesh
/// at increasing PE counts.
pub fn scaling_study(
    instances: &[AnalyzedInstance],
    processor: &Processor,
    network: &Network,
    regime: BlockRegime,
) -> Vec<ScalingRow> {
    instances
        .iter()
        .map(|a| {
            let options = SimOptions {
                block_words: match regime {
                    BlockRegime::Maximal => None,
                    BlockRegime::FixedWords(w) => Some(w),
                },
                ..SimOptions::default()
            };
            let timing = simulate_smvp(&a.workload(), processor, network, options);
            let t_comm_model = comm_time(&a.instance, network, regime);
            ScalingRow {
                parts: a.instance.subdomains,
                t_comp: timing.t_comp,
                t_comm_model,
                t_comm_sim: timing.t_comm,
                efficiency: timing.efficiency(),
                run_seconds: timing.t_smvp() * QUAKE_TIME_STEPS as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{AppConfig, QuakeApp};
    use quake_partition::geometric::RecursiveBisection;

    fn study(network: Network) -> Vec<ScalingRow> {
        let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0)).expect("mesh");
        let instances = crate::characterize::figure7_table(
            "sf10",
            &app.mesh,
            &RecursiveBisection::inertial(),
            &[2, 4, 8, 16],
        );
        scaling_study(
            &instances,
            &Processor::hypothetical_200mflops(),
            &network,
            BlockRegime::Maximal,
        )
    }

    #[test]
    fn computation_shrinks_with_more_pes() {
        let rows = study(Network {
            name: "fast",
            t_l: 1e-7,
            t_w: 1e-9,
        });
        for w in rows.windows(2) {
            assert!(
                w[1].t_comp < w[0].t_comp,
                "t_comp must fall with p: {:?}",
                rows.iter().map(|r| r.t_comp).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn fast_network_scales_slow_network_saturates() {
        let fast = study(Network {
            name: "fast",
            t_l: 1e-7,
            t_w: 1e-9,
        });
        let slow = study(Network {
            name: "slow",
            t_l: 1e-3,
            t_w: 1e-6,
        });
        let fast_speedup = fast.last().unwrap().speedup_over(&fast[0]);
        let slow_speedup = slow.last().unwrap().speedup_over(&slow[0]);
        assert!(
            fast_speedup > 2.0 * slow_speedup,
            "fast {fast_speedup} vs slow {slow_speedup}"
        );
        // A millisecond-latency network cannot hold efficiency.
        assert!(slow.last().unwrap().efficiency < 0.5);
    }

    #[test]
    fn run_projection_is_6000_smvps() {
        let rows = study(Network {
            name: "fast",
            t_l: 1e-7,
            t_w: 1e-9,
        });
        for r in &rows {
            let per_smvp = r.t_comp + r.t_comm_sim;
            assert!((r.run_seconds - per_smvp * 6000.0).abs() < 1e-9 * r.run_seconds);
        }
    }

    #[test]
    fn model_and_sim_comm_agree_in_order_of_magnitude() {
        let rows = study(Network::cray_t3e());
        for r in &rows {
            let ratio = r.t_comm_model / r.t_comm_sim;
            assert!(
                (0.4..3.0).contains(&ratio),
                "p={}: model {} vs sim {}",
                r.parts,
                r.t_comm_model,
                r.t_comm_sim
            );
        }
    }
}
