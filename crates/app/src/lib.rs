//! The Quake application family, end to end: synthetic meshes, partitioning,
//! characterization, the distributed SMVP, and report formatting.
//!
//! This crate glues the substrates together the way the original Archimedes
//! tool chain did for the paper's applications:
//!
//! * [`family`] — the synthetic sfN application family (period-driven mesh
//!   generation over the San-Fernando-like basin);
//! * [`characterize`] — partitioned-mesh analysis producing the paper's
//!   Figure 7 quantities, EXFLOW-style aggregates, and netsim workloads;
//! * [`distributed`] — the executable distributed SMVP of §2.3 (local
//!   products + exchange-and-sum), numerically identical to the sequential
//!   product;
//! * [`executor`] — the instrumented bulk-synchronous executor running
//!   those phases on a persistent worker pool while measuring per-PE
//!   flops, traffic, and phase/barrier times;
//! * [`report`] — plain-text tables for the experiment binaries.
//!
//! # Examples
//!
//! ```no_run
//! use quake_app::characterize::AnalyzedInstance;
//! use quake_app::family::{AppConfig, QuakeApp};
//! use quake_partition::geometric::RecursiveBisection;
//!
//! let app = QuakeApp::generate(AppConfig::new("sf10", 10.0, 8.0))?;
//! let analyzed = AnalyzedInstance::characterize(
//!     "sf10", &app.mesh, &RecursiveBisection::inertial(), 8).unwrap();
//! println!("{}", analyzed.instance);
//! # Ok::<(), quake_mesh::generator::GenerateError>(())
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod characterize;
pub mod distributed;
pub mod executor;
pub mod family;
pub mod report;
pub mod scaling;
pub mod transport;

pub use characterize::{figure7_table, AnalyzedInstance};
pub use distributed::{DistributedSystem, LocalSubdomain};
pub use executor::{BspExecutor, ExecutionReport, KernelKind, PeCounters, PhaseWalls};
pub use family::{standard_family, AppConfig, QuakeApp};
pub use scaling::{scaling_study, ScalingRow, QUAKE_TIME_STEPS};
