//! Plain-text table formatting for the experiment binaries.

use quake_core::telemetry::{HistSummary, PhaseId, Telemetry};
use std::fmt::Write as _;

/// A fixed-width text table with right-aligned numeric columns, in the
/// style of the paper's figures.
///
/// # Examples
///
/// ```
/// use quake_app::report::Table;
/// let mut t = Table::new(vec!["app", "nodes"]);
/// t.row(vec!["sf10".into(), "7294".into()]);
/// let text = t.render();
/// assert!(text.contains("sf10"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, and rows with every column
    /// padded to its widest cell. The first column is left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                if c == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[c]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[c]);
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let sep: Vec<String> = (0..cols).map(|c| "-".repeat(widths[c])).collect();
        emit(&sep, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a bandwidth in MB/s with sensible precision.
pub fn fmt_mb_per_s(bytes_per_sec: f64) -> String {
    let mb = bytes_per_sec / 1e6;
    if mb >= 100.0 {
        format!("{mb:.0}")
    } else if mb >= 1.0 {
        format!("{mb:.1}")
    } else {
        format!("{mb:.3}")
    }
}

/// Formats a duration in engineering units (ns/us/ms/s) with three
/// significant figures. Unit thresholds sit at the rounding boundary
/// (999.5 of the smaller unit), so 999.7 ns renders as "1.00 us" rather
/// than the "1000.0 ns" the naive `< 1e-6` cut produced.
pub fn fmt_seconds(s: f64) -> String {
    if s == 0.0 {
        return "0".to_string();
    }
    let (v, unit) = if s < 999.5e-9 {
        (s * 1e9, "ns")
    } else if s < 999.5e-6 {
        (s * 1e6, "us")
    } else if s < 0.9995 {
        (s * 1e3, "ms")
    } else {
        (s, "s")
    };
    let digits = if v < 9.995 {
        2
    } else if v < 99.95 {
        1
    } else {
        0
    };
    format!("{v:.digits$} {unit}")
}

/// Formats a count exactly below 10 000 and with a k/M/G suffix (three
/// significant figures) above.
pub fn fmt_count(n: u64) -> String {
    if n < 10_000 {
        return n.to_string();
    }
    let v = n as f64;
    let (v, suffix) = if v < 999.5e3 {
        (v / 1e3, "k")
    } else if v < 999.5e6 {
        (v / 1e6, "M")
    } else {
        (v / 1e9, "G")
    };
    let digits = if v < 9.995 {
        2
    } else if v < 99.95 {
        1
    } else {
        0
    };
    format!("{v:.digits$}{suffix}")
}

/// Renders the telemetry report: a header line, per-phase wall times, the
/// channel percentile table, and the drift-monitor verdict.
pub fn telemetry_summary(t: &Telemetry) -> String {
    let ns = |v: u64| fmt_seconds(v as f64 * 1e-9);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "telemetry: {} steps, {} spans retained ({} dropped), {} fault instants",
        t.steps,
        fmt_count(t.spans.len() as u64),
        fmt_count(t.spans.dropped()),
        fmt_count(t.instants().len() as u64 + t.instants_dropped()),
    );
    let walls: Vec<String> = PhaseId::ALL
        .iter()
        .filter(|&&p| t.phase_wall_ns(p) > 0)
        .map(|&p| format!("{} {}", p.name(), ns(t.phase_wall_ns(p))))
        .collect();
    if !walls.is_empty() {
        let _ = writeln!(out, "phase walls: {}", walls.join(", "));
    }
    let mut table = Table::new(vec!["channel", "count", "p50", "p90", "p99", "max"]);
    let channels: [(&str, HistSummary, bool); 4] = [
        ("block latency", t.block_latency_ns.summary(), true),
        ("block size (words)", t.block_words.summary(), false),
        ("PE compute", t.compute_ns.summary(), true),
        ("retry delay", t.retry_ns.summary(), true),
    ];
    for (name, s, is_time) in channels {
        let cell = |v: u64| if is_time { ns(v) } else { v.to_string() };
        table.row(vec![
            name.to_string(),
            fmt_count(s.count),
            cell(s.p50),
            cell(s.p90),
            cell(s.p99),
            cell(s.max),
        ]);
    }
    out.push_str(&table.render());
    match &t.drift {
        None => {
            let _ = writeln!(out, "model drift: monitor off");
        }
        Some(d) => {
            let _ = write!(
                out,
                "model drift: {}/{} observed steps flagged (threshold {:.2})",
                d.flagged_total(),
                d.steps_observed(),
                d.threshold(),
            );
            match d.worst() {
                Some(w) => {
                    let _ = writeln!(
                        out,
                        "; worst score {:.2} at step {} (measured {}, Eq. (2) predicted {})",
                        w.score,
                        w.step,
                        fmt_seconds(w.measured),
                        fmt_seconds(w.predicted),
                    );
                }
                None => out.push('\n'),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_and_aligns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("----"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bandwidth_formats() {
        assert_eq!(fmt_mb_per_s(300e6), "300");
        assert_eq!(fmt_mb_per_s(12.34e6), "12.3");
        assert_eq!(fmt_mb_per_s(0.5e6), "0.500");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert_eq!(fmt_seconds(7e-9), "7.00 ns");
        assert_eq!(fmt_seconds(22e-6), "22.0 us");
        assert_eq!(fmt_seconds(3.5e-3), "3.50 ms");
        assert_eq!(fmt_seconds(2.0), "2.00 s");
    }

    #[test]
    fn duration_unit_boundaries_round_up_cleanly() {
        // The old `< 1e-6` cut rendered these as "1000.0 ns" / "1000.00 us".
        assert_eq!(fmt_seconds(999.7e-9), "1.00 us");
        assert_eq!(fmt_seconds(999.7e-6), "1.00 ms");
        assert_eq!(fmt_seconds(0.9996), "1.00 s");
        // Just below the boundary stays in the smaller unit.
        assert_eq!(fmt_seconds(999.4e-9), "999 ns");
        assert_eq!(fmt_seconds(150e-9), "150 ns");
    }

    #[test]
    fn count_formats() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(9_999), "9999");
        assert_eq!(fmt_count(10_000), "10.0k");
        assert_eq!(fmt_count(123_456), "123k");
        assert_eq!(fmt_count(1_234_567), "1.23M");
        assert_eq!(fmt_count(9_870_000_000), "9.87G");
    }

    #[test]
    fn telemetry_summary_renders_channels_walls_and_drift() {
        use quake_core::telemetry::{Span, Telemetry, TelemetryConfig};
        let mut t = Telemetry::new(2, vec![(12, 2), (10, 2)], TelemetryConfig::default());
        t.steps = 3;
        t.span(Span {
            phase: PhaseId::Compute,
            pe: 0,
            step: 0,
            start_ns: 0,
            dur_ns: 1_500,
        });
        t.add_phase_wall(PhaseId::Compute, 1_500);
        t.block_latency_ns.record(2_000);
        t.block_words.record(12);
        t.compute_ns.record(1_500);
        let text = telemetry_summary(&t);
        assert!(text.contains("telemetry: 3 steps"));
        assert!(text.contains("phase walls: compute 1.50 us"));
        for channel in [
            "block latency",
            "block size (words)",
            "PE compute",
            "retry delay",
        ] {
            assert!(text.contains(channel), "summary must list '{channel}'");
        }
        for header in ["p50", "p90", "p99", "max"] {
            assert!(
                text.contains(header),
                "summary must have a '{header}' column"
            );
        }
        assert!(text.contains("model drift: 0/0 observed steps flagged"));

        let off = Telemetry::new(
            1,
            vec![(0, 0)],
            TelemetryConfig {
                drift: None,
                ..TelemetryConfig::default()
            },
        );
        assert!(telemetry_summary(&off).contains("model drift: monitor off"));
    }
}
