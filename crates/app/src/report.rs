//! Plain-text table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A fixed-width text table with right-aligned numeric columns, in the
/// style of the paper's figures.
///
/// # Examples
///
/// ```
/// use quake_app::report::Table;
/// let mut t = Table::new(vec!["app", "nodes"]);
/// t.row(vec!["sf10".into(), "7294".into()]);
/// let text = t.render();
/// assert!(text.contains("sf10"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, and rows with every column
    /// padded to its widest cell. The first column is left-aligned, the
    /// rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                if c == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[c]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[c]);
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let sep: Vec<String> = (0..cols).map(|c| "-".repeat(widths[c])).collect();
        emit(&sep, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a bandwidth in MB/s with sensible precision.
pub fn fmt_mb_per_s(bytes_per_sec: f64) -> String {
    let mb = bytes_per_sec / 1e6;
    if mb >= 100.0 {
        format!("{mb:.0}")
    } else if mb >= 1.0 {
        format!("{mb:.1}")
    } else {
        format!("{mb:.3}")
    }
}

/// Formats a duration in engineering units (ns/µs/ms/s).
pub fn fmt_seconds(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_pads_and_aligns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("----"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bandwidth_formats() {
        assert_eq!(fmt_mb_per_s(300e6), "300");
        assert_eq!(fmt_mb_per_s(12.34e6), "12.3");
        assert_eq!(fmt_mb_per_s(0.5e6), "0.500");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_seconds(0.0), "0");
        assert_eq!(fmt_seconds(7e-9), "7.0 ns");
        assert_eq!(fmt_seconds(22e-6), "22.00 us");
        assert_eq!(fmt_seconds(3.5e-3), "3.50 ms");
        assert_eq!(fmt_seconds(2.0), "2.00 s");
    }
}
