//! Discrete-event machine simulator for the two-phase BSP SMVP.
//!
//! The paper has no machine to hand us, so this crate *is* the machine: `p`
//! processing elements, each with a network interface that moves blocks
//! between network and memory at `T_l + l·T_w` per block, serialized per PE
//! across sends and receives, connected by an interconnect of infinite
//! capacity and constant latency (the paper's stated assumptions, §3.3).
//! Simulating the communication phase of real workloads validates Equations
//! (1)/(2) and the β bound end-to-end.
//!
//! # Examples
//!
//! ```
//! use quake_core::machine::{Network, Processor};
//! use quake_netsim::simulate::{simulate_smvp, SimOptions};
//! use quake_netsim::workload::Workload;
//!
//! let w = Workload::ring(8, 1_000_000, 500);
//! let timing = simulate_smvp(
//!     &w,
//!     &Processor::hypothetical_200mflops(),
//!     &Network::cray_t3e(),
//!     SimOptions::default(),
//! );
//! assert!(timing.efficiency() > 0.0 && timing.efficiency() <= 1.0);
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod fault;
pub mod simulate;
pub mod sweep;
pub mod validate;
pub mod workload;

pub use fault::{half_bandwidth_shift, render_straggler_surface, straggler_surface, StragglerCell};
pub use simulate::{
    simulate_comm_phase, simulate_run, simulate_smvp, simulate_two_level, SimOptions, SmvpTiming,
};
pub use sweep::{efficiency_surface, log_space, render_surface, SurfaceCell};
pub use validate::{validate, ValidationRow};
pub use workload::{Workload, WorkloadError};
