//! Design-space sweeps: achieved efficiency over a (block latency, burst
//! bandwidth) grid, by direct simulation.
//!
//! Where Figure 10 draws iso-efficiency lines from the analytic model, this
//! sweep produces the same surface from the event-driven machine — each
//! grid cell is one simulated communication phase.

use crate::simulate::{simulate_smvp, SimOptions};
use crate::workload::Workload;
use quake_core::machine::{Network, Processor};

/// One cell of the efficiency surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceCell {
    /// Block latency `T_l` (seconds).
    pub t_l: f64,
    /// Burst bandwidth `T_w⁻¹` (bytes/second).
    pub burst_bytes: f64,
    /// Simulated efficiency.
    pub efficiency: f64,
}

/// Simulates the SMVP over a log-spaced grid of latencies × burst
/// bandwidths and returns the efficiency cells, row-major by latency.
///
/// # Panics
///
/// Panics if a grid dimension is zero or a bound is non-positive.
pub fn efficiency_surface(
    workload: &Workload,
    processor: &Processor,
    latencies: &[f64],
    burst_bandwidths_bytes: &[f64],
    options: SimOptions,
) -> Vec<SurfaceCell> {
    assert!(
        !latencies.is_empty() && !burst_bandwidths_bytes.is_empty(),
        "empty grid"
    );
    let mut cells = Vec::with_capacity(latencies.len() * burst_bandwidths_bytes.len());
    for &t_l in latencies {
        assert!(t_l >= 0.0, "negative latency");
        for &bw in burst_bandwidths_bytes {
            assert!(bw > 0.0, "burst bandwidth must be positive");
            let network = Network {
                name: "sweep",
                t_l,
                t_w: 8.0 / bw,
            };
            let timing = simulate_smvp(workload, processor, &network, options);
            cells.push(SurfaceCell {
                t_l,
                burst_bytes: bw,
                efficiency: timing.efficiency(),
            });
        }
    }
    cells
}

/// Log-spaced values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `n >= 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    assert!(n >= 2, "need at least two samples");
    let step = (hi / lo).ln() / (n - 1) as f64;
    (0..n).map(|i| lo * (step * i as f64).exp()).collect()
}

/// Renders the surface as an ASCII grid (rows = latencies, columns = burst
/// bandwidths) with one digit per cell: `9` = E ≥ 0.9, `8` = E ≥ 0.8, …
pub fn render_surface(cells: &[SurfaceCell], latencies: &[f64], bursts: &[f64]) -> String {
    let mut out = String::new();
    for (i, &t_l) in latencies.iter().enumerate() {
        out.push_str(&format!("{:>9.2e}s | ", t_l));
        for (j, _) in bursts.iter().enumerate() {
            let e = cells[i * bursts.len() + j].efficiency;
            let digit = (e * 10.0).floor().clamp(0.0, 9.0) as u8;
            out.push((b'0' + digit) as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_endpoints_and_monotonicity() {
        let v = log_space(1e-7, 1e-4, 7);
        assert_eq!(v.len(), 7);
        assert!((v[0] - 1e-7).abs() < 1e-18);
        assert!((v[6] - 1e-4).abs() < 1e-10);
        assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn surface_is_monotone_in_both_axes() {
        let w = Workload::ring(8, 1_000_000, 500);
        let pe = Processor::hypothetical_200mflops();
        let lats = log_space(1e-7, 1e-3, 5);
        let bws = log_space(10e6, 10e9, 5);
        let cells = efficiency_surface(&w, &pe, &lats, &bws, SimOptions::default());
        assert_eq!(cells.len(), 25);
        // More latency → less efficiency (fixed burst).
        for j in 0..5 {
            for i in 1..5 {
                let hi = cells[(i - 1) * 5 + j].efficiency;
                let lo = cells[i * 5 + j].efficiency;
                assert!(lo <= hi + 1e-12, "latency monotonicity violated");
            }
        }
        // More burst bandwidth → more efficiency (fixed latency).
        for i in 0..5 {
            for j in 1..5 {
                let lo = cells[i * 5 + j - 1].efficiency;
                let hi = cells[i * 5 + j].efficiency;
                assert!(hi >= lo - 1e-12, "bandwidth monotonicity violated");
            }
        }
    }

    #[test]
    fn render_shows_gradient() {
        let w = Workload::ring(6, 1_000_000, 500);
        let pe = Processor::hypothetical_200mflops();
        let lats = log_space(1e-7, 1e-2, 4);
        let bws = log_space(1e6, 1e10, 6);
        let cells = efficiency_surface(&w, &pe, &lats, &bws, SimOptions::default());
        let text = render_surface(&cells, &lats, &bws);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('9'), "some corner must be efficient:\n{text}");
        assert!(
            text.contains('0') || text.contains('1'),
            "some corner must be bound"
        );
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let w = Workload::ring(4, 1, 1);
        let _ = efficiency_surface(
            &w,
            &Processor::hypothetical_100mflops(),
            &[],
            &[1e9],
            SimOptions::default(),
        );
    }
}
