//! Discrete-event simulation of the two-phase BSP SMVP.
//!
//! The machine model matches paper §3 and Figure 5: each PE owns a network
//! interface (NI) that moves blocks between the network and local memory at
//! a cost of `T_l + l·T_w` per block, serialized per PE across sends *and*
//! receives (which is why the paper's `B_i` counts both). The interconnect
//! itself has infinite capacity and a constant latency.
//!
//! Phases are barrier-separated: the communication phase starts when the
//! slowest PE finishes its local SMVP, and the SMVP completes when the last
//! NI drains.

use crate::workload::Workload;
use quake_core::machine::{Network, Processor};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Timing result of one simulated SMVP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmvpTiming {
    /// Computation-phase duration (slowest PE), seconds.
    pub t_comp: f64,
    /// Communication-phase duration (last NI drain), seconds.
    pub t_comm: f64,
}

impl SmvpTiming {
    /// Total SMVP time `T_comp + T_comm`.
    pub fn t_smvp(&self) -> f64 {
        self.t_comp + self.t_comm
    }

    /// Efficiency `E = T_comp / T_smvp` (1.0 when there is no
    /// communication).
    pub fn efficiency(&self) -> f64 {
        if self.t_comm == 0.0 {
            1.0
        } else {
            self.t_comp / self.t_smvp()
        }
    }
}

/// Options for the communication-phase simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Constant interconnect latency between NI hand-off and arrival
    /// (seconds). The paper argues PE-local costs dominate, so 0 is the
    /// default.
    pub wire_latency: f64,
    /// Rotate each PE's send order by its own index so the fleet does not
    /// convoy on PE 0 (on by default; turning it off demonstrates hotspot
    /// formation).
    pub staggered_sends: bool,
    /// Fixed transfer-unit size in words. `None` models maximal aggregation
    /// (message passing: one block per neighbor). `Some(w)` splits every
    /// message into `⌈len/w⌉` blocks of at most `w` words — the paper's
    /// fine-grained shared-memory regime, where `B_max` becomes "a property
    /// of the architecture" (§3.3) and block latency dominates (Fig. 10b).
    pub block_words: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            wire_latency: 0.0,
            staggered_sends: true,
            block_words: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A block from `from` lands at PE `to`'s NI input queue.
    Arrival { from: usize, to: usize, words: u64 },
    /// PE's NI finishes its current job.
    NiFree { pe: usize },
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("finite event times")
            .then_with(|| {
                // Deterministic tie-break on kind discriminants.
                let k = |e: &EventKind| match *e {
                    EventKind::NiFree { pe } => (0usize, pe, 0, 0),
                    EventKind::Arrival { from, to, words } => (1, to, from, words as usize),
                };
                k(&self.kind).cmp(&k(&other.kind))
            })
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct PeState {
    /// Sends not yet started, in order.
    sends: VecDeque<(usize, u64)>,
    /// Received blocks waiting for the NI.
    recv_queue: VecDeque<u64>,
    /// The NI is occupied until this time; wake-ups before it are stale.
    busy_until: f64,
}

/// Simulates the communication phase and returns its duration (seconds).
///
/// # Panics
///
/// Panics if the network parameters are negative.
pub fn simulate_comm_phase(workload: &Workload, network: &Network, options: SimOptions) -> f64 {
    assert!(
        network.t_l >= 0.0 && network.t_w >= 0.0,
        "negative network parameters"
    );
    let p = workload.parts();
    let mut pes: Vec<PeState> = (0..p)
        .map(|i| {
            let mut sends: Vec<(usize, u64)> = (0..p)
                .filter_map(|j| {
                    let w = workload.traffic(i, j);
                    (w > 0).then_some((j, w))
                })
                .flat_map(|(j, w)| {
                    // Under a fixed block regime, fragment the message.
                    match options.block_words {
                        None => vec![(j, w)],
                        Some(bs) => {
                            assert!(bs > 0, "block size must be positive");
                            let full = (w / bs) as usize;
                            let mut parts = vec![(j, bs); full];
                            if w % bs > 0 {
                                parts.push((j, w % bs));
                            }
                            parts
                        }
                    }
                })
                .collect();
            if options.staggered_sends {
                // Rotate so PE i starts with the first destination > i.
                let pivot = sends.iter().position(|&(j, _)| j > i).unwrap_or(0);
                sends.rotate_left(pivot);
            }
            PeState {
                sends: sends.into(),
                recv_queue: VecDeque::new(),
                busy_until: 0.0,
            }
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    // Kick every PE's NI at t = 0.
    for pe in 0..p {
        heap.push(Reverse(Event {
            time: 0.0,
            kind: EventKind::NiFree { pe },
        }));
    }
    let mut makespan = 0.0f64;
    while let Some(Reverse(event)) = heap.pop() {
        let t = event.time;
        match event.kind {
            EventKind::Arrival { from: _, to, words } => {
                pes[to].recv_queue.push_back(words);
                // Wake the NI; a stale wake-up is filtered by busy_until.
                heap.push(Reverse(Event {
                    time: t,
                    kind: EventKind::NiFree { pe: to },
                }));
            }
            EventKind::NiFree { pe } => {
                if t < pes[pe].busy_until {
                    continue; // stale wake-up: the NI is mid-transfer
                }
                // Start the next job: receives before sends keeps the
                // network drained; both orders satisfy the per-PE serial
                // cost model.
                let job = pes[pe]
                    .recv_queue
                    .pop_front()
                    .map(|words| (None, words))
                    .or_else(|| pes[pe].sends.pop_front().map(|(d, w)| (Some(d), w)));
                if let Some((dest, words)) = job {
                    let dt = network.block_transfer_time(words);
                    pes[pe].busy_until = t + dt;
                    makespan = makespan.max(t + dt);
                    heap.push(Reverse(Event {
                        time: t + dt,
                        kind: EventKind::NiFree { pe },
                    }));
                    if let Some(dest) = dest {
                        heap.push(Reverse(Event {
                            time: t + dt + options.wire_latency,
                            kind: EventKind::Arrival {
                                from: pe,
                                to: dest,
                                words,
                            },
                        }));
                    }
                }
            }
        }
    }
    debug_assert!(
        pes.iter()
            .all(|s| s.sends.is_empty() && s.recv_queue.is_empty()),
        "all transfers must drain"
    );
    makespan
}

/// Simulates the communication phase of a node-aware two-level exchange
/// and returns its duration (seconds).
///
/// PEs are grouped into nodes by `node_of`; intra-node boundary traffic
/// moves PE-to-PE on the `fast` local link, while all cross-node traffic
/// is gathered and crosses the `slow` link as exactly one merged message
/// per directed (node, node) pair, paid by the node's shared injection
/// port. The legs are barrier-separated — the gather completes before the
/// merged blocks are injected, matching the executor's aggregated
/// exchange — so the phase time is their sum. With one PE per node the
/// cross leg is the original workload and the intra leg is empty, so the
/// result degenerates exactly to [`simulate_comm_phase`] on `slow`.
///
/// # Panics
///
/// Panics if `node_of` does not cover every PE.
pub fn simulate_two_level(
    workload: &Workload,
    slow: &Network,
    fast: &Network,
    node_of: &[usize],
    options: SimOptions,
) -> f64 {
    let p = workload.parts();
    assert_eq!(node_of.len(), p, "node map must cover every PE");
    let nodes = node_of.iter().copied().max().map_or(1, |m| m + 1);
    // Intra-node leg: the PE-level workload restricted to same-node pairs.
    let intra_traffic: Vec<Vec<u64>> = (0..p)
        .map(|i| {
            (0..p)
                .map(|j| {
                    if node_of[i] == node_of[j] {
                        workload.traffic(i, j)
                    } else {
                        0
                    }
                })
                .collect()
        })
        .collect();
    let intra = Workload::new(vec![0; p], intra_traffic).expect("same shape as the source");
    // Cross-node leg: one injection port per node, merged traffic. The
    // diagonal is zero by construction (same-node pairs are intra).
    let mut merged = vec![vec![0u64; nodes]; nodes];
    for i in 0..p {
        for j in 0..p {
            if node_of[i] != node_of[j] {
                merged[node_of[i]][node_of[j]] += workload.traffic(i, j);
            }
        }
    }
    let cross = Workload::new(vec![0; nodes], merged).expect("zero diagonal by construction");
    simulate_comm_phase(&intra, fast, options) + simulate_comm_phase(&cross, slow, options)
}

/// Simulates one full SMVP: barrier-separated computation then
/// communication.
pub fn simulate_smvp(
    workload: &Workload,
    processor: &Processor,
    network: &Network,
    options: SimOptions,
) -> SmvpTiming {
    let t_comp = workload.f_max() as f64 * processor.t_f;
    let t_comm = simulate_comm_phase(workload, network, options);
    SmvpTiming { t_comp, t_comm }
}

/// Simulates `steps` repeated SMVPs (the Quake time loop) and returns the
/// total wall-clock estimate in seconds.
pub fn simulate_run(
    workload: &Workload,
    processor: &Processor,
    network: &Network,
    options: SimOptions,
    steps: u64,
) -> f64 {
    simulate_smvp(workload, processor, network, options).t_smvp() * steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(t_l: f64, t_w: f64) -> Network {
        Network {
            name: "test",
            t_l,
            t_w,
        }
    }

    #[test]
    fn no_traffic_is_instant() {
        let w = Workload::new(vec![100, 100], vec![vec![0, 0], vec![0, 0]]).unwrap();
        assert_eq!(
            simulate_comm_phase(&w, &net(1e-6, 1e-9), SimOptions::default()),
            0.0
        );
        let timing = simulate_smvp(
            &w,
            &Processor::hypothetical_100mflops(),
            &net(1e-6, 1e-9),
            SimOptions::default(),
        );
        assert_eq!(timing.efficiency(), 1.0);
        assert!((timing.t_comp - 100.0 * 10e-9).abs() < 1e-15);
    }

    #[test]
    fn single_exchange_costs_two_blocks_per_pe() {
        // Two PEs exchanging one block each: each NI handles its send then
        // its receive → 2·(T_l + w·T_w), with perfect overlap between PEs.
        let w = Workload::new(vec![0, 0], vec![vec![0, 100], vec![100, 0]]).unwrap();
        let t_l = 1e-6;
        let t_w = 10e-9;
        let t = simulate_comm_phase(&w, &net(t_l, t_w), SimOptions::default());
        let block = t_l + 100.0 * t_w;
        assert!(
            (t - 2.0 * block).abs() < 1e-12,
            "expected {}, got {t}",
            2.0 * block
        );
    }

    #[test]
    fn comm_time_matches_model_for_balanced_ring() {
        // A balanced ring: every PE has B_i = 4 blocks and C_i = 4w words;
        // the model T_comm = B·T_l + C·T_w should be near-exact.
        let w = Workload::ring(8, 0, 500);
        let t_l = 5e-6;
        let t_w = 50e-9;
        let sim = simulate_comm_phase(&w, &net(t_l, t_w), SimOptions::default());
        let model = w.b_max() as f64 * t_l + w.c_max() as f64 * t_w;
        let ratio = sim / model;
        assert!(
            (0.9..1.3).contains(&ratio),
            "sim {sim} vs model {model} (ratio {ratio})"
        );
    }

    #[test]
    fn makespan_bounded_below_by_busiest_pe() {
        let w = Workload::random_sparse(16, 0, 200, 4, 3);
        let t_l = 2e-6;
        let t_w = 20e-9;
        let sim = simulate_comm_phase(&w, &net(t_l, t_w), SimOptions::default());
        let lower = w
            .pe_loads()
            .iter()
            .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
            .fold(0.0, f64::max);
        assert!(
            sim >= lower * (1.0 - 1e-12),
            "sim {sim} below lower bound {lower}"
        );
    }

    #[test]
    fn wire_latency_delays_completion() {
        let w = Workload::ring(4, 0, 100);
        let base = simulate_comm_phase(&w, &net(1e-6, 10e-9), SimOptions::default());
        let slow = simulate_comm_phase(
            &w,
            &net(1e-6, 10e-9),
            SimOptions {
                wire_latency: 100e-6,
                ..SimOptions::default()
            },
        );
        // The 100 µs wire latency overlaps the first block's processing,
        // so the delay shows up minus one block time.
        assert!(slow > base + 90e-6, "base {base}, slow {slow}");
    }

    #[test]
    fn all_to_all_scales_with_p() {
        let t_l = 1e-6;
        let t_w = 1e-9;
        let small = simulate_comm_phase(
            &Workload::all_to_all(4, 0, 10),
            &net(t_l, t_w),
            SimOptions::default(),
        );
        let large = simulate_comm_phase(
            &Workload::all_to_all(16, 0, 10),
            &net(t_l, t_w),
            SimOptions::default(),
        );
        // B per PE: 2(p-1) → 6 vs 30: 5x.
        assert!(large > 4.0 * small, "small {small}, large {large}");
    }

    #[test]
    fn efficiency_falls_with_slower_network() {
        let w = Workload::ring(8, 1_000_000, 1_000);
        let pe = Processor::hypothetical_200mflops();
        let fast = simulate_smvp(&w, &pe, &net(1e-7, 1e-9), SimOptions::default());
        let slow = simulate_smvp(&w, &pe, &net(5e-3, 1e-6), SimOptions::default());
        assert!(fast.efficiency() > slow.efficiency());
        assert!(fast.efficiency() > 0.9);
        assert!(slow.efficiency() < 0.5);
    }

    #[test]
    fn run_scales_linearly_in_steps() {
        let w = Workload::ring(4, 1_000, 100);
        let pe = Processor::hypothetical_100mflops();
        let n = net(1e-6, 10e-9);
        let one = simulate_run(&w, &pe, &n, SimOptions::default(), 1);
        let many = simulate_run(&w, &pe, &n, SimOptions::default(), 6_000);
        assert!((many - 6_000.0 * one).abs() < 1e-9 * many);
    }

    #[test]
    fn staggering_never_hurts_badly() {
        // With staggering off, convoys can form; on, the ring should stay
        // near the model. Both must drain completely (the debug_assert in
        // the simulator checks this).
        let w = Workload::random_sparse(12, 0, 300, 3, 11);
        let n = net(1e-6, 5e-9);
        let on = simulate_comm_phase(&w, &n, SimOptions::default());
        let off = simulate_comm_phase(
            &w,
            &n,
            SimOptions {
                staggered_sends: false,
                ..SimOptions::default()
            },
        );
        assert!(on > 0.0 && off > 0.0);
        // Both within 3x of each other — sanity, not a strong claim.
        assert!(on < 3.0 * off && off < 3.0 * on);
    }

    #[test]
    fn fixed_blocks_fragment_messages() {
        // One 100-word exchange fragmented into 4-word blocks: 25 blocks
        // each way per PE, so latency is paid 50 times per NI.
        let w = Workload::new(vec![0, 0], vec![vec![0, 100], vec![100, 0]]).unwrap();
        let t_l = 1e-6;
        let t_w = 1e-9;
        let options = SimOptions {
            block_words: Some(4),
            ..SimOptions::default()
        };
        let t = simulate_comm_phase(&w, &net(t_l, t_w), options);
        let expect = 50.0 * (t_l + 4.0 * t_w);
        assert!((t - expect).abs() < 1e-12, "expected {expect}, got {t}");
    }

    #[test]
    fn fixed_blocks_cost_more_when_latency_dominates() {
        let w = Workload::ring(8, 0, 400);
        let latency_bound = net(5e-6, 1e-9);
        let maximal = simulate_comm_phase(&w, &latency_bound, SimOptions::default());
        let fragmented = simulate_comm_phase(
            &w,
            &latency_bound,
            SimOptions {
                block_words: Some(4),
                ..SimOptions::default()
            },
        );
        // 400-word messages become 100 blocks: ~100x the latency cost.
        assert!(
            fragmented > 20.0 * maximal,
            "maximal {maximal} vs fragmented {fragmented}"
        );
    }

    #[test]
    fn two_level_degenerates_to_flat_at_one_pe_per_node() {
        let w = Workload::random_sparse(8, 0, 300, 3, 7);
        let slow = net(10e-6, 50e-9);
        let fast = net(1e-6, 5e-9);
        let node_of: Vec<usize> = (0..8).collect();
        let flat = simulate_comm_phase(&w, &slow, SimOptions::default());
        let two = simulate_two_level(&w, &slow, &fast, &node_of, SimOptions::default());
        // The intra leg is empty and the cross leg IS the workload, so the
        // degeneracy is exact, not approximate.
        assert_eq!(two, flat);
    }

    #[test]
    fn aggregation_beats_flat_when_latency_dominates() {
        // Ring of 8 in 2 nodes of 4: flat pays 4 block latencies per PE on
        // the slow link; aggregated pays 2 per *node* plus a cheap local
        // gather, so a latency-bound network rewards merging.
        let w = Workload::ring(8, 0, 50);
        let slow = net(100e-6, 1e-9);
        let fast = net(1e-6, 1e-9);
        let node_of = [0, 0, 0, 0, 1, 1, 1, 1];
        let flat = simulate_comm_phase(&w, &slow, SimOptions::default());
        let two = simulate_two_level(&w, &slow, &fast, &node_of, SimOptions::default());
        assert!(two < flat, "aggregated {two} vs flat {flat}");
    }

    #[test]
    fn single_node_runs_entirely_on_the_local_link() {
        let w = Workload::ring(4, 0, 100);
        let slow = net(50e-6, 100e-9);
        let fast = net(1e-6, 1e-9);
        let two = simulate_two_level(&w, &slow, &fast, &[0, 0, 0, 0], SimOptions::default());
        let local = simulate_comm_phase(&w, &fast, SimOptions::default());
        assert_eq!(two, local);
    }

    #[test]
    #[should_panic(expected = "node map must cover every PE")]
    fn two_level_rejects_short_node_map() {
        let w = Workload::ring(4, 0, 10);
        simulate_two_level(
            &w,
            &net(1e-6, 1e-9),
            &net(1e-6, 1e-9),
            &[0, 0],
            SimOptions::default(),
        );
    }

    #[test]
    fn fragment_remainder_blocks() {
        // 10 words in 4-word blocks → 4+4+2: three blocks each way.
        let w = Workload::new(vec![0, 0], vec![vec![0, 10], vec![10, 0]]).unwrap();
        let t_l = 1e-6;
        let options = SimOptions {
            block_words: Some(4),
            ..SimOptions::default()
        };
        let t = simulate_comm_phase(&w, &net(t_l, 0.0), options);
        assert!((t - 6.0 * t_l).abs() < 1e-12, "got {t}");
    }
}
