//! Fault-aware sweeps: where do stragglers and degraded links move the
//! SMVP's operating point?
//!
//! [`sweep::efficiency_surface`](crate::sweep::efficiency_surface) maps the
//! healthy design space. This module asks the robustness questions the
//! executor's chaos layer raises: if some PEs compute `factor`× slower
//! (re-executed shards, throttled cores, the chaos layer's injected
//! delays), how much does the step stretch ([`straggler_surface`])? And if
//! a link drops to half its burst bandwidth — the communication-side
//! analogue of a straggler — how much efficiency is lost
//! ([`half_bandwidth_shift`])?
//!
//! Stragglers are modeled in the *workload* ([`Workload::with_stragglers`])
//! rather than the machine: a PE that must redo or slow its shard presents
//! more flops to the same barrier, which is exactly how the BSP executor's
//! Degrade policy behaves.

use crate::simulate::{simulate_smvp, SimOptions};
use crate::workload::Workload;
use quake_core::machine::{Network, Processor};

/// One cell of the straggler surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerCell {
    /// Probability that a PE is a straggler.
    pub prob: f64,
    /// Compute slowdown factor applied to straggler PEs.
    pub factor: f64,
    /// Simulated efficiency of the degraded run.
    pub efficiency: f64,
    /// Degraded `T_smvp` over fault-free `T_smvp` (≥ 1).
    pub slowdown: f64,
}

/// Simulates the SMVP over a (straggler probability × slowdown factor)
/// grid, row-major by probability. Victim PEs are drawn once per `(prob,
/// seed)` pair, so cells along a factor row degrade the *same* PEs harder —
/// the clean one-knob sweep.
///
/// # Panics
///
/// Panics if a grid dimension is empty, or via
/// [`Workload::with_stragglers`] on out-of-range knobs.
pub fn straggler_surface(
    workload: &Workload,
    processor: &Processor,
    network: &Network,
    probs: &[f64],
    factors: &[f64],
    seed: u64,
    options: SimOptions,
) -> Vec<StragglerCell> {
    assert!(!probs.is_empty() && !factors.is_empty(), "empty grid");
    let clean = simulate_smvp(workload, processor, network, options).t_smvp();
    let mut cells = Vec::with_capacity(probs.len() * factors.len());
    for &prob in probs {
        for &factor in factors {
            let degraded = workload.with_stragglers(prob, factor, seed);
            let timing = simulate_smvp(&degraded, processor, network, options);
            cells.push(StragglerCell {
                prob,
                factor,
                efficiency: timing.efficiency(),
                slowdown: timing.t_smvp() / clean,
            });
        }
    }
    cells
}

/// Efficiency lost when every link degrades to half its burst bandwidth
/// (`T_w` doubled): fault-free efficiency minus degraded efficiency, in
/// [0, 1]. The communication-side counterpart of a straggler — a cheap
/// scalar for "how close to the bandwidth cliff does this workload sit".
pub fn half_bandwidth_shift(
    workload: &Workload,
    processor: &Processor,
    network: &Network,
    options: SimOptions,
) -> f64 {
    let healthy = simulate_smvp(workload, processor, network, options).efficiency();
    let degraded_net = Network {
        name: "half-bandwidth",
        t_l: network.t_l,
        t_w: network.t_w * 2.0,
    };
    let degraded = simulate_smvp(workload, processor, &degraded_net, options).efficiency();
    healthy - degraded
}

/// Renders the straggler surface as an ASCII grid (rows = probabilities,
/// columns = factors), one digit per cell: `9` = slowdown < 1.1, `8` =
/// slowdown < 1.2, … `0` = slowdown ≥ 2.
pub fn render_straggler_surface(cells: &[StragglerCell], probs: &[f64], factors: &[f64]) -> String {
    let mut out = String::new();
    for (i, &prob) in probs.iter().enumerate() {
        out.push_str(&format!("p={prob:<5.2} | "));
        for (j, _) in factors.iter().enumerate() {
            let s = cells[i * factors.len() + j].slowdown;
            let digit = (10.0 - (s - 1.0) * 10.0).floor().clamp(0.0, 9.0) as u8;
            out.push((b'0' + digit) as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Workload, Processor, Network) {
        (
            Workload::ring(16, 1_000_000, 500),
            Processor::hypothetical_200mflops(),
            Network::cray_t3e(),
        )
    }

    #[test]
    fn surface_is_deterministic_and_anchored_at_identity() {
        let (w, pe, net) = setup();
        let probs = [0.0, 0.25, 1.0];
        let factors = [1.0, 2.0, 8.0];
        let a = straggler_surface(&w, &pe, &net, &probs, &factors, 11, SimOptions::default());
        let b = straggler_surface(&w, &pe, &net, &probs, &factors, 11, SimOptions::default());
        assert_eq!(a, b, "same seed, same surface");
        assert_eq!(a.len(), 9);
        // prob = 0 and factor = 1 rows are fault-free: slowdown exactly 1.
        for cell in a.iter().filter(|c| c.prob == 0.0 || c.factor == 1.0) {
            assert!(
                (cell.slowdown - 1.0).abs() < 1e-12,
                "identity cell slowed down: {cell:?}"
            );
        }
    }

    #[test]
    fn slowdown_grows_with_the_factor_and_bounds_it() {
        let (w, pe, net) = setup();
        let factors = [1.0, 2.0, 4.0, 8.0];
        let cells = straggler_surface(&w, &pe, &net, &[1.0], &factors, 3, SimOptions::default());
        for pair in cells.windows(2) {
            assert!(
                pair[1].slowdown >= pair[0].slowdown - 1e-12,
                "slowdown must be monotone in the factor"
            );
        }
        // With every PE a straggler, compute scales by exactly the factor,
        // so the step slowdown is sandwiched between 1 and the factor.
        for cell in &cells {
            assert!(cell.slowdown >= 1.0 - 1e-12 && cell.slowdown <= cell.factor + 1e-12);
        }
    }

    #[test]
    fn half_bandwidth_shift_is_a_sane_fraction() {
        let (w, pe, net) = setup();
        let shift = half_bandwidth_shift(&w, &pe, &net, SimOptions::default());
        assert!((0.0..=1.0).contains(&shift), "shift {shift} outside [0, 1]");
        // A bandwidth-starved machine must lose efficiency when the wire
        // halves again.
        let slow_net = Network {
            name: "slow",
            t_l: net.t_l,
            t_w: net.t_w * 1e4,
        };
        assert!(half_bandwidth_shift(&w, &pe, &slow_net, SimOptions::default()) > 0.0);
    }

    #[test]
    fn render_marks_identity_and_heavy_rows() {
        let (w, pe, net) = setup();
        let probs = [0.0, 1.0];
        let factors = [1.0, 16.0];
        let cells = straggler_surface(&w, &pe, &net, &probs, &factors, 5, SimOptions::default());
        let text = render_straggler_surface(&cells, &probs, &factors);
        assert_eq!(text.lines().count(), 2);
        let rows: Vec<&str> = text.lines().collect();
        assert!(rows[0].ends_with("99"), "fault-free row is all 9s: {text}");
        assert!(rows[1].ends_with('0'), "16x stragglers bottom out: {text}");
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let (w, pe, net) = setup();
        let _ = straggler_surface(&w, &pe, &net, &[], &[1.0], 1, SimOptions::default());
    }
}
