//! SMVP workloads: per-PE flop counts plus the inter-PE traffic matrix.
//!
//! A workload is machine-independent — it captures what the application and
//! partitioner determined (the paper's `F_i`, `C_i`, `B_i`) — and is the
//! input to the discrete-event simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Error produced by [`Workload::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The traffic matrix is not `p × p`.
    BadTrafficShape,
    /// The traffic matrix has a nonzero diagonal (self-messages).
    SelfMessage(usize),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadTrafficShape => {
                write!(f, "traffic matrix shape does not match flops length")
            }
            WorkloadError::SelfMessage(pe) => write!(f, "pe {pe} sends a message to itself"),
        }
    }
}

impl Error for WorkloadError {}

/// One SMVP's worth of work on a `p`-PE machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    flops: Vec<u64>,
    /// `traffic[i][j]`: words from PE i to PE j.
    traffic: Vec<Vec<u64>>,
}

impl Workload {
    /// Creates a workload from per-PE flops and a words traffic matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if shapes disagree or the diagonal is
    /// nonzero.
    pub fn new(flops: Vec<u64>, traffic: Vec<Vec<u64>>) -> Result<Self, WorkloadError> {
        let p = flops.len();
        if traffic.len() != p || traffic.iter().any(|row| row.len() != p) {
            return Err(WorkloadError::BadTrafficShape);
        }
        if let Some(i) = (0..p).find(|&i| traffic[i][i] != 0) {
            return Err(WorkloadError::SelfMessage(i));
        }
        Ok(Workload { flops, traffic })
    }

    /// Number of PEs.
    pub fn parts(&self) -> usize {
        self.flops.len()
    }

    /// Per-PE flop counts.
    pub fn flops(&self) -> &[u64] {
        &self.flops
    }

    /// Words from PE `i` to PE `j`.
    pub fn traffic(&self, i: usize, j: usize) -> u64 {
        self.traffic[i][j]
    }

    /// Words sent + received by PE `i` (`C_i`).
    pub fn words_of(&self, i: usize) -> u64 {
        let sent: u64 = self.traffic[i].iter().sum();
        let recv: u64 = (0..self.parts()).map(|j| self.traffic[j][i]).sum();
        sent + recv
    }

    /// Blocks sent + received by PE `i` under maximal aggregation (`B_i`).
    pub fn blocks_of(&self, i: usize) -> u64 {
        let sent = self.traffic[i].iter().filter(|&&w| w > 0).count() as u64;
        let recv = (0..self.parts())
            .filter(|&j| self.traffic[j][i] > 0)
            .count() as u64;
        sent + recv
    }

    /// Maximum flops on any PE.
    pub fn f_max(&self) -> u64 {
        self.flops.iter().copied().max().unwrap_or(0)
    }

    /// Maximum words on any PE (`C_max`).
    pub fn c_max(&self) -> u64 {
        (0..self.parts())
            .map(|i| self.words_of(i))
            .max()
            .unwrap_or(0)
    }

    /// Maximum blocks on any PE (`B_max`).
    pub fn b_max(&self) -> u64 {
        (0..self.parts())
            .map(|i| self.blocks_of(i))
            .max()
            .unwrap_or(0)
    }

    /// Per-PE `(words, blocks)` loads, for the β bound.
    pub fn pe_loads(&self) -> Vec<(u64, u64)> {
        (0..self.parts())
            .map(|i| (self.words_of(i), self.blocks_of(i)))
            .collect()
    }

    /// A symmetric ring workload: every PE exchanges `words` with each of
    /// its two ring neighbors and performs `flops` flops (a regular-grid
    /// stand-in for tests and baselines).
    ///
    /// # Panics
    ///
    /// Panics if `p < 3` (smaller rings degenerate).
    pub fn ring(p: usize, flops: u64, words: u64) -> Self {
        assert!(p >= 3, "ring needs at least 3 PEs");
        let mut traffic = vec![vec![0u64; p]; p];
        for i in 0..p {
            traffic[i][(i + 1) % p] = words;
            traffic[i][(i + p - 1) % p] = words;
        }
        Workload {
            flops: vec![flops; p],
            traffic,
        }
    }

    /// An all-to-all workload (`p·(p−1)` messages of `words` each), the
    /// FFT-like extreme the paper contrasts the SMVP against.
    pub fn all_to_all(p: usize, flops: u64, words: u64) -> Self {
        let mut traffic = vec![vec![0u64; p]; p];
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    traffic[i][j] = words;
                }
            }
        }
        Workload {
            flops: vec![flops; p],
            traffic,
        }
    }

    /// A copy of this workload with seeded straggler PEs: each PE is
    /// independently selected with probability `prob` and its flop count
    /// scaled by `factor`, modeling a degraded core (thermal throttling, a
    /// failed-over shard, or the executor's injected compute delays). The
    /// traffic matrix is untouched — stragglers slow computation, not the
    /// wire — and the same `seed` always picks the same victims, so sweeps
    /// over `factor` vary one knob at a time.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ prob ≤ 1` and `factor ≥ 1`.
    pub fn with_stragglers(&self, prob: f64, factor: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "straggler probability must be in [0, 1]"
        );
        assert!(factor >= 1.0, "slowdown factor must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let flops = self
            .flops
            .iter()
            .map(|&f| {
                if rng.gen_bool(prob) {
                    (f as f64 * factor).round() as u64
                } else {
                    f
                }
            })
            .collect();
        Workload {
            flops,
            traffic: self.traffic.clone(),
        }
    }

    /// A random sparse symmetric workload: each PE talks to ≈ `degree`
    /// partners with message sizes jittered around `words`; flops are
    /// jittered around `flops` (models partitioner imperfection).
    ///
    /// # Panics
    ///
    /// Panics if `degree >= p`.
    pub fn random_sparse(p: usize, flops: u64, words: u64, degree: usize, seed: u64) -> Self {
        assert!(degree < p, "degree must be below p");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut traffic = vec![vec![0u64; p]; p];
        for i in 0..p {
            let mut made = 0;
            while made < degree {
                let j = rng.gen_range(0..p);
                if j == i || traffic[i][j] > 0 {
                    made += 1; // saturate rather than loop forever
                    continue;
                }
                let w = (words as f64 * rng.gen_range(0.5..1.5)) as u64 + 1;
                traffic[i][j] = w;
                traffic[j][i] = w;
                made += 1;
            }
        }
        let flops = (0..p)
            .map(|_| (flops as f64 * rng.gen_range(0.9..1.1)) as u64)
            .collect();
        Workload { flops, traffic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(matches!(
            Workload::new(vec![1, 2], vec![vec![0, 1]]),
            Err(WorkloadError::BadTrafficShape)
        ));
        assert!(matches!(
            Workload::new(vec![1], vec![vec![5]]),
            Err(WorkloadError::SelfMessage(0))
        ));
        assert!(Workload::new(vec![1, 2], vec![vec![0, 3], vec![3, 0]]).is_ok());
    }

    #[test]
    fn ring_loads() {
        let w = Workload::ring(4, 1000, 10);
        assert_eq!(w.parts(), 4);
        // Each PE: sends 2×10, receives 2×10.
        assert_eq!(w.words_of(0), 40);
        assert_eq!(w.blocks_of(0), 4);
        assert_eq!(w.c_max(), 40);
        assert_eq!(w.b_max(), 4);
        assert_eq!(w.f_max(), 1000);
    }

    #[test]
    fn all_to_all_loads() {
        let w = Workload::all_to_all(4, 100, 5);
        assert_eq!(w.words_of(0), 2 * 3 * 5);
        assert_eq!(w.blocks_of(0), 6);
    }

    #[test]
    fn asymmetric_words() {
        let w = Workload::new(vec![0, 0], vec![vec![0, 10], vec![4, 0]]).unwrap();
        assert_eq!(w.words_of(0), 14);
        assert_eq!(w.words_of(1), 14);
        assert_eq!(w.blocks_of(0), 2);
        assert_eq!(w.traffic(0, 1), 10);
    }

    #[test]
    fn random_sparse_is_symmetric_and_reproducible() {
        let a = Workload::random_sparse(16, 1_000, 50, 4, 9);
        let b = Workload::random_sparse(16, 1_000, 50, 4, 9);
        assert_eq!(a, b);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(a.traffic(i, j), a.traffic(j, i));
            }
        }
    }

    #[test]
    fn pe_loads_match_accessors() {
        let w = Workload::ring(5, 10, 7);
        let loads = w.pe_loads();
        for (i, &(c, b)) in loads.iter().enumerate() {
            assert_eq!(c, w.words_of(i));
            assert_eq!(b, w.blocks_of(i));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = Workload::ring(2, 1, 1);
    }

    #[test]
    fn stragglers_scale_flops_only_and_are_reproducible() {
        let w = Workload::ring(16, 1_000, 10);
        let a = w.with_stragglers(0.5, 4.0, 7);
        let b = w.with_stragglers(0.5, 4.0, 7);
        assert_eq!(a, b, "same seed, same victims");
        // Traffic is untouched; every PE's flops are either 1× or 4×.
        let mut slowed = 0;
        for i in 0..16 {
            assert_eq!(a.words_of(i), w.words_of(i));
            assert_eq!(a.blocks_of(i), w.blocks_of(i));
            match a.flops()[i] {
                1_000 => {}
                4_000 => slowed += 1,
                other => panic!("unexpected flop count {other}"),
            }
        }
        assert!(slowed > 0, "p=0.5 over 16 PEs picks someone");
        assert!(slowed < 16, "p=0.5 over 16 PEs spares someone");
        // Degenerate knobs are identity.
        assert_eq!(w.with_stragglers(0.0, 8.0, 7), w);
        assert_eq!(w.with_stragglers(1.0, 1.0, 7), w);
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn speedup_factor_is_rejected() {
        let _ = Workload::ring(4, 1, 1).with_stragglers(0.5, 0.5, 1);
    }

    #[test]
    fn error_display() {
        assert!(WorkloadError::SelfMessage(3).to_string().contains("pe 3"));
        assert!(WorkloadError::BadTrafficShape.to_string().contains("shape"));
    }
}
