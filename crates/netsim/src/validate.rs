//! Model-vs-simulation validation: how well Equations (1)/(2) and the β
//! bound predict the discrete-event machine.

use crate::simulate::{simulate_comm_phase, SimOptions};
use crate::workload::Workload;
use quake_core::machine::{Network, Processor};
use quake_core::model::beta::{beta_bound, exact_comm_time, modeled_comm_time};
use std::fmt;

/// One validation row: analytic prediction vs simulated measurement for a
/// `(workload, machine)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Number of PEs.
    pub parts: usize,
    /// Simulated communication-phase duration (seconds).
    pub sim_t_comm: f64,
    /// Modeled `B_max·T_l + C_max·T_w` (seconds).
    pub model_t_comm: f64,
    /// The per-PE lower bound `max_i (B_i·T_l + C_i·T_w)` (seconds).
    pub exact_t_comm: f64,
    /// The β bound for this workload.
    pub beta: f64,
    /// Simulated efficiency given the computation phase.
    pub sim_efficiency: f64,
    /// Efficiency predicted by the model.
    pub model_efficiency: f64,
}

impl ValidationRow {
    /// Ratio of modeled to simulated communication time (1.0 = perfect;
    /// > 1 means the model is pessimistic, < 1 optimistic).
    pub fn model_accuracy(&self) -> f64 {
        if self.sim_t_comm == 0.0 {
            1.0
        } else {
            self.model_t_comm / self.sim_t_comm
        }
    }
}

impl fmt::Display for ValidationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p={:>3}  sim={:>10.3e}s  model={:>10.3e}s  exact={:>10.3e}s  β={:.3}  E(sim)={:.3}  E(model)={:.3}",
            self.parts,
            self.sim_t_comm,
            self.model_t_comm,
            self.exact_t_comm,
            self.beta,
            self.sim_efficiency,
            self.model_efficiency
        )
    }
}

/// Runs one validation: simulate the communication phase and compare it with
/// the model's prediction.
pub fn validate(
    workload: &Workload,
    processor: &Processor,
    network: &Network,
    options: SimOptions,
) -> ValidationRow {
    let loads = workload.pe_loads();
    let sim_t_comm = simulate_comm_phase(workload, network, options);
    let model_t_comm = modeled_comm_time(&loads, network.t_l, network.t_w);
    let exact_t_comm = exact_comm_time(&loads, network.t_l, network.t_w);
    let t_comp = workload.f_max() as f64 * processor.t_f;
    let eff = |t_comm: f64| {
        if t_comp + t_comm == 0.0 {
            1.0
        } else {
            t_comp / (t_comp + t_comm)
        }
    };
    ValidationRow {
        parts: workload.parts(),
        sim_t_comm,
        model_t_comm,
        exact_t_comm,
        beta: beta_bound(&loads),
        sim_efficiency: eff(sim_t_comm),
        model_efficiency: eff(model_t_comm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(t_l: f64, t_w: f64) -> Network {
        Network {
            name: "test",
            t_l,
            t_w,
        }
    }

    #[test]
    fn model_brackets_simulation_for_balanced_workloads() {
        // For a balanced ring, exact ≤ sim and sim stays close to model.
        let w = Workload::ring(16, 1_000_000, 800);
        let row = validate(
            &w,
            &Processor::hypothetical_200mflops(),
            &net(2e-6, 20e-9),
            SimOptions::default(),
        );
        assert!(row.sim_t_comm >= row.exact_t_comm * (1.0 - 1e-12));
        assert!(
            (0.7..1.4).contains(&row.model_accuracy()),
            "model accuracy {} out of range: {row}",
            row.model_accuracy()
        );
    }

    #[test]
    fn beta_one_for_symmetric_workloads() {
        let w = Workload::ring(8, 0, 100);
        let row = validate(
            &w,
            &Processor::hypothetical_100mflops(),
            &net(1e-6, 1e-9),
            SimOptions::default(),
        );
        assert_eq!(row.beta, 1.0);
        // For perfectly balanced loads model == exact.
        assert!((row.model_t_comm - row.exact_t_comm).abs() < 1e-15);
    }

    #[test]
    fn model_overestimate_within_beta_of_exact() {
        for seed in 0..5 {
            let w = Workload::random_sparse(24, 100_000, 400, 5, seed);
            let row = validate(
                &w,
                &Processor::hypothetical_200mflops(),
                &net(5e-6, 50e-9),
                SimOptions::default(),
            );
            assert!(
                row.model_t_comm <= row.beta * row.exact_t_comm * (1.0 + 1e-9),
                "β bound violated: {row}"
            );
            assert!((1.0..=2.0).contains(&row.beta));
        }
    }

    #[test]
    fn efficiencies_ordered_by_comm_estimates() {
        let w = Workload::random_sparse(16, 2_000_000, 600, 4, 1);
        let row = validate(
            &w,
            &Processor::hypothetical_200mflops(),
            &net(3e-6, 30e-9),
            SimOptions::default(),
        );
        // Larger comm time → lower efficiency; model is pessimistic vs exact.
        assert!(row.model_efficiency <= row.sim_efficiency + 0.2);
        assert!(row.sim_efficiency > 0.0 && row.sim_efficiency < 1.0);
    }

    #[test]
    fn display_row() {
        let w = Workload::ring(4, 1_000, 10);
        let row = validate(
            &w,
            &Processor::hypothetical_100mflops(),
            &net(1e-6, 1e-9),
            SimOptions::default(),
        );
        let s = row.to_string();
        assert!(s.contains("p=  4"));
        assert!(s.contains("β="));
    }
}
