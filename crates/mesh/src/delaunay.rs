//! Incremental 3D Delaunay tetrahedralization (Bowyer–Watson).
//!
//! The Quake meshes were produced by the Archimedes tool chain, whose mesh
//! generator is a Delaunay-refinement code. We reproduce the substrate from
//! scratch: points pre-sorted along a Morton (Z-order) curve for walk
//! locality, a stochastic face walk for point location, and cavity-based
//! Bowyer–Watson insertion.
//!
//! The predicates are plain `f64` filters, not exact arithmetic; callers are
//! expected to provide jittered (generic-position) input, which the graded
//! sampler in [`crate::sampling`] guarantees.

use crate::geometry::{insphere, orient3d, Aabb};
use quake_sparse::dense::Vec3;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when the triangulation cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelaunayError {
    /// Fewer than four input points, or all points degenerate.
    TooFewPoints(usize),
    /// Point location failed (numerically degenerate input).
    LocationFailed {
        /// Index of the point being inserted when location failed.
        point: usize,
    },
}

impl fmt::Display for DelaunayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelaunayError::TooFewPoints(n) => {
                write!(
                    f,
                    "need at least 4 points for a tetrahedralization, got {n}"
                )
            }
            DelaunayError::LocationFailed { point } => {
                write!(f, "point location failed while inserting point {point}")
            }
        }
    }
}

impl Error for DelaunayError {}

const NONE: usize = usize::MAX;

/// One tetrahedron of the triangulation under construction.
#[derive(Debug, Clone, Copy)]
struct Tet {
    /// Vertex indices (positively oriented).
    v: [usize; 4],
    /// `nbr[i]` is the tet across the face opposite vertex `i` (`NONE` if
    /// on the boundary of the super-tet).
    nbr: [usize; 4],
    alive: bool,
}

/// The result of a tetrahedralization: vertices (in the, possibly reordered,
/// order used for insertion) and positively oriented tetrahedra indexing
/// them.
#[derive(Debug, Clone)]
pub struct Tetrahedralization {
    /// Vertex coordinates.
    pub points: Vec<Vec3>,
    /// Tetrahedra as quadruples of indices into `points`.
    pub tets: Vec<[usize; 4]>,
}

/// Builds the Delaunay tetrahedralization of `points`.
///
/// The input is internally sorted along a Morton curve; the returned
/// [`Tetrahedralization::points`] reflects that order (it is a permutation
/// of the input).
///
/// # Errors
///
/// Returns [`DelaunayError::TooFewPoints`] for fewer than 4 points and
/// [`DelaunayError::LocationFailed`] if point location fails, which indicates
/// degenerate (non-jittered) input.
///
/// # Examples
///
/// ```
/// use quake_mesh::delaunay::delaunay;
/// use quake_sparse::dense::Vec3;
/// let pts = vec![
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.1),
///     Vec3::new(0.0, 1.0, 0.2),
///     Vec3::new(0.1, 0.2, 1.0),
///     Vec3::new(0.9, 0.8, 0.9),
/// ];
/// let t = delaunay(&pts)?;
/// assert!(t.tets.len() >= 2);
/// # Ok::<(), quake_mesh::delaunay::DelaunayError>(())
/// ```
pub fn delaunay(points: &[Vec3]) -> Result<Tetrahedralization, DelaunayError> {
    if points.len() < 4 {
        return Err(DelaunayError::TooFewPoints(points.len()));
    }
    let sorted = morton_sort(points);
    let mut t = Builder::new(&sorted);
    for i in 0..sorted.len() {
        t.insert(i + 4)?;
    }
    Ok(t.extract(sorted))
}

/// Sorts points along a Morton (Z-order) curve for insertion locality.
fn morton_sort(points: &[Vec3]) -> Vec<Vec3> {
    let bbox = Aabb::from_points(points).expect("non-empty");
    let ext = bbox.extent();
    let scale = |v: f64, lo: f64, e: f64| -> u64 {
        if e <= 0.0 {
            return 0;
        }
        let t = ((v - lo) / e).clamp(0.0, 1.0);
        (t * 1023.0) as u64
    };
    let mut keyed: Vec<(u64, Vec3)> = points
        .iter()
        .map(|&p| {
            let xi = scale(p.x, bbox.min.x, ext.x);
            let yi = scale(p.y, bbox.min.y, ext.y);
            let zi = scale(p.z, bbox.min.z, ext.z);
            (
                interleave3(xi) | interleave3(yi) << 1 | interleave3(zi) << 2,
                p,
            )
        })
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, p)| p).collect()
}

/// Spreads the low 10 bits of `x` so consecutive bits are 3 apart.
fn interleave3(mut x: u64) -> u64 {
    x &= 0x3ff;
    x = (x | x << 16) & 0x30000ff;
    x = (x | x << 8) & 0x300f00f;
    x = (x | x << 4) & 0x30c30c3;
    x = (x | x << 2) & 0x9249249;
    x
}

struct Builder {
    /// All vertices: 4 super-tet vertices followed by the input points.
    verts: Vec<Vec3>,
    tets: Vec<Tet>,
    free: Vec<usize>,
    /// Hint: a live tet near the last insertion.
    last: usize,
    /// Scratch marks for cavity BFS (generation counting).
    mark: Vec<u64>,
    generation: u64,
}

impl Builder {
    fn new(points: &[Vec3]) -> Builder {
        let bbox = Aabb::from_points(points).expect("non-empty");
        let c = bbox.center();
        let s = bbox.longest_side().max(1e-9) * 1000.0;
        // A large regular-ish super-tet around the domain.
        let sv = [
            c + Vec3::new(0.0, 0.0, 3.0 * s),
            c + Vec3::new(-2.0 * s, -2.0 * s, -s),
            c + Vec3::new(2.0 * s, -2.0 * s, -s),
            c + Vec3::new(0.0, 2.5 * s, -s),
        ];
        let mut verts = sv.to_vec();
        verts.extend_from_slice(points);
        let mut v0 = [0usize, 1, 2, 3];
        if orient3d(verts[0], verts[1], verts[2], verts[3]) < 0.0 {
            v0.swap(2, 3);
        }
        let tets = vec![Tet {
            v: v0,
            nbr: [NONE; 4],
            alive: true,
        }];
        Builder {
            verts,
            tets,
            free: Vec::new(),
            last: 0,
            mark: vec![0],
            generation: 0,
        }
    }

    /// Walks from the hint tet toward the tet containing vertex `p`.
    fn locate(&self, p: usize) -> Option<usize> {
        let pt = self.verts[p];
        let mut cur = self.last;
        if !self.tets[cur].alive {
            cur = self.tets.iter().position(|t| t.alive)?;
        }
        let max_steps = 8 * (self.tets.len() + 64);
        let mut prev = NONE;
        for _ in 0..max_steps {
            let t = &self.tets[cur];
            let mut moved = false;
            // Visit faces in a rotating order to avoid cycles.
            for i in 0..4 {
                let f = face_opposite(&t.v, i);
                // Face is oriented so the opposite vertex is on the positive
                // side; if p is strictly on the negative side, cross it.
                let o = orient3d(self.verts[f[0]], self.verts[f[1]], self.verts[f[2]], pt);
                if o < 0.0 {
                    let next = t.nbr[i];
                    if next == NONE || next == prev {
                        continue;
                    }
                    prev = cur;
                    cur = next;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return Some(cur);
            }
        }
        // Fall back to exhaustive search over live tets.
        (0..self.tets.len()).find(|&i| {
            self.tets[i].alive && {
                let v = self.tets[i].v;
                (0..4).all(|k| {
                    let f = face_opposite(&v, k);
                    orient3d(self.verts[f[0]], self.verts[f[1]], self.verts[f[2]], pt) >= 0.0
                })
            }
        })
    }

    /// True if vertex `p` lies strictly inside the circumsphere of tet `t`.
    fn in_circumsphere(&self, t: usize, p: usize) -> bool {
        let v = self.tets[t].v;
        insphere(
            self.verts[v[0]],
            self.verts[v[1]],
            self.verts[v[2]],
            self.verts[v[3]],
            self.verts[p],
        ) > 0.0
    }

    fn insert(&mut self, p: usize) -> Result<(), DelaunayError> {
        let start = self
            .locate(p)
            .ok_or(DelaunayError::LocationFailed { point: p })?;
        // Grow the cavity: all connected tets whose circumsphere contains p.
        self.generation += 1;
        let gen = self.generation;
        let mut cavity = vec![start];
        self.mark[start] = gen;
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            for i in 0..4 {
                let n = self.tets[t].nbr[i];
                if n != NONE
                    && self.mark[n] != gen
                    && self.tets[n].alive
                    && self.in_circumsphere(n, p)
                {
                    self.mark[n] = gen;
                    cavity.push(n);
                    stack.push(n);
                }
            }
        }
        // Collect boundary faces: (face vertices, external neighbor).
        let mut boundary: Vec<([usize; 3], usize)> = Vec::new();
        for &t in &cavity {
            for i in 0..4 {
                let n = self.tets[t].nbr[i];
                let external = n == NONE || self.mark[n] != gen;
                if external {
                    let f = face_opposite(&self.tets[t].v, i);
                    boundary.push((f, n));
                }
            }
        }
        // Kill cavity tets.
        for &t in &cavity {
            self.tets[t].alive = false;
            self.free.push(t);
        }
        // Create one new tet per boundary face, oriented positively.
        let mut face_map: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        let mut created = Vec::with_capacity(boundary.len());
        for (f, ext) in boundary {
            let [a, b, c] = f;
            let mut v = [p, a, b, c];
            if orient3d(
                self.verts[v[0]],
                self.verts[v[1]],
                self.verts[v[2]],
                self.verts[v[3]],
            ) < 0.0
            {
                v.swap(2, 3);
            }
            let idx = self.alloc(Tet {
                v,
                nbr: [NONE; 4],
                alive: true,
            });
            created.push(idx);
            // Link across the boundary face (opposite vertex p = index 0).
            self.tets[idx].nbr[0] = ext;
            if ext != NONE {
                // Find which face of ext was the shared one and point it here.
                let ev = self.tets[ext].v;
                for i in 0..4 {
                    let ef = face_opposite(&ev, i);
                    if same_tri(ef, [a, b, c]) {
                        self.tets[ext].nbr[i] = idx;
                        break;
                    }
                }
            }
            // Link the three faces incident to p with sibling new tets via
            // the shared boundary edge.
            let tv = self.tets[idx].v;
            for i in 1..4 {
                let f = face_opposite(&tv, i);
                // The face contains p; its other two vertices form an edge of
                // the cavity boundary shared with exactly one sibling.
                let mut e: Vec<usize> = f.iter().copied().filter(|&x| x != p).collect();
                e.sort_unstable();
                let key = (e[0], e[1]);
                match face_map.remove(&key) {
                    None => {
                        face_map.insert(key, (idx, i));
                    }
                    Some((other, oi)) => {
                        self.tets[idx].nbr[i] = other;
                        self.tets[other].nbr[oi] = idx;
                    }
                }
            }
        }
        debug_assert!(
            face_map.is_empty(),
            "unmatched internal faces in cavity fill"
        );
        self.last = *created.last().expect("cavity has boundary faces");
        Ok(())
    }

    fn alloc(&mut self, t: Tet) -> usize {
        if let Some(i) = self.free.pop() {
            self.tets[i] = t;
            i
        } else {
            self.tets.push(t);
            self.mark.push(0);
            self.tets.len() - 1
        }
    }

    fn extract(self, points: Vec<Vec3>) -> Tetrahedralization {
        let mut tets = Vec::new();
        for t in &self.tets {
            if t.alive && t.v.iter().all(|&v| v >= 4) {
                tets.push([t.v[0] - 4, t.v[1] - 4, t.v[2] - 4, t.v[3] - 4]);
            }
        }
        Tetrahedralization { points, tets }
    }
}

/// The face opposite vertex `i`, ordered so that vertex `i` is on its
/// positive side for a positively oriented tet.
#[inline]
fn face_opposite(v: &[usize; 4], i: usize) -> [usize; 3] {
    // For positively oriented (v0, v1, v2, v3):
    //   face opp 0: (v1, v3, v2), opp 1: (v0, v2, v3),
    //   face opp 2: (v0, v3, v1), opp 3: (v0, v1, v2).
    match i {
        0 => [v[1], v[3], v[2]],
        1 => [v[0], v[2], v[3]],
        2 => [v[0], v[3], v[1]],
        3 => [v[0], v[1], v[2]],
        _ => unreachable!("face index out of range"),
    }
}

/// True if two triangles have the same vertex set.
#[inline]
fn same_tri(a: [usize; 3], b: [usize; 3]) -> bool {
    let mut a = a;
    let mut b = b;
    a.sort_unstable();
    b.sort_unstable();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Tetra;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// Brute-force check of the Delaunay empty-circumsphere property.
    fn check_delaunay(t: &Tetrahedralization, tol: f64) {
        for tet in &t.tets {
            let [a, b, c, d] = tet.map(|i| t.points[i]);
            assert!(
                orient3d(a, b, c, d) > 0.0,
                "tet {tet:?} not positively oriented"
            );
            let (center, r) = Tetra::new(a, b, c, d)
                .circumsphere()
                .expect("non-degenerate");
            for (i, &p) in t.points.iter().enumerate() {
                if tet.contains(&i) {
                    continue;
                }
                let dist = (p - center).norm();
                assert!(
                    dist >= r * (1.0 - tol),
                    "point {i} at distance {dist} violates circumsphere r={r} of {tet:?}"
                );
            }
        }
    }

    #[test]
    fn too_few_points_errors() {
        assert!(matches!(
            delaunay(&random_points(3, 1)),
            Err(DelaunayError::TooFewPoints(3))
        ));
    }

    #[test]
    fn five_points_delaunay() {
        let pts = random_points(5, 42);
        let t = delaunay(&pts).unwrap();
        assert!(!t.tets.is_empty());
        check_delaunay(&t, 1e-9);
    }

    #[test]
    fn fifty_points_delaunay_property() {
        let t = delaunay(&random_points(50, 7)).unwrap();
        check_delaunay(&t, 1e-9);
    }

    #[test]
    fn two_hundred_points_delaunay_property() {
        let t = delaunay(&random_points(200, 3)).unwrap();
        check_delaunay(&t, 1e-9);
    }

    #[test]
    fn hull_volume_matches_sum_of_tets() {
        // The union of tets is the convex hull; compare total volume with a
        // Monte-Carlo estimate of the hull volume using containment in tets.
        let pts = random_points(100, 9);
        let t = delaunay(&pts).unwrap();
        let total: f64 = t
            .tets
            .iter()
            .map(|&tet| {
                let [a, b, c, d] = tet.map(|i| t.points[i]);
                Tetra::new(a, b, c, d).volume()
            })
            .sum();
        // Hull of 100 uniform points in the unit cube has volume well above
        // 0.6 and at most 1.
        assert!(total > 0.6 && total <= 1.0 + 1e-9, "total = {total}");
    }

    #[test]
    fn tets_partition_points_consistently() {
        let pts = random_points(80, 11);
        let t = delaunay(&pts).unwrap();
        // Every input point appears in at least one tet.
        let mut used = vec![false; t.points.len()];
        for tet in &t.tets {
            for &v in tet {
                used[v] = true;
            }
        }
        assert!(
            used.iter().all(|&u| u),
            "every point must be a vertex of some tet"
        );
    }

    #[test]
    fn grid_with_jitter_works() {
        // Near-degenerate grids are the nasty case; jitter keeps predicates
        // decisive. This mimics what the graded sampler produces.
        let mut rng = StdRng::seed_from_u64(5);
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    pts.push(Vec3::new(
                        i as f64 + rng.gen::<f64>() * 0.2,
                        j as f64 + rng.gen::<f64>() * 0.2,
                        k as f64 + rng.gen::<f64>() * 0.2,
                    ));
                }
            }
        }
        let t = delaunay(&pts).unwrap();
        check_delaunay(&t, 1e-7);
        assert!(
            t.tets.len() > 300,
            "5x5x5 jittered grid should yield many tets"
        );
    }

    #[test]
    fn morton_sort_is_permutation() {
        let pts = random_points(64, 2);
        let sorted = morton_sort(&pts);
        assert_eq!(sorted.len(), pts.len());
        let sum_in: f64 = pts.iter().map(|p| p.x + p.y + p.z).sum();
        let sum_out: f64 = sorted.iter().map(|p| p.x + p.y + p.z).sum();
        assert!((sum_in - sum_out).abs() < 1e-9);
    }

    #[test]
    fn interleave_bits() {
        assert_eq!(interleave3(0b1), 0b1);
        assert_eq!(interleave3(0b11), 0b1001);
        assert_eq!(interleave3(0b101), 0b1000001);
    }

    #[test]
    fn display_of_errors() {
        assert!(DelaunayError::TooFewPoints(2)
            .to_string()
            .contains("4 points"));
        assert!(DelaunayError::LocationFailed { point: 7 }
            .to_string()
            .contains("point 7"));
    }
}
