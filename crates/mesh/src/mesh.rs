//! The unstructured tetrahedral mesh type and its statistics.

use crate::geometry::{Aabb, Tetra};
use quake_sparse::dense::Vec3;
use quake_sparse::pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Bytes of runtime state per mesh node assumed by the paper's memory
/// estimates ("about 1.2 KByte of memory at runtime" per node).
pub const BYTES_PER_NODE: usize = 1200;

/// Error produced by [`TetMesh::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// An element references a node index `>= node_count`.
    NodeIndexOutOfRange {
        /// Element index.
        element: usize,
        /// Offending node index.
        node: usize,
    },
    /// An element has repeated vertices.
    DegenerateElement(usize),
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::NodeIndexOutOfRange { element, node } => {
                write!(f, "element {element} references out-of-range node {node}")
            }
            MeshError::DegenerateElement(e) => {
                write!(f, "element {e} has repeated vertices")
            }
        }
    }
}

impl Error for MeshError {}

/// An unstructured tetrahedral mesh: node coordinates plus elements
/// (tetrahedra) indexing them.
///
/// Terminology follows the paper: *elements* are tetrahedra, *nodes* are
/// their vertices, and *edges* connect nodes that share an element. The
/// stiffness matrix `K` has one 3×3 block per edge (plus self-edges).
///
/// # Examples
///
/// ```
/// use quake_mesh::mesh::TetMesh;
/// use quake_sparse::dense::Vec3;
/// let mesh = TetMesh::new(
///     vec![
///         Vec3::new(0.0, 0.0, 0.0),
///         Vec3::new(1.0, 0.0, 0.0),
///         Vec3::new(0.0, 1.0, 0.0),
///         Vec3::new(0.0, 0.0, 1.0),
///     ],
///     vec![[0, 1, 2, 3]],
/// )?;
/// assert_eq!(mesh.edge_count(), 6);
/// # Ok::<(), quake_mesh::mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TetMesh {
    nodes: Vec<Vec3>,
    elements: Vec<[usize; 4]>,
}

impl TetMesh {
    /// Creates a mesh after validating element indices.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NodeIndexOutOfRange`] or
    /// [`MeshError::DegenerateElement`] on invalid connectivity.
    pub fn new(nodes: Vec<Vec3>, elements: Vec<[usize; 4]>) -> Result<Self, MeshError> {
        for (ei, e) in elements.iter().enumerate() {
            for &v in e {
                if v >= nodes.len() {
                    return Err(MeshError::NodeIndexOutOfRange {
                        element: ei,
                        node: v,
                    });
                }
            }
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if e[i] == e[j] {
                        return Err(MeshError::DegenerateElement(ei));
                    }
                }
            }
        }
        Ok(TetMesh { nodes, elements })
    }

    /// Node coordinates.
    pub fn nodes(&self) -> &[Vec3] {
        &self.nodes
    }

    /// Elements as node-index quadruples.
    pub fn elements(&self) -> &[[usize; 4]] {
        &self.elements
    }

    /// Number of nodes (`n`; the vectors of the SMVP have length `3n`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of elements (tetrahedra).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// The geometric tetrahedron of element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= element_count()`.
    pub fn tetra(&self, e: usize) -> Tetra {
        let [a, b, c, d] = self.elements[e];
        Tetra::new(self.nodes[a], self.nodes[b], self.nodes[c], self.nodes[d])
    }

    /// The unique undirected edges `(i, j)`, `i < j`, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::with_capacity(self.elements.len() * 6);
        for e in &self.elements {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let (a, b) = (e[i].min(e[j]), e[i].max(e[j]));
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Number of unique edges (the paper's Fig. 2 "edges" row).
    pub fn edge_count(&self) -> usize {
        self.edges().len()
    }

    /// The node-adjacency sparsity pattern (one block per edge plus
    /// self-edges), i.e. the structure of the stiffness matrix.
    pub fn pattern(&self) -> Pattern {
        Pattern::from_edges(self.node_count(), &self.edges())
            .expect("mesh edges are valid by construction")
    }

    /// Sum of element volumes.
    pub fn total_volume(&self) -> f64 {
        (0..self.element_count())
            .map(|e| self.tetra(e).volume())
            .sum()
    }

    /// Bounding box of the nodes, or `None` for an empty mesh.
    pub fn bounding_box(&self) -> Option<Aabb> {
        Aabb::from_points(&self.nodes)
    }

    /// Estimated runtime memory footprint in bytes, using the paper's rule
    /// of thumb of ≈ 1.2 KB per node.
    pub fn estimated_runtime_bytes(&self) -> usize {
        self.node_count() * BYTES_PER_NODE
    }

    /// Element-quality summary over the whole mesh.
    pub fn quality(&self) -> QualityStats {
        let mut stats = QualityStats::default();
        if self.elements.is_empty() {
            return stats;
        }
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut worst = 0usize;
        for e in 0..self.element_count() {
            let q = self.tetra(e).radius_edge_ratio();
            sum += q;
            min = min.min(q);
            if q > max {
                max = q;
                worst = e;
            }
        }
        stats.mean_radius_edge = sum / self.element_count() as f64;
        stats.min_radius_edge = min;
        stats.max_radius_edge = max;
        stats.worst_element = worst;
        stats
    }

    /// The Fig. 2-style size row for this mesh.
    pub fn size_stats(&self) -> MeshSizeStats {
        MeshSizeStats {
            nodes: self.node_count(),
            elements: self.element_count(),
            edges: self.edge_count(),
        }
    }

    /// Average node degree including self-adjacency (paper: ≈ 14, giving 42
    /// nonzeros per scalar matrix row).
    pub fn avg_node_degree(&self) -> f64 {
        self.pattern().avg_degree()
    }

    /// Retains only elements for which `keep` returns true, dropping nodes
    /// that become unreferenced and compacting indices. Returns the node
    /// remapping `old → Option<new>`.
    pub fn filter_elements<F: FnMut(usize, &Tetra) -> bool>(
        &self,
        mut keep: F,
    ) -> (TetMesh, Vec<Option<usize>>) {
        let kept: Vec<[usize; 4]> = (0..self.element_count())
            .filter(|&e| keep(e, &self.tetra(e)))
            .map(|e| self.elements[e])
            .collect();
        let mut map: Vec<Option<usize>> = vec![None; self.node_count()];
        let mut nodes = Vec::new();
        let mut elements = Vec::with_capacity(kept.len());
        for e in kept {
            let mut ne = [0usize; 4];
            for (k, &v) in e.iter().enumerate() {
                let idx = *map[v].get_or_insert_with(|| {
                    nodes.push(self.nodes[v]);
                    nodes.len() - 1
                });
                ne[k] = idx;
            }
            elements.push(ne);
        }
        (TetMesh { nodes, elements }, map)
    }
}

/// Element-quality summary (radius-edge ratio; regular tet ≈ 0.612).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualityStats {
    /// Mean radius-edge ratio.
    pub mean_radius_edge: f64,
    /// Best (smallest) radius-edge ratio.
    pub min_radius_edge: f64,
    /// Worst (largest) radius-edge ratio.
    pub max_radius_edge: f64,
    /// Index of the worst element.
    pub worst_element: usize,
}

/// Mesh size statistics matching paper Figure 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshSizeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of tetrahedral elements.
    pub elements: usize,
    /// Number of unique edges.
    pub edges: usize,
}

impl fmt::Display for MeshSizeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes: {}, elements: {}, edges: {}",
            self.nodes, self.elements, self.edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_tet() -> TetMesh {
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap()
    }

    fn two_tets() -> TetMesh {
        // Two tets sharing face (1, 2, 3).
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_bad_indices() {
        let nodes = vec![Vec3::ZERO; 3];
        assert!(matches!(
            TetMesh::new(nodes.clone(), vec![[0, 1, 2, 3]]),
            Err(MeshError::NodeIndexOutOfRange { node: 3, .. })
        ));
        let nodes4 = vec![Vec3::ZERO; 4];
        assert!(matches!(
            TetMesh::new(nodes4, vec![[0, 1, 2, 2]]),
            Err(MeshError::DegenerateElement(0))
        ));
    }

    #[test]
    fn counts() {
        let m = two_tets();
        assert_eq!(m.node_count(), 5);
        assert_eq!(m.element_count(), 2);
        // 6 + 6 edges, 3 shared (the common face's edges): 9 unique.
        assert_eq!(m.edge_count(), 9);
        assert_eq!(m.size_stats().edges, 9);
    }

    #[test]
    fn pattern_matches_edges() {
        let m = two_tets();
        let p = m.pattern();
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.edge_count(), 9);
        // Node 0 is adjacent to itself + 1, 2, 3 (not 4).
        assert_eq!(p.neighbors(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn volume_of_single_tet() {
        assert!((single_tet().total_volume() - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn quality_stats_single() {
        let q = single_tet().quality();
        assert!((q.mean_radius_edge - 3f64.sqrt() / 2.0).abs() < 1e-12);
        assert_eq!(q.worst_element, 0);
        assert_eq!(q.min_radius_edge, q.max_radius_edge);
    }

    #[test]
    fn memory_estimate_uses_paper_rule() {
        assert_eq!(single_tet().estimated_runtime_bytes(), 4 * 1200);
    }

    #[test]
    fn bounding_box() {
        let b = two_tets().bounding_box().unwrap();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::splat(1.0));
    }

    #[test]
    fn filter_elements_compacts_nodes() {
        let m = two_tets();
        let (kept, map) = m.filter_elements(|e, _| e == 1);
        assert_eq!(kept.element_count(), 1);
        assert_eq!(kept.node_count(), 4); // node 0 dropped
        assert_eq!(map[0], None);
        assert!(map[4].is_some());
        // Geometry preserved.
        assert!((kept.total_volume() - m.tetra(1).volume()).abs() < 1e-15);
    }

    #[test]
    fn filter_keep_all_is_identity_sized() {
        let m = two_tets();
        let (kept, _) = m.filter_elements(|_, _| true);
        assert_eq!(kept.size_stats(), m.size_stats());
    }

    #[test]
    fn avg_degree_of_single_tet() {
        // Every node adjacent to all 4 (incl. self): degree 4.
        assert!((single_tet().avg_node_degree() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn empty_mesh() {
        let m = TetMesh::new(vec![], vec![]).unwrap();
        assert_eq!(m.edge_count(), 0);
        assert!(m.bounding_box().is_none());
        assert_eq!(m.quality(), QualityStats::default());
    }

    #[test]
    fn display_of_size_stats() {
        let s = two_tets().size_stats();
        let text = s.to_string();
        assert!(text.contains("nodes: 5"));
        assert!(text.contains("edges: 9"));
    }

    #[test]
    fn mesh_error_display() {
        let e = MeshError::NodeIndexOutOfRange {
            element: 2,
            node: 9,
        };
        assert!(e.to_string().contains("element 2"));
        assert!(MeshError::DegenerateElement(1)
            .to_string()
            .contains("repeated"));
    }
}
