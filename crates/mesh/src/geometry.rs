//! Geometric primitives and predicates for tetrahedral meshing.

use quake_sparse::dense::{Mat3, Vec3};

/// An axis-aligned bounding box.
///
/// # Examples
///
/// ```
/// use quake_mesh::geometry::Aabb;
/// use quake_sparse::dense::Vec3;
/// let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
/// assert!(b.contains(Vec3::new(1.0, 1.0, 1.0)));
/// assert_eq!(b.center(), Vec3::new(1.0, 1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// # Panics
    ///
    /// Panics if any `min` component exceeds the matching `max` component.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max"
        );
        Aabb { min, max }
    }

    /// The smallest box containing all `points`, or `None` if empty.
    pub fn from_points(points: &[Vec3]) -> Option<Self> {
        let first = *points.first()?;
        let (min, max) = points
            .iter()
            .fold((first, first), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        Some(Aabb { min, max })
    }

    /// Center point.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Extent (max − min).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the longest side.
    pub fn longest_side(&self) -> f64 {
        let e = self.extent();
        e.x.max(e.y).max(e.z)
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The box expanded by `margin` on every side.
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(margin),
            max: self.max + Vec3::splat(margin),
        }
    }

    /// The `i`-th of the eight octants obtained by splitting at the center
    /// (bit 0 → x-high, bit 1 → y-high, bit 2 → z-high).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn octant(&self, i: usize) -> Aabb {
        assert!(i < 8, "octant index {i} out of range");
        let c = self.center();
        let min = Vec3::new(
            if i & 1 == 0 { self.min.x } else { c.x },
            if i & 2 == 0 { self.min.y } else { c.y },
            if i & 4 == 0 { self.min.z } else { c.z },
        );
        let max = Vec3::new(
            if i & 1 == 0 { c.x } else { self.max.x },
            if i & 2 == 0 { c.y } else { self.max.y },
            if i & 4 == 0 { c.z } else { self.max.z },
        );
        Aabb { min, max }
    }
}

/// Orientation predicate: the signed volume (×6) of tetrahedron `(a, b, c, d)`.
///
/// Positive when `d` lies on the side of plane `(a, b, c)` such that
/// `(b−a) × (c−a)` points toward `d` (right-handed, positively oriented).
#[inline]
pub fn orient3d(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    let ab = b - a;
    let ac = c - a;
    let ad = d - a;
    ab.dot(ac.cross(ad))
}

/// In-sphere predicate: positive if `e` lies strictly inside the circumsphere
/// of the positively oriented tetrahedron `(a, b, c, d)`.
///
/// Computed as the sign of the 4×4 lifted determinant. This is a plain
/// floating-point filter — callers are expected to jitter degenerate inputs
/// (the synthetic mesh generator always does).
pub fn insphere(a: Vec3, b: Vec3, c: Vec3, d: Vec3, e: Vec3) -> f64 {
    let ae = a - e;
    let be = b - e;
    let ce = c - e;
    let de = d - e;
    let a2 = ae.norm_squared();
    let b2 = be.norm_squared();
    let c2 = ce.norm_squared();
    let d2 = de.norm_squared();
    // Expand the 4x4 lifted determinant along the lifted column; the sign is
    // chosen so that, for orient3d(a, b, c, d) > 0, a strictly interior `e`
    // yields a positive value.
    let m = |p: Vec3, q: Vec3, r: Vec3| p.dot(q.cross(r));
    a2 * m(be, ce, de) - b2 * m(ae, ce, de) + c2 * m(ae, be, de) - d2 * m(ae, be, ce)
}

/// A tetrahedron defined by four vertex positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tetra {
    /// The four vertices.
    pub v: [Vec3; 4],
}

impl Tetra {
    /// Creates a tetrahedron from four vertices.
    pub fn new(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Self {
        Tetra { v: [a, b, c, d] }
    }

    /// Signed volume (positive for positively oriented vertices).
    pub fn signed_volume(&self) -> f64 {
        orient3d(self.v[0], self.v[1], self.v[2], self.v[3]) / 6.0
    }

    /// Absolute volume.
    pub fn volume(&self) -> f64 {
        self.signed_volume().abs()
    }

    /// Circumcenter and circumradius, or `None` for a degenerate
    /// (near-flat) tetrahedron.
    pub fn circumsphere(&self) -> Option<(Vec3, f64)> {
        let [a, b, c, d] = self.v;
        let ab = b - a;
        let ac = c - a;
        let ad = d - a;
        let m = Mat3::new([[ab.x, ab.y, ab.z], [ac.x, ac.y, ac.z], [ad.x, ad.y, ad.z]]);
        let rhs = Vec3::new(
            0.5 * ab.norm_squared(),
            0.5 * ac.norm_squared(),
            0.5 * ad.norm_squared(),
        );
        let inv = m.inverse()?;
        let offset = inv.mul_vec(rhs);
        let center = a + offset;
        Some((center, offset.norm()))
    }

    /// The shortest edge length.
    pub fn shortest_edge(&self) -> f64 {
        self.edge_lengths()
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// The longest edge length.
    pub fn longest_edge(&self) -> f64 {
        self.edge_lengths().into_iter().fold(0.0, f64::max)
    }

    /// The six edge lengths.
    pub fn edge_lengths(&self) -> [f64; 6] {
        let v = &self.v;
        [
            (v[1] - v[0]).norm(),
            (v[2] - v[0]).norm(),
            (v[3] - v[0]).norm(),
            (v[2] - v[1]).norm(),
            (v[3] - v[1]).norm(),
            (v[3] - v[2]).norm(),
        ]
    }

    /// The smallest of the four altitudes (vertex-to-opposite-face
    /// distances), `3V / max face area`. This, not the shortest edge, is the
    /// length an explicit wave-propagation time step must resolve: sliver
    /// elements have moderate edges but near-zero altitudes, and it is the
    /// altitude that bounds the element's highest stiffness eigenfrequency.
    /// Returns `0.0` for degenerate (flat) elements.
    pub fn min_altitude(&self) -> f64 {
        const FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];
        let max_face_area = FACES
            .iter()
            .map(|f| {
                let (a, b, c) = (self.v[f[0]], self.v[f[1]], self.v[f[2]]);
                0.5 * (b - a).cross(c - a).norm()
            })
            .fold(0.0, f64::max);
        if max_face_area == 0.0 {
            return 0.0;
        }
        3.0 * self.volume() / max_face_area
    }

    /// Radius-edge ratio (circumradius / shortest edge), the quality measure
    /// of Delaunay refinement; ≈ 0.612 for the regular tetrahedron, larger
    /// for worse elements. Returns `f64::INFINITY` for degenerate elements.
    pub fn radius_edge_ratio(&self) -> f64 {
        match self.circumsphere() {
            Some((_, r)) => r / self.shortest_edge(),
            None => f64::INFINITY,
        }
    }

    /// Barycenter.
    pub fn centroid(&self) -> Vec3 {
        (self.v[0] + self.v[1] + self.v[2] + self.v[3]) * 0.25
    }

    /// True if point `p` lies inside or on the boundary: for every face,
    /// `p` is on the same side as the opposite vertex.
    pub fn contains(&self, p: Vec3) -> bool {
        const FACES: [([usize; 3], usize); 4] = [
            ([1, 2, 3], 0),
            ([0, 2, 3], 1),
            ([0, 1, 3], 2),
            ([0, 1, 2], 3),
        ];
        FACES.iter().all(|&(f, opp)| {
            let s_p = orient3d(self.v[f[0]], self.v[f[1]], self.v[f[2]], p);
            let s_o = orient3d(self.v[f[0]], self.v[f[1]], self.v[f[2]], self.v[opp]);
            s_p * s_o >= 0.0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> Tetra {
        Tetra::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        )
    }

    #[test]
    fn aabb_basics() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.longest_side(), 6.0);
        assert_eq!(b.volume(), 48.0);
        assert!(b.contains(Vec3::new(2.0, 0.0, 3.0)));
        assert!(!b.contains(Vec3::new(-0.1, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "min must not exceed max")]
    fn aabb_invalid_panics() {
        let _ = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
    }

    #[test]
    fn aabb_from_points() {
        assert!(Aabb::from_points(&[]).is_none());
        let b = Aabb::from_points(&[Vec3::new(1.0, 5.0, -1.0), Vec3::new(-2.0, 0.0, 3.0)]).unwrap();
        assert_eq!(b.min, Vec3::new(-2.0, 0.0, -1.0));
        assert_eq!(b.max, Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn aabb_octants_partition_volume() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
        let total: f64 = (0..8).map(|i| b.octant(i).volume()).sum();
        assert!((total - b.volume()).abs() < 1e-12);
        // Octant 7 is the all-high corner.
        assert_eq!(b.octant(7).min, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(b.octant(0).max, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn aabb_inflate() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).inflate(0.5);
        assert_eq!(b.min, Vec3::splat(-0.5));
        assert_eq!(b.max, Vec3::splat(1.5));
    }

    #[test]
    fn orient3d_signs() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 1.0, 0.0);
        assert!(orient3d(a, b, c, Vec3::new(0.0, 0.0, 1.0)) > 0.0);
        assert!(orient3d(a, b, c, Vec3::new(0.0, 0.0, -1.0)) < 0.0);
        assert_eq!(orient3d(a, b, c, Vec3::new(0.3, 0.3, 0.0)), 0.0);
    }

    #[test]
    fn insphere_signs() {
        let t = unit_tet();
        assert!(t.signed_volume() > 0.0, "unit tet is positively oriented");
        let [a, b, c, d] = t.v;
        // Centroid is inside the circumsphere.
        assert!(insphere(a, b, c, d, t.centroid()) > 0.0);
        // A faraway point is outside.
        assert!(insphere(a, b, c, d, Vec3::splat(10.0)) < 0.0);
    }

    #[test]
    fn insphere_boundary_is_zero() {
        let t = unit_tet();
        let [a, b, c, d] = t.v;
        // Each vertex lies exactly on the circumsphere.
        assert_eq!(insphere(a, b, c, d, a), 0.0);
    }

    #[test]
    fn tet_volume() {
        assert!((unit_tet().volume() - 1.0 / 6.0).abs() < 1e-15);
        let mut t = unit_tet();
        t.v.swap(0, 1);
        assert!(t.signed_volume() < 0.0);
        assert!((t.volume() - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn circumsphere_of_unit_tet() {
        let (c, r) = unit_tet().circumsphere().unwrap();
        // All four vertices equidistant from the center.
        for v in unit_tet().v {
            assert!(((v - c).norm() - r).abs() < 1e-12);
        }
        assert!((c - Vec3::splat(0.5)).norm() < 1e-12);
    }

    #[test]
    fn circumsphere_degenerate_is_none() {
        let t = Tetra::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        );
        assert!(t.circumsphere().is_none());
    }

    #[test]
    fn edge_lengths_and_quality() {
        let t = unit_tet();
        let mut e = t.edge_lengths();
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((e[0] - 1.0).abs() < 1e-15);
        assert!((e[5] - 2.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(t.shortest_edge(), 1.0);
        assert!((t.longest_edge() - 2.0_f64.sqrt()).abs() < 1e-15);
        // Radius-edge of the corner tet: R = sqrt(3)/2, min edge 1.
        assert!((t.radius_edge_ratio() - 3.0_f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn regular_tet_radius_edge() {
        // Regular tetrahedron inscribed in the unit cube.
        let t = Tetra::new(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        let expect = (3.0_f64 / 8.0).sqrt(); // ≈ 0.6124
        assert!((t.radius_edge_ratio() - expect).abs() < 1e-12);
    }

    #[test]
    fn tet_contains() {
        let t = unit_tet();
        assert!(t.contains(t.centroid()));
        assert!(t.contains(Vec3::ZERO));
        assert!(!t.contains(Vec3::splat(1.0)));
        // Orientation-insensitive.
        let mut flipped = t;
        flipped.v.swap(0, 1);
        assert!(flipped.contains(t.centroid()));
    }
}
