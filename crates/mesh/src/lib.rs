//! Unstructured tetrahedral-mesh substrate for the Quake reproduction.
//!
//! The original San Fernando meshes are not obtainable today, so this crate
//! rebuilds the *generator*: a layered alluvial-basin ground model
//! ([`ground::BasinModel`]), a wavelength-driven sizing field, a graded
//! octree sampler ([`sampling`]), and a from-scratch incremental Delaunay
//! tetrahedralizer ([`delaunay`]). The result is a family of meshes with the
//! same architectural signature as the paper's sf10…sf1 family: strongly
//! graded, unstructured, 3-D, with node count growing ≈ 8× per halving of
//! the resolved wave period.
//!
//! # Examples
//!
//! ```
//! use quake_mesh::generator::{generate_basin_mesh, GeneratorOptions};
//! use quake_mesh::ground::BasinModel;
//! let ground = BasinModel::san_fernando_like();
//! // A scaled-down sf10-like mesh (scale 8 shrinks the domain 8x linearly).
//! let mesh = generate_basin_mesh(&ground, 10.0, 8.0, GeneratorOptions::default())?;
//! assert!(mesh.node_count() > 50);
//! # Ok::<(), quake_mesh::generator::GenerateError>(())
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod boundary;
pub mod delaunay;
pub mod generator;
pub mod geometry;
pub mod ground;
pub mod io;
pub mod mesh;
pub mod refine;
pub mod sampling;

pub use boundary::Boundary;
pub use generator::{generate_basin_mesh, generate_mesh, GeneratorOptions};
pub use ground::{BasinModel, Material, SizingField, WavelengthSizing};
pub use mesh::{MeshSizeStats, TetMesh};
pub use refine::{refine_quality, QualityOptions, RefineQualityStats};
