//! End-to-end mesh generation: ground model → graded samples → Delaunay →
//! domain-clipped tetrahedral mesh.

use crate::delaunay::{delaunay, DelaunayError};
use crate::geometry::Aabb;
use crate::ground::{BasinModel, SizingField, WavelengthSizing};
use crate::mesh::TetMesh;
use crate::sampling::{sample_graded, SamplingOptions};
use quake_sparse::dense::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Error produced by mesh generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The sizing field produced too few sample points to mesh.
    TooFewSamples(usize),
    /// Tetrahedralization failed.
    Delaunay(DelaunayError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::TooFewSamples(n) => {
                write!(f, "sizing field produced only {n} sample points")
            }
            GenerateError::Delaunay(e) => write!(f, "tetrahedralization failed: {e}"),
        }
    }
}

impl Error for GenerateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenerateError::Delaunay(e) => Some(e),
            GenerateError::TooFewSamples(_) => None,
        }
    }
}

impl From<DelaunayError> for GenerateError {
    fn from(e: DelaunayError) -> Self {
        GenerateError::Delaunay(e)
    }
}

/// Options for [`generate_mesh`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorOptions {
    /// Seed for the jittered sampler (meshes are reproducible per seed).
    pub seed: u64,
    /// Sampler controls.
    pub sampling: SamplingOptions,
    /// Drop output tetrahedra whose radius-edge ratio exceeds this bound.
    /// Sliver-ish hull elements are harmless for the architecture study but
    /// pollute quality statistics. `f64::INFINITY` keeps everything.
    pub max_radius_edge: f64,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            seed: 0x5f3759df,
            sampling: SamplingOptions::default(),
            max_radius_edge: 8.0,
        }
    }
}

/// Generates a graded tetrahedral mesh of `domain` with local element size
/// given by `sizing`.
///
/// # Errors
///
/// Returns [`GenerateError::TooFewSamples`] if the sizing field yields fewer
/// than 4 points, or [`GenerateError::Delaunay`] if tetrahedralization fails.
///
/// # Examples
///
/// ```
/// use quake_mesh::generator::{generate_mesh, GeneratorOptions};
/// use quake_mesh::geometry::Aabb;
/// use quake_mesh::ground::UniformSizing;
/// use quake_sparse::dense::Vec3;
/// let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
/// let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default())?;
/// assert!(mesh.node_count() >= 64);
/// # Ok::<(), quake_mesh::generator::GenerateError>(())
/// ```
pub fn generate_mesh<S: SizingField>(
    domain: Aabb,
    sizing: &S,
    options: GeneratorOptions,
) -> Result<TetMesh, GenerateError> {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let points = sample_graded(domain, sizing, options.sampling, &mut rng);
    if points.len() < 4 {
        return Err(GenerateError::TooFewSamples(points.len()));
    }
    let tri = delaunay(&points)?;
    let mesh = TetMesh::new(tri.points, tri.tets)
        .expect("Delaunay output indices are valid by construction");
    if options.max_radius_edge.is_finite() {
        let (filtered, _) =
            mesh.filter_elements(|_, t| t.radius_edge_ratio() <= options.max_radius_edge);
        Ok(filtered)
    } else {
        Ok(mesh)
    }
}

/// Generates the synthetic analogue of one Quake application mesh: the
/// San-Fernando-like basin resolved for waves of `period` seconds.
///
/// `scale` divides the domain linearly (scale 4 → a 12.5 km × 12.5 km × 2.5
/// km corner of the basin), letting tests and quick runs use geometrically
/// similar but smaller meshes. Use `scale = 1.0` for paper-sized meshes.
///
/// # Errors
///
/// Propagates [`GenerateError`] from [`generate_mesh`].
pub fn generate_basin_mesh(
    ground: &BasinModel,
    period: f64,
    scale: f64,
    options: GeneratorOptions,
) -> Result<TetMesh, GenerateError> {
    let full = ground.domain();
    let domain = if scale == 1.0 {
        full
    } else {
        // A sub-box around the basin center so the graded region is kept.
        let c = Vec3::new(ground.basin_cx, ground.basin_cy, 0.0);
        let ext = full.extent() * (0.5 / scale);
        let min = Vec3::new(
            (c.x - ext.x).max(full.min.x),
            (c.y - ext.y).max(full.min.y),
            full.min.z.max(-2.0 * ext.z),
        );
        let max = Vec3::new(
            (c.x + ext.x).min(full.max.x),
            (c.y + ext.y).min(full.max.y),
            0.0,
        );
        Aabb::new(min, max)
    };
    let sizing = WavelengthSizing::new(ground, period);
    generate_mesh(domain, &sizing, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::UniformSizing;

    #[test]
    fn uniform_cube_mesh() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        assert!(mesh.node_count() >= 60, "nodes = {}", mesh.node_count());
        assert!(
            mesh.element_count() > mesh.node_count(),
            "tets outnumber nodes in 3D"
        );
        // Mesh covers a solid fraction of the box volume (the convex hull of
        // jittered cell centers is inset ≈ half a cell from each wall, which
        // at 4 cells per side costs a significant shell).
        assert!(
            mesh.total_volume() > 0.45 * domain.volume(),
            "volume = {} of {}",
            mesh.total_volume(),
            domain.volume()
        );
    }

    #[test]
    fn too_small_domain_errors() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let err = generate_mesh(domain, &UniformSizing(10.0), GeneratorOptions::default());
        assert!(matches!(err, Err(GenerateError::TooFewSamples(1))));
    }

    #[test]
    fn deterministic_per_seed() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(3.0));
        let a = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let b = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        assert_eq!(a, b);
        let other = GeneratorOptions {
            seed: 99,
            ..GeneratorOptions::default()
        };
        let c = generate_mesh(domain, &UniformSizing(1.0), other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn quality_filter_drops_slivers() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        let opts = GeneratorOptions {
            max_radius_edge: f64::INFINITY,
            ..GeneratorOptions::default()
        };
        let unfiltered = generate_mesh(domain, &UniformSizing(1.0), opts).unwrap();
        let filtered =
            generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        assert!(filtered.element_count() <= unfiltered.element_count());
        assert!(filtered.quality().max_radius_edge <= 8.0);
    }

    #[test]
    fn basin_mesh_small_scale() {
        let ground = BasinModel::san_fernando_like();
        let mesh = generate_basin_mesh(&ground, 10.0, 8.0, GeneratorOptions::default()).unwrap();
        assert!(mesh.node_count() > 50, "nodes = {}", mesh.node_count());
        // Basin grading: nodes are denser near the surface basin than at depth.
        let bbox = mesh.bounding_box().unwrap();
        let mid_z = (bbox.min.z + bbox.max.z) * 0.5;
        let shallow = mesh.nodes().iter().filter(|p| p.z > mid_z).count();
        let deep = mesh.node_count() - shallow;
        assert!(shallow > deep, "shallow = {shallow}, deep = {deep}");
    }

    #[test]
    fn period_halving_grows_mesh() {
        let ground = BasinModel::san_fernando_like();
        let coarse = generate_basin_mesh(&ground, 20.0, 8.0, GeneratorOptions::default()).unwrap();
        let fine = generate_basin_mesh(&ground, 10.0, 8.0, GeneratorOptions::default()).unwrap();
        let growth = fine.node_count() as f64 / coarse.node_count() as f64;
        assert!(
            (3.0..16.0).contains(&growth),
            "period halving should grow nodes ≈ 8x, got {growth:.2} ({} → {})",
            coarse.node_count(),
            fine.node_count()
        );
    }

    #[test]
    fn generate_error_display() {
        assert!(GenerateError::TooFewSamples(2)
            .to_string()
            .contains("2 sample"));
        let e = GenerateError::from(DelaunayError::TooFewPoints(1));
        assert!(e.to_string().contains("tetrahedralization"));
    }
}
