//! Synthetic ground model: a soft alluvial basin embedded in hard rock.
//!
//! The San Fernando models are not distributable today, so we reproduce the
//! *property that drives the architecture study*: element size must match
//! the local seismic wavelength, which is short in soft basin sediments and
//! long in rock, producing a strongly graded unstructured mesh whose node
//! count grows ≈ 8× when the resolved wave period is halved (paper Fig. 2).

use crate::geometry::Aabb;
use quake_sparse::dense::Vec3;
use serde::{Deserialize, Serialize};

/// Elastic material properties at a point of the ground.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Shear (S) wave velocity in m/s.
    pub vs: f64,
    /// Compressional (P) wave velocity in m/s.
    pub vp: f64,
    /// Density in kg/m³.
    pub rho: f64,
}

impl Material {
    /// Lamé shear modulus `µ = ρ·vs²` (Pa).
    pub fn mu(&self) -> f64 {
        self.rho * self.vs * self.vs
    }

    /// Lamé first parameter `λ = ρ·(vp² − 2·vs²)` (Pa).
    pub fn lambda(&self) -> f64 {
        self.rho * (self.vp * self.vp - 2.0 * self.vs * self.vs)
    }
}

/// A sizing field: the target element edge length at each point.
///
/// Implemented by [`BasinModel`] (wavelength-driven) and by test doubles.
pub trait SizingField {
    /// Target element size (m) at `p`.
    fn size_at(&self, p: Vec3) -> f64;
}

/// Uniform sizing field (for tests and regular baselines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformSizing(pub f64);

impl SizingField for UniformSizing {
    fn size_at(&self, _p: Vec3) -> f64 {
        self.0
    }
}

/// A layered alluvial-basin ground model in a box domain.
///
/// Geometry follows the paper's description of the San Fernando Valley:
/// roughly 50 km × 50 km × 10 km of earth, with an ellipsoidal depression of
/// soft sediments (low shear-wave velocity) over hard rock. Coordinates are
/// meters; `z = 0` is the free surface and `z = -depth` the domain bottom.
///
/// # Examples
///
/// ```
/// use quake_mesh::ground::{BasinModel, SizingField};
/// use quake_sparse::dense::Vec3;
/// let basin = BasinModel::san_fernando_like();
/// let soft = basin.material_at(basin.basin_center_surface());
/// let rock = basin.material_at(Vec3::new(1000.0, 1000.0, -9000.0));
/// assert!(soft.vs < rock.vs);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasinModel {
    /// Domain extent in x (m).
    pub size_x: f64,
    /// Domain extent in y (m).
    pub size_y: f64,
    /// Domain depth in z (m); the domain is `[−depth, 0]` in z.
    pub depth: f64,
    /// Basin center in x (m).
    pub basin_cx: f64,
    /// Basin center in y (m).
    pub basin_cy: f64,
    /// Basin semi-axis in x (m).
    pub basin_rx: f64,
    /// Basin semi-axis in y (m).
    pub basin_ry: f64,
    /// Maximum basin (sediment) depth (m).
    pub basin_depth: f64,
    /// Shear-wave velocity of the softest surface sediment (m/s).
    pub vs_sediment_surface: f64,
    /// Shear-wave velocity gradient of sediments with depth (1/s).
    pub vs_sediment_gradient: f64,
    /// Shear-wave velocity of rock (m/s).
    pub vs_rock: f64,
    /// Density of sediments (kg/m³).
    pub rho_sediment: f64,
    /// Density of rock (kg/m³).
    pub rho_rock: f64,
}

impl BasinModel {
    /// The default San-Fernando-like model used throughout the reproduction:
    /// a 50 km × 50 km × 10 km box with an off-center elliptical soft basin.
    pub fn san_fernando_like() -> Self {
        BasinModel {
            size_x: 50_000.0,
            size_y: 50_000.0,
            depth: 10_000.0,
            basin_cx: 27_000.0,
            basin_cy: 22_000.0,
            basin_rx: 19_000.0,
            basin_ry: 13_000.0,
            basin_depth: 3_500.0,
            vs_sediment_surface: 400.0,
            vs_sediment_gradient: 1.1,
            vs_rock: 3_000.0,
            rho_sediment: 2_000.0,
            rho_rock: 2_600.0,
        }
    }

    /// The domain as an axis-aligned box, `z ∈ [−depth, 0]`.
    pub fn domain(&self) -> Aabb {
        Aabb::new(
            Vec3::new(0.0, 0.0, -self.depth),
            Vec3::new(self.size_x, self.size_y, 0.0),
        )
    }

    /// The surface point above the basin center (handy for sources and
    /// receivers in examples).
    pub fn basin_center_surface(&self) -> Vec3 {
        Vec3::new(self.basin_cx, self.basin_cy, 0.0)
    }

    /// Depth of the sediment column at horizontal position `(x, y)`:
    /// an elliptic paraboloid, zero outside the basin ellipse.
    pub fn sediment_depth(&self, x: f64, y: f64) -> f64 {
        let ex = (x - self.basin_cx) / self.basin_rx;
        let ey = (y - self.basin_cy) / self.basin_ry;
        let r2 = ex * ex + ey * ey;
        if r2 >= 1.0 {
            0.0
        } else {
            self.basin_depth * (1.0 - r2)
        }
    }

    /// True if the point lies inside the sediment basin.
    pub fn in_basin(&self, p: Vec3) -> bool {
        -p.z < self.sediment_depth(p.x, p.y) && p.z <= 0.0
    }

    /// Material at point `p`. Sediment velocity grows linearly with depth and
    /// is capped at the rock velocity; `vp = 2·vs` in sediments (typical wet
    /// alluvium is higher, but vp does not drive element size) and
    /// `vp = √3·vs` in rock (a Poisson solid).
    pub fn material_at(&self, p: Vec3) -> Material {
        if self.in_basin(p) {
            let vs =
                (self.vs_sediment_surface + self.vs_sediment_gradient * (-p.z)).min(self.vs_rock);
            Material {
                vs,
                vp: 2.0 * vs,
                rho: self.rho_sediment,
            }
        } else {
            let vs = self.vs_rock;
            Material {
                vs,
                vp: 3f64.sqrt() * vs,
                rho: self.rho_rock,
            }
        }
    }
}

/// A wavelength-driven sizing field for a target wave period.
///
/// The element size at `p` is `vs(p) · period / points_per_wavelength`,
/// clamped to `[min_size, max_size]`. Halving `period` halves the size
/// everywhere not clamped, multiplying node count by ≈ 8 — the paper's
/// scaling rule.
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthSizing<'a> {
    /// The ground model supplying `vs(p)`.
    pub ground: &'a BasinModel,
    /// Resolved wave period (s): 10, 5, 2, 1 for sf10…sf1.
    pub period: f64,
    /// Mesh points per shortest wavelength (the paper's meshes used ≈ 10).
    pub points_per_wavelength: f64,
    /// Lower clamp on element size (m).
    pub min_size: f64,
    /// Upper clamp on element size (m).
    pub max_size: f64,
}

impl<'a> WavelengthSizing<'a> {
    /// A sizing field for `ground` resolving waves of `period` seconds,
    /// with the defaults used by the sfN family (10 points per wavelength,
    /// sizes clamped to `[40 m, depth/2]`).
    pub fn new(ground: &'a BasinModel, period: f64) -> Self {
        WavelengthSizing {
            ground,
            period,
            points_per_wavelength: 10.0,
            min_size: 40.0,
            max_size: ground.depth / 2.0,
        }
    }
}

impl SizingField for WavelengthSizing<'_> {
    fn size_at(&self, p: Vec3) -> f64 {
        let vs = self.ground.material_at(p).vs;
        (vs * self.period / self.points_per_wavelength).clamp(self.min_size, self.max_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_lame_parameters() {
        let m = Material {
            vs: 1000.0,
            vp: 2000.0,
            rho: 2000.0,
        };
        assert_eq!(m.mu(), 2e9);
        assert_eq!(m.lambda(), 2000.0 * (4e6 - 2e6));
    }

    #[test]
    fn basin_is_soft_rock_is_hard() {
        let g = BasinModel::san_fernando_like();
        let soft = g.material_at(g.basin_center_surface());
        let rock = g.material_at(Vec3::new(500.0, 500.0, -500.0));
        assert!(soft.vs < 500.0);
        assert_eq!(rock.vs, g.vs_rock);
        assert!(soft.rho < rock.rho);
    }

    #[test]
    fn sediment_depth_profile() {
        let g = BasinModel::san_fernando_like();
        assert_eq!(g.sediment_depth(g.basin_cx, g.basin_cy), g.basin_depth);
        // On the basin rim the depth vanishes.
        assert_eq!(g.sediment_depth(g.basin_cx + g.basin_rx, g.basin_cy), 0.0);
        // Far corner: no sediment.
        assert_eq!(g.sediment_depth(0.0, 0.0), 0.0);
    }

    #[test]
    fn sediment_velocity_grows_with_depth() {
        let g = BasinModel::san_fernando_like();
        let shallow = g.material_at(Vec3::new(g.basin_cx, g.basin_cy, -10.0));
        let deeper = g.material_at(Vec3::new(g.basin_cx, g.basin_cy, -1000.0));
        assert!(shallow.vs < deeper.vs);
        assert!(deeper.vs < g.vs_rock);
    }

    #[test]
    fn below_basin_is_rock() {
        let g = BasinModel::san_fernando_like();
        let deep = g.material_at(Vec3::new(g.basin_cx, g.basin_cy, -(g.basin_depth + 1.0)));
        assert_eq!(deep.vs, g.vs_rock);
    }

    #[test]
    fn domain_extent() {
        let g = BasinModel::san_fernando_like();
        let d = g.domain();
        assert_eq!(d.extent().x, 50_000.0);
        assert_eq!(d.extent().z, 10_000.0);
        assert!(d.contains(g.basin_center_surface()));
    }

    #[test]
    fn wavelength_sizing_scales_with_period() {
        let g = BasinModel::san_fernando_like();
        let p = Vec3::new(g.basin_cx, g.basin_cy, -100.0);
        let s10 = WavelengthSizing::new(&g, 10.0).size_at(p);
        let s5 = WavelengthSizing::new(&g, 5.0).size_at(p);
        // Halving the period halves the size (no clamps active here).
        assert!((s10 / s5 - 2.0).abs() < 1e-12, "{s10} vs {s5}");
    }

    #[test]
    fn sizing_respects_clamps() {
        let g = BasinModel::san_fernando_like();
        let mut s = WavelengthSizing::new(&g, 10.0);
        s.min_size = 1_000.0;
        s.max_size = 2_000.0;
        let soft = s.size_at(g.basin_center_surface());
        let hard = s.size_at(Vec3::new(100.0, 100.0, -9_000.0));
        assert_eq!(soft, 1_000.0);
        assert_eq!(hard, 2_000.0);
    }

    #[test]
    fn rock_size_exceeds_sediment_size() {
        let g = BasinModel::san_fernando_like();
        let s = WavelengthSizing::new(&g, 2.0);
        let soft = s.size_at(g.basin_center_surface());
        let hard = s.size_at(Vec3::new(1_000.0, 1_000.0, -8_000.0));
        assert!(soft < hard);
    }

    #[test]
    fn uniform_sizing_is_uniform() {
        let u = UniformSizing(123.0);
        assert_eq!(u.size_at(Vec3::ZERO), 123.0);
        assert_eq!(u.size_at(Vec3::splat(1e6)), 123.0);
    }
}
