//! Boundary extraction: the surface triangles of a tetrahedral mesh.
//!
//! A face shared by two tets is interior; a face belonging to exactly one
//! tet is on the boundary. The boundary statistics feed the O(n^{2/3})
//! surface-area arguments the paper uses for partition quality, and the
//! closed-surface check is a strong mesh-validity test.

use crate::mesh::TetMesh;
use std::collections::HashMap;

/// The boundary (surface) of a tetrahedral mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundary {
    /// Boundary triangles as sorted node triples.
    pub faces: Vec<[usize; 3]>,
    /// Nodes appearing on at least one boundary face, sorted.
    pub nodes: Vec<usize>,
}

impl Boundary {
    /// Extracts the boundary of `mesh`.
    pub fn extract(mesh: &TetMesh) -> Self {
        let mut counts: HashMap<[usize; 3], usize> = HashMap::new();
        for tet in mesh.elements() {
            for f in tet_faces(tet) {
                *counts.entry(f).or_insert(0) += 1;
            }
        }
        let mut faces: Vec<[usize; 3]> = counts
            .into_iter()
            .filter_map(|(f, c)| (c == 1).then_some(f))
            .collect();
        faces.sort_unstable();
        let mut nodes: Vec<usize> = faces.iter().flatten().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        Boundary { faces, nodes }
    }

    /// Number of boundary triangles.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Number of boundary nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total boundary surface area.
    pub fn area(&self, mesh: &TetMesh) -> f64 {
        self.faces
            .iter()
            .map(|f| {
                let a = mesh.nodes()[f[0]];
                let b = mesh.nodes()[f[1]];
                let c = mesh.nodes()[f[2]];
                (b - a).cross(c - a).norm() * 0.5
            })
            .sum()
    }

    /// True if every boundary edge is shared by exactly two boundary faces
    /// — i.e. the surface is closed (watertight), as the boundary of a
    /// solid tet mesh must be.
    pub fn is_closed(&self) -> bool {
        let mut edge_counts: HashMap<(usize, usize), usize> = HashMap::new();
        for f in &self.faces {
            for (a, b) in [(f[0], f[1]), (f[0], f[2]), (f[1], f[2])] {
                *edge_counts.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        edge_counts.values().all(|&c| c == 2)
    }
}

/// The four faces of a tet, each as a sorted node triple.
fn tet_faces(tet: &[usize; 4]) -> [[usize; 3]; 4] {
    let sorted = |mut f: [usize; 3]| {
        f.sort_unstable();
        f
    };
    [
        sorted([tet[1], tet[2], tet[3]]),
        sorted([tet[0], tet[2], tet[3]]),
        sorted([tet[0], tet[1], tet[3]]),
        sorted([tet[0], tet[1], tet[2]]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_mesh, GeneratorOptions};
    use crate::geometry::Aabb;
    use crate::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn single_tet() -> TetMesh {
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap()
    }

    #[test]
    fn single_tet_boundary_is_all_faces() {
        let b = Boundary::extract(&single_tet());
        assert_eq!(b.face_count(), 4);
        assert_eq!(b.node_count(), 4);
        assert!(b.is_closed());
    }

    #[test]
    fn two_tets_share_one_interior_face() {
        let mesh = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap();
        let b = Boundary::extract(&mesh);
        assert_eq!(b.face_count(), 6); // 8 faces − 2 copies of the shared one
        assert!(b.is_closed());
        assert_eq!(b.node_count(), 5);
    }

    #[test]
    fn generated_mesh_boundary_is_closed_and_boxlike() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let b = Boundary::extract(&mesh);
        assert!(b.face_count() > 0);
        assert!(b.is_closed(), "the hull of a Delaunay mesh is watertight");
        // Surface area should be within a factor of the bounding-box area
        // (the hull is inset and faceted).
        let box_area = 6.0 * 4.0 * 4.0;
        let area = b.area(&mesh);
        assert!(
            area > 0.3 * box_area && area < 1.5 * box_area,
            "area {area} vs box {box_area}"
        );
    }

    #[test]
    fn boundary_scaling_follows_two_thirds_law() {
        // Boundary nodes should grow like n^(2/3): refine the sizing 2x and
        // the surface node count should grow ≈ 4x while volume nodes grow 8x.
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(8.0));
        let coarse =
            generate_mesh(domain, &UniformSizing(2.0), GeneratorOptions::default()).unwrap();
        let fine = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let bc = Boundary::extract(&coarse).node_count() as f64;
        let bf = Boundary::extract(&fine).node_count() as f64;
        let growth = bf / bc;
        assert!(
            (2.5..6.0).contains(&growth),
            "surface node growth {growth} should be ≈ 4 (n^(2/3) law)"
        );
    }

    #[test]
    fn empty_mesh_boundary() {
        let mesh = TetMesh::new(vec![], vec![]).unwrap();
        let b = Boundary::extract(&mesh);
        assert_eq!(b.face_count(), 0);
        assert!(b.is_closed());
        assert_eq!(b.area(&mesh), 0.0);
    }
}
