//! Mesh serialization: a human-readable text format and a compact binary
//! format (framed with the `bytes` crate).
//!
//! The text format mirrors the node/element files distributed with the
//! original Quake mesh suite:
//!
//! ```text
//! quakemesh 1
//! nodes 4
//! 0 0 0
//! 1 0 0
//! 0 1 0
//! 0 0 1
//! elements 1
//! 0 1 2 3
//! ```

use crate::mesh::TetMesh;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use quake_sparse::dense::Vec3;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

const TEXT_MAGIC: &str = "quakemesh";
const BIN_MAGIC: u32 = 0x514d_4531; // "QME1"

/// Errors produced by mesh (de)serialization.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input is not a recognized mesh file.
    BadFormat(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::BadFormat(msg) => write!(f, "bad mesh file: {msg}"),
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::BadFormat(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes `mesh` in the text format.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure. A `&mut` reference may be
/// passed as the writer.
pub fn write_text<W: Write>(mesh: &TetMesh, mut w: W) -> Result<(), IoError> {
    writeln!(w, "{TEXT_MAGIC} 1")?;
    writeln!(w, "nodes {}", mesh.node_count())?;
    for p in mesh.nodes() {
        writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
    }
    writeln!(w, "elements {}", mesh.element_count())?;
    for e in mesh.elements() {
        writeln!(w, "{} {} {} {}", e[0], e[1], e[2], e[3])?;
    }
    Ok(())
}

/// Reads a mesh from the text format.
///
/// # Errors
///
/// Returns [`IoError::BadFormat`] on malformed content or [`IoError::Io`] on
/// read failure. A `&mut` reference may be passed as the reader.
pub fn read_text<R: BufRead>(r: R) -> Result<TetMesh, IoError> {
    let mut lines = r.lines();
    let mut next_line = || -> Result<String, IoError> {
        loop {
            match lines.next() {
                None => return Err(IoError::BadFormat("unexpected end of file".into())),
                Some(line) => {
                    let line = line?;
                    let trimmed = line.trim();
                    if !trimmed.is_empty() && !trimmed.starts_with('#') {
                        return Ok(trimmed.to_string());
                    }
                }
            }
        }
    };
    let header = next_line()?;
    if header.split_whitespace().next() != Some(TEXT_MAGIC) {
        return Err(IoError::BadFormat(format!("missing '{TEXT_MAGIC}' header")));
    }
    let parse_count = |line: &str, key: &str| -> Result<usize, IoError> {
        let mut it = line.split_whitespace();
        if it.next() != Some(key) {
            return Err(IoError::BadFormat(format!(
                "expected '{key} <count>', got '{line}'"
            )));
        }
        it.next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| IoError::BadFormat(format!("bad count in '{line}'")))
    };
    let n = parse_count(&next_line()?, "nodes")?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next_line()?;
        let vals: Vec<f64> = line
            .split_whitespace()
            .map(|v| v.parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| IoError::BadFormat(format!("bad node line '{line}'")))?;
        if vals.len() != 3 {
            return Err(IoError::BadFormat(format!(
                "node line needs 3 values: '{line}'"
            )));
        }
        nodes.push(Vec3::new(vals[0], vals[1], vals[2]));
    }
    let m = parse_count(&next_line()?, "elements")?;
    let mut elements = Vec::with_capacity(m);
    for _ in 0..m {
        let line = next_line()?;
        let vals: Vec<usize> = line
            .split_whitespace()
            .map(|v| v.parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| IoError::BadFormat(format!("bad element line '{line}'")))?;
        if vals.len() != 4 {
            return Err(IoError::BadFormat(format!(
                "element line needs 4 values: '{line}'"
            )));
        }
        elements.push([vals[0], vals[1], vals[2], vals[3]]);
    }
    TetMesh::new(nodes, elements).map_err(|e| IoError::BadFormat(e.to_string()))
}

/// Encodes `mesh` into the compact binary format.
pub fn to_bytes(mesh: &TetMesh) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + mesh.node_count() * 24 + mesh.element_count() * 32);
    buf.put_u32_le(BIN_MAGIC);
    buf.put_u64_le(mesh.node_count() as u64);
    buf.put_u64_le(mesh.element_count() as u64);
    for p in mesh.nodes() {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
        buf.put_f64_le(p.z);
    }
    for e in mesh.elements() {
        for &v in e {
            buf.put_u64_le(v as u64);
        }
    }
    buf.freeze()
}

/// Decodes a mesh from the binary format.
///
/// # Errors
///
/// Returns [`IoError::BadFormat`] if the magic, lengths, or connectivity are
/// invalid.
pub fn from_bytes(mut data: Bytes) -> Result<TetMesh, IoError> {
    if data.remaining() < 20 {
        return Err(IoError::BadFormat("truncated header".into()));
    }
    if data.get_u32_le() != BIN_MAGIC {
        return Err(IoError::BadFormat("bad magic".into()));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    if data.remaining() < n * 24 {
        return Err(IoError::BadFormat("truncated node block".into()));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let x = data.get_f64_le();
        let y = data.get_f64_le();
        let z = data.get_f64_le();
        nodes.push(Vec3::new(x, y, z));
    }
    if data.remaining() < m * 32 {
        return Err(IoError::BadFormat("truncated element block".into()));
    }
    let mut elements = Vec::with_capacity(m);
    for _ in 0..m {
        let mut e = [0usize; 4];
        for v in e.iter_mut() {
            *v = data.get_u64_le() as usize;
        }
        elements.push(e);
    }
    TetMesh::new(nodes, elements).map_err(|e| IoError::BadFormat(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> TetMesh {
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn text_round_trip() {
        let mesh = sample();
        let mut buf = Vec::new();
        write_text(&mesh, &mut buf).unwrap();
        let back = read_text(BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, mesh);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let text = "# a comment\nquakemesh 1\n\nnodes 4\n0 0 0\n1 0 0\n0 1 0\n0 0 1\n# body\nelements 1\n0 1 2 3\n";
        let mesh = read_text(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(mesh.node_count(), 4);
        assert_eq!(mesh.element_count(), 1);
    }

    #[test]
    fn text_bad_magic_rejected() {
        let text = "notamesh 1\nnodes 0\nelements 0\n";
        assert!(matches!(
            read_text(BufReader::new(text.as_bytes())),
            Err(IoError::BadFormat(_))
        ));
    }

    #[test]
    fn text_truncated_rejected() {
        let text = "quakemesh 1\nnodes 2\n0 0 0\n";
        assert!(read_text(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn text_bad_counts_rejected() {
        let text = "quakemesh 1\nnodes x\n";
        assert!(read_text(BufReader::new(text.as_bytes())).is_err());
        let text = "quakemesh 1\nnodes 1\n0 0\nelements 0\n";
        assert!(read_text(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let mesh = sample();
        let bytes = to_bytes(&mesh);
        let back = from_bytes(bytes).unwrap();
        assert_eq!(back, mesh);
    }

    #[test]
    fn binary_bad_magic() {
        let mut raw = to_bytes(&sample()).to_vec();
        raw[0] ^= 0xff;
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn binary_truncated() {
        let raw = to_bytes(&sample());
        let cut = raw.slice(0..raw.len() - 8);
        assert!(from_bytes(cut).is_err());
        assert!(from_bytes(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn binary_invalid_connectivity_rejected() {
        // Hand-build a file whose element references node 9 of 4.
        let mut buf = BytesMut::new();
        buf.put_u32_le(super::BIN_MAGIC);
        buf.put_u64_le(4);
        buf.put_u64_le(1);
        for _ in 0..12 {
            buf.put_f64_le(0.0);
        }
        for v in [0u64, 1, 2, 9] {
            buf.put_u64_le(v);
        }
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn error_display() {
        let e = IoError::BadFormat("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
