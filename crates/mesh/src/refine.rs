//! Delaunay quality refinement: circumcenter insertion for poorly shaped
//! elements.
//!
//! The Quake meshes came from Archimedes, whose generator is Shewchuk's
//! Delaunay-refinement mesher (paper reference 18): elements whose radius-edge
//! ratio exceeds a bound are destroyed by inserting their circumcenters,
//! which provably terminates for bounds > 2 and in practice produces
//! high-quality graded meshes. This module implements the interior-point
//! core of that loop (boundary handling is unnecessary here because the
//! sampler already places points up to the domain walls).

use crate::delaunay::{delaunay, DelaunayError};
use crate::geometry::Aabb;
use crate::mesh::TetMesh;
use quake_sparse::dense::Vec3;

/// Options for [`refine_quality`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityOptions {
    /// Insert circumcenters of tets with radius-edge ratio above this bound
    /// (Shewchuk's theory needs > 2.0; practical meshers use ~1.2–2.0).
    pub max_radius_edge: f64,
    /// Maximum refinement rounds (each round retriangulates).
    pub max_rounds: usize,
    /// Maximum points inserted per round (caps blow-up on pathological
    /// input).
    pub max_insertions_per_round: usize,
    /// Skip circumcenters closer than this fraction of the local shortest
    /// edge to an existing vertex (prevents runaway clustering).
    pub min_spacing_factor: f64,
}

impl Default for QualityOptions {
    fn default() -> Self {
        QualityOptions {
            max_radius_edge: 2.0,
            max_rounds: 4,
            max_insertions_per_round: 10_000,
            min_spacing_factor: 0.25,
        }
    }
}

/// Statistics of one refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineQualityStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total circumcenters inserted.
    pub inserted: usize,
    /// Bad elements remaining after the final round (elements whose
    /// circumcenter fell outside the domain are left as-is).
    pub remaining_bad: usize,
}

/// Refines `mesh` by circumcenter insertion until every element's
/// radius-edge ratio is below the bound, a round/insertion cap is hit, or
/// only boundary-blocked bad elements remain.
///
/// # Errors
///
/// Propagates [`DelaunayError`] from retriangulation.
pub fn refine_quality(
    mesh: &TetMesh,
    domain: Aabb,
    options: QualityOptions,
) -> Result<(TetMesh, RefineQualityStats), DelaunayError> {
    let mut points: Vec<Vec3> = mesh.nodes().to_vec();
    let mut current = mesh.clone();
    let mut stats = RefineQualityStats::default();
    for _ in 0..options.max_rounds {
        let mut inserted_this_round = 0usize;
        let mut candidates: Vec<Vec3> = Vec::new();
        let mut remaining = 0usize;
        for e in 0..current.element_count() {
            let tet = current.tetra(e);
            if tet.radius_edge_ratio() <= options.max_radius_edge {
                continue;
            }
            match tet.circumsphere() {
                Some((center, _)) if domain.contains(center) => {
                    // Reject circumcenters that would crowd an existing
                    // vertex of the bad element.
                    let spacing = options.min_spacing_factor * tet.shortest_edge();
                    let crowded = tet.v.iter().any(|&v| (v - center).norm() < spacing);
                    if crowded {
                        remaining += 1;
                    } else {
                        candidates.push(center);
                    }
                }
                _ => remaining += 1, // degenerate or outside the domain
            }
            if candidates.len() >= options.max_insertions_per_round {
                break;
            }
        }
        stats.remaining_bad = remaining;
        if candidates.is_empty() {
            break;
        }
        // Drop near-duplicate candidates within the round (two bad tets can
        // share a circumsphere).
        candidates.sort_by(|a, b| {
            (a.x, a.y, a.z)
                .partial_cmp(&(b.x, b.y, b.z))
                .expect("finite coordinates")
        });
        candidates.dedup_by(|a, b| (*a - *b).norm() < 1e-12);
        for c in candidates {
            points.push(c);
            inserted_this_round += 1;
        }
        stats.inserted += inserted_this_round;
        stats.rounds += 1;
        let tri = delaunay(&points)?;
        current =
            TetMesh::new(tri.points, tri.tets).expect("Delaunay output is valid connectivity");
        points = current.nodes().to_vec();
    }
    // Recount the final bad elements for an accurate report.
    stats.remaining_bad = (0..current.element_count())
        .filter(|&e| current.tetra(e).radius_edge_ratio() > options.max_radius_edge)
        .count();
    Ok((current, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_mesh, GeneratorOptions};
    use crate::ground::UniformSizing;

    fn raw_mesh() -> (TetMesh, Aabb) {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
        // Keep slivers so refinement has work to do.
        let opts = GeneratorOptions {
            max_radius_edge: f64::INFINITY,
            ..GeneratorOptions::default()
        };
        (
            generate_mesh(domain, &UniformSizing(1.0), opts).unwrap(),
            domain,
        )
    }

    fn worst_interior_ratio(mesh: &TetMesh, domain: &Aabb) -> f64 {
        // Hull slivers whose circumcenters fall outside the domain cannot be
        // repaired by interior insertion; measure interior elements.
        (0..mesh.element_count())
            .filter_map(|e| {
                let t = mesh.tetra(e);
                let (c, _) = t.circumsphere()?;
                domain.contains(c).then(|| t.radius_edge_ratio())
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn refinement_improves_interior_quality() {
        let (mesh, domain) = raw_mesh();
        let before = worst_interior_ratio(&mesh, &domain);
        let (refined, stats) = refine_quality(&mesh, domain, QualityOptions::default()).unwrap();
        let after = worst_interior_ratio(&refined, &domain);
        assert!(stats.inserted > 0, "raw mesh should contain bad elements");
        assert!(
            after < before,
            "interior quality should improve: {before:.2} -> {after:.2}"
        );
        assert!(refined.node_count() > mesh.node_count());
    }

    #[test]
    fn refinement_is_idempotent_on_good_meshes() {
        let (mesh, domain) = raw_mesh();
        let (refined, _) = refine_quality(&mesh, domain, QualityOptions::default()).unwrap();
        let strict = QualityOptions {
            max_rounds: 1,
            ..QualityOptions::default()
        };
        let (again, stats2) = refine_quality(&refined, domain, strict).unwrap();
        // A second pass should insert far fewer points than the first.
        assert!(
            stats2.inserted * 4 <= refined.node_count(),
            "second pass inserted {} of {}",
            stats2.inserted,
            refined.node_count()
        );
        assert!(again.node_count() >= refined.node_count());
    }

    #[test]
    fn zero_rounds_is_identity() {
        let (mesh, domain) = raw_mesh();
        let opts = QualityOptions {
            max_rounds: 0,
            ..QualityOptions::default()
        };
        let (out, stats) = refine_quality(&mesh, domain, opts).unwrap();
        assert_eq!(out, mesh);
        assert_eq!(stats.inserted, 0);
    }

    #[test]
    fn insertion_cap_respected() {
        let (mesh, domain) = raw_mesh();
        let opts = QualityOptions {
            max_insertions_per_round: 3,
            max_rounds: 1,
            ..QualityOptions::default()
        };
        let (_, stats) = refine_quality(&mesh, domain, opts).unwrap();
        assert!(stats.inserted <= 3);
    }
}
