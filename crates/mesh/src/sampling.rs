//! Graded point sampling driven by a sizing field.
//!
//! An octree is recursively subdivided until each leaf is no larger than the
//! sizing field's target at the leaf center; one jittered point is emitted
//! per leaf. Feeding the resulting point cloud to the Delaunay
//! tetrahedralizer yields an unstructured mesh whose local edge length
//! tracks the sizing field — the same density-matched-to-wavelength
//! structure as the San Fernando meshes.

use crate::geometry::Aabb;
use crate::ground::SizingField;
use quake_sparse::dense::Vec3;
use rand::Rng;

/// Controls for the graded sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingOptions {
    /// Jitter amplitude as a fraction of the leaf size, in `(0, 0.5)`.
    /// Jitter keeps the input in general position for the floating-point
    /// Delaunay predicates.
    pub jitter: f64,
    /// Hard cap on octree depth (a safety bound; 30 ≈ 10⁹ leaves per axis).
    pub max_depth: u32,
}

impl Default for SamplingOptions {
    fn default() -> Self {
        SamplingOptions {
            jitter: 0.35,
            max_depth: 24,
        }
    }
}

/// Generates a graded point cloud over `domain` with local spacing given by
/// `sizing`. One point is placed near the center of every octree leaf.
///
/// # Panics
///
/// Panics if `options.jitter` is not in `[0, 0.5)`.
///
/// # Examples
///
/// ```
/// use quake_mesh::sampling::{sample_graded, SamplingOptions};
/// use quake_mesh::ground::UniformSizing;
/// use quake_mesh::geometry::Aabb;
/// use quake_sparse::dense::Vec3;
/// use rand::SeedableRng;
/// let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pts = sample_graded(domain, &UniformSizing(1.0), SamplingOptions::default(), &mut rng);
/// assert_eq!(pts.len(), 64); // a 4³ box at unit spacing
/// ```
pub fn sample_graded<S: SizingField, R: Rng>(
    domain: Aabb,
    sizing: &S,
    options: SamplingOptions,
    rng: &mut R,
) -> Vec<Vec3> {
    assert!(
        (0.0..0.5).contains(&options.jitter),
        "jitter must be in [0, 0.5), got {}",
        options.jitter
    );
    let mut points = Vec::new();
    let mut stack = vec![(domain, 0u32)];
    while let Some((cell, depth)) = stack.pop() {
        let target = sizing.size_at(cell.center()).max(1e-12);
        if cell.longest_side() <= target || depth >= options.max_depth {
            let e = cell.extent();
            let j = options.jitter;
            let p = cell.center()
                + Vec3::new(
                    e.x * j * (rng.gen::<f64>() * 2.0 - 1.0),
                    e.y * j * (rng.gen::<f64>() * 2.0 - 1.0),
                    e.z * j * (rng.gen::<f64>() * 2.0 - 1.0),
                );
            points.push(p);
        } else {
            for i in 0..8 {
                stack.push((cell.octant(i), depth + 1));
            }
        }
    }
    points
}

/// Estimates the number of points [`sample_graded`] would produce, without
/// generating them (used to pick scale factors for the sfN family).
pub fn estimate_count<S: SizingField>(domain: Aabb, sizing: &S, max_depth: u32) -> usize {
    let mut count = 0usize;
    let mut stack = vec![(domain, 0u32)];
    while let Some((cell, depth)) = stack.pop() {
        let target = sizing.size_at(cell.center()).max(1e-12);
        if cell.longest_side() <= target || depth >= max_depth {
            count += 1;
        } else {
            for i in 0..8 {
                stack.push((cell.octant(i), depth + 1));
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::UniformSizing;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct SplitSizing;

    impl SizingField for SplitSizing {
        fn size_at(&self, p: Vec3) -> f64 {
            // Finer in the x < 0.5 half.
            if p.x < 0.5 {
                0.125
            } else {
                0.5
            }
        }
    }

    #[test]
    fn uniform_counts_match_grid() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(8.0));
        let mut rng = StdRng::seed_from_u64(0);
        let pts = sample_graded(
            domain,
            &UniformSizing(2.0),
            SamplingOptions::default(),
            &mut rng,
        );
        assert_eq!(pts.len(), 64); // (8/2)³
    }

    #[test]
    fn all_points_inside_domain() {
        let domain = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 3.0, 4.0));
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sample_graded(
            domain,
            &UniformSizing(0.4),
            SamplingOptions::default(),
            &mut rng,
        );
        assert!(!pts.is_empty());
        for p in pts {
            assert!(domain.contains(p), "{p} outside domain");
        }
    }

    #[test]
    fn grading_increases_density_in_fine_region() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let pts = sample_graded(domain, &SplitSizing, SamplingOptions::default(), &mut rng);
        let fine = pts.iter().filter(|p| p.x < 0.5).count();
        let coarse = pts.len() - fine;
        assert!(
            fine > 4 * coarse,
            "fine half should dominate: fine = {fine}, coarse = {coarse}"
        );
    }

    #[test]
    fn halving_size_multiplies_count_by_eight() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(16.0));
        let mut rng = StdRng::seed_from_u64(2);
        let coarse = sample_graded(
            domain,
            &UniformSizing(2.0),
            SamplingOptions::default(),
            &mut rng,
        );
        let fine = sample_graded(
            domain,
            &UniformSizing(1.0),
            SamplingOptions::default(),
            &mut rng,
        );
        assert_eq!(fine.len(), 8 * coarse.len());
    }

    #[test]
    fn estimate_matches_actual() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let mut rng = StdRng::seed_from_u64(4);
        let actual =
            sample_graded(domain, &SplitSizing, SamplingOptions::default(), &mut rng).len();
        assert_eq!(estimate_count(domain, &SplitSizing, 24), actual);
    }

    #[test]
    fn max_depth_caps_refinement() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let mut rng = StdRng::seed_from_u64(5);
        let opts = SamplingOptions {
            jitter: 0.3,
            max_depth: 2,
        };
        let pts = sample_graded(domain, &UniformSizing(1e-9), opts, &mut rng);
        assert_eq!(pts.len(), 64); // 8² leaves at depth 2
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn invalid_jitter_panics() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let mut rng = StdRng::seed_from_u64(6);
        let opts = SamplingOptions {
            jitter: 0.7,
            max_depth: 4,
        };
        let _ = sample_graded(domain, &UniformSizing(1.0), opts, &mut rng);
    }

    #[test]
    fn zero_jitter_places_points_at_centers() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SamplingOptions {
            jitter: 0.0,
            max_depth: 8,
        };
        let pts = sample_graded(domain, &UniformSizing(1.0), opts, &mut rng);
        assert_eq!(pts.len(), 8);
        for p in pts {
            for c in p.to_array() {
                assert!((c - 0.5).abs() < 1e-12 || (c - 1.5).abs() < 1e-12);
            }
        }
    }
}
