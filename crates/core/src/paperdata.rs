//! Reference data published in the paper, embedded verbatim.
//!
//! Figures 8–11 of the paper are pure evaluations of Equations (1) and (2)
//! over the Figure 7 table, so embedding Figure 7 lets this reproduction
//! regenerate those figures *exactly*, independent of the synthetic meshes.

use crate::characterize::{AppCommSummary, SmvpInstance};

/// The four Quake applications, ordered as in the paper.
pub const APPS: [&str; 4] = ["sf10", "sf5", "sf2", "sf1"];

/// The subdomain counts of Figures 6 and 7.
pub const SUBDOMAIN_COUNTS: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// One row of Figure 2: mesh sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSizeRow {
    /// Application name.
    pub app: &'static str,
    /// Resolved wave period in seconds.
    pub period_s: f64,
    /// Node count.
    pub nodes: u64,
    /// Element count.
    pub elements: u64,
    /// Edge count.
    pub edges: u64,
}

/// Figure 2: sizes of the San Fernando meshes.
pub fn figure2() -> Vec<MeshSizeRow> {
    fn row(app: &'static str, period_s: f64, nodes: u64, elements: u64, edges: u64) -> MeshSizeRow {
        MeshSizeRow {
            app,
            period_s,
            nodes,
            elements,
            edges,
        }
    }
    vec![
        row("sf10", 10.0, 7_294, 35_025, 44_922),
        row("sf5", 5.0, 30_169, 151_239, 190_377),
        row("sf2", 2.0, 378_747, 2_067_739, 2_509_064),
        row("sf1", 1.0, 2_461_694, 13_980_162, 16_684_112),
    ]
}

/// Figure 6: the β error bounds, `beta[subdomain_index][app_index]` with the
/// orderings of [`SUBDOMAIN_COUNTS`] and [`APPS`].
pub const FIGURE6_BETA: [[f64; 4]; 6] = [
    [1.00, 1.00, 1.00, 1.00],
    [1.00, 1.00, 1.00, 1.00],
    [1.09, 1.10, 1.07, 1.00],
    [1.01, 1.01, 1.15, 1.00],
    [1.03, 1.08, 1.11, 1.05],
    [1.03, 1.04, 1.04, 1.11],
];

/// Figure 7: the full SMVP property table (24 instances).
pub fn figure7() -> Vec<SmvpInstance> {
    // (subdomains, [F per app], [C_max per app], [B_max per app],
    //  [M_avg per app]) in APPS order.
    #[allow(clippy::type_complexity)]
    const ROWS: [(usize, [u64; 4], [u64; 4], [u64; 4], [f64; 4]); 6] = [
        (
            4,
            [453_924, 1_899_396, 24_640_110, 162_372_024],
            [2_352, 7_746, 55_338, 186_162],
            [6, 6, 6, 6],
            [369.0, 1_290.0, 8_682.0, 27_540.0],
        ),
        (
            8,
            [235_566, 970_740, 12_414_006, 81_602_442],
            [2_550, 7_080, 35_148, 151_764],
            [12, 12, 10, 14],
            [237.0, 699.0, 4_152.0, 13_761.0],
        ),
        (
            16,
            [122_742, 496_872, 6_278_076, 41_116_374],
            [2_208, 5_292, 28_482, 119_280],
            [18, 20, 16, 18],
            [159.0, 342.0, 1_920.0, 7_434.0],
        ),
        (
            32,
            [64_980, 257_004, 3_191_436, 20_740_734],
            [2_172, 4_476, 24_018, 87_228],
            [30, 30, 26, 26],
            [87.0, 213.0, 1_239.0, 4_044.0],
        ),
        (
            64,
            [34_956, 134_424, 1_632_708, 10_511_586],
            [1_764, 4_296, 20_520, 73_062],
            [38, 40, 36, 38],
            [57.0, 135.0, 765.0, 2_712.0],
        ),
        (
            128,
            [18_954, 70_956, 838_224, 5_332_806],
            [1_740, 3_360, 16_260, 51_048],
            [62, 52, 50, 46],
            [36.0, 135.0, 459.0, 1_515.0],
        ),
    ];
    let mut out = Vec::with_capacity(24);
    for (subdomains, f, c, b, m) in ROWS {
        for (a, app) in APPS.iter().enumerate() {
            out.push(SmvpInstance::new(*app, subdomains, f[a], c[a], b[a], m[a]));
        }
    }
    out
}

/// Looks up one Figure 7 instance by application name and subdomain count.
pub fn figure7_instance(app: &str, subdomains: usize) -> Option<SmvpInstance> {
    figure7()
        .into_iter()
        .find(|i| i.app == app && i.subdomains == subdomains)
}

/// All Figure 7 instances of one application, ordered by subdomain count.
pub fn figure7_app(app: &str) -> Vec<SmvpInstance> {
    figure7().into_iter().filter(|i| i.app == app).collect()
}

/// EXFLOW (Cypher et al., paper reference 5): 3-D unstructured finite-element fluid
/// dynamics on 512 PEs, the paper's external comparator (§1).
pub const EXFLOW: AppCommSummary = AppCommSummary {
    data_mb_per_pe: 2.0,
    comm_kb_per_mflop: 144.0,
    messages_per_mflop: 66.0,
    avg_message_kb: 2.2,
};

/// The matching Quake figures quoted in §1 for sf2/128.
pub const QUAKE_SF2_128: AppCommSummary = AppCommSummary {
    data_mb_per_pe: 2.0,
    comm_kb_per_mflop: 155.0,
    messages_per_mflop: 60.0,
    avg_message_kb: 3.6,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_has_24_instances() {
        let rows = figure7();
        assert_eq!(rows.len(), 24);
        for app in APPS {
            assert_eq!(figure7_app(app).len(), 6);
        }
    }

    #[test]
    fn figure7_ratios_match_paper() {
        // Spot-check the F/C_max column the paper prints.
        let checks = [
            ("sf10", 4, 193.0),
            ("sf5", 8, 137.0),
            ("sf2", 4, 445.0),
            ("sf2", 128, 52.0),
            ("sf1", 4, 872.0),
            ("sf1", 128, 104.0),
        ];
        for (app, p, expect) in checks {
            let inst = figure7_instance(app, p).expect("row exists");
            assert!(
                (inst.comp_comm_ratio() - expect).abs() < 1.0,
                "{app}/{p}: got {:.1}, paper says {expect}",
                inst.comp_comm_ratio()
            );
        }
    }

    #[test]
    fn figure7_c_values_divisible_by_six() {
        // The paper notes C_max is even and divisible by three.
        for inst in figure7() {
            assert_eq!(inst.c_max % 6, 0, "{}", inst.label());
            assert_eq!(inst.b_max % 2, 0, "{}", inst.label());
        }
    }

    #[test]
    fn figure2_growth_is_near_eightfold() {
        let rows = figure2();
        for w in rows.windows(2) {
            let growth = w[1].nodes as f64 / w[0].nodes as f64;
            assert!(
                (4.0..13.0).contains(&growth),
                "node growth {growth} out of expected range"
            );
        }
        assert_eq!(rows[2].nodes, 378_747);
    }

    #[test]
    fn figure6_values_in_range() {
        for row in FIGURE6_BETA {
            for beta in row {
                assert!((1.0..=2.0).contains(&beta));
            }
        }
    }

    #[test]
    fn sf2_memory_estimate_matches_paper() {
        // "sf2 requires about 450 MBytes of memory at runtime" at
        // ≈ 1.2 KB/node.
        let sf2 = &figure2()[2];
        let bytes = sf2.nodes as f64 * 1200.0;
        assert!((400e6..500e6).contains(&bytes));
    }

    #[test]
    fn exflow_comparison_is_close() {
        // §1: "nearly identical computational properties".
        let ratio = EXFLOW.comm_kb_per_mflop / QUAKE_SF2_128.comm_kb_per_mflop;
        assert!((0.8..1.2).contains(&ratio));
    }

    #[test]
    fn lookup_missing_instance() {
        assert!(figure7_instance("sf3", 4).is_none());
        assert!(figure7_instance("sf2", 5).is_none());
    }

    #[test]
    fn periods_match_app_names() {
        assert_eq!(figure2()[0].period_s, 10.0);
        assert_eq!(figure2()[3].period_s, 1.0);
    }
}
