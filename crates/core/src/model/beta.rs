//! The β error bound (paper §3.4) on the simplifying assumption that the PE
//! with the most words also transfers the most blocks.
//!
//! `β = 1 + min_i max{ C_max(B_max − B_i)/(C_i·B_max), B_max(C_max − C_i)/(B_i·C_max) }`
//!
//! β is an application property (machine-independent), equal to 1 when one
//! PE attains both maxima and never larger than 2.

/// Computes β from per-PE `(words, blocks)` loads. PEs with no communication
/// are skipped; with no communicating PEs at all, β = 1.
///
/// # Examples
///
/// ```
/// use quake_core::model::beta::beta_bound;
/// // One PE attains both maxima → the model is exact.
/// assert_eq!(beta_bound(&[(100, 10), (80, 8)]), 1.0);
/// ```
pub fn beta_bound(per_pe: &[(u64, u64)]) -> f64 {
    let c_max = per_pe.iter().map(|&(c, _)| c).max().unwrap_or(0) as f64;
    let b_max = per_pe.iter().map(|&(_, b)| b).max().unwrap_or(0) as f64;
    if c_max == 0.0 || b_max == 0.0 {
        return 1.0;
    }
    let inner = per_pe
        .iter()
        .filter(|&&(c, b)| c > 0 && b > 0)
        .map(|&(c, b)| {
            let ci = c as f64;
            let bi = b as f64;
            let t1 = c_max * (b_max - bi) / (ci * b_max);
            let t2 = b_max * (c_max - ci) / (bi * c_max);
            t1.max(t2)
        })
        .fold(f64::INFINITY, f64::min);
    if inner.is_finite() {
        1.0 + inner
    } else {
        1.0
    }
}

/// The exact communication time `max_i (B_i·T_l + C_i·T_w)` over per-PE
/// loads, against which the model's `B_max·T_l + C_max·T_w` overestimates by
/// at most a factor of β.
pub fn exact_comm_time(per_pe: &[(u64, u64)], t_l: f64, t_w: f64) -> f64 {
    per_pe
        .iter()
        .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
        .fold(0.0, f64::max)
}

/// The modeled communication time `B_max·T_l + C_max·T_w`.
pub fn modeled_comm_time(per_pe: &[(u64, u64)], t_l: f64, t_w: f64) -> f64 {
    let c_max = per_pe.iter().map(|&(c, _)| c).max().unwrap_or(0) as f64;
    let b_max = per_pe.iter().map(|&(_, b)| b).max().unwrap_or(0) as f64;
    b_max * t_l + c_max * t_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_is_one_when_maxima_coincide() {
        assert_eq!(beta_bound(&[(100, 10), (90, 9), (50, 5)]), 1.0);
    }

    #[test]
    fn beta_exceeds_one_when_maxima_split() {
        // PE 0 has the most words, PE 1 the most blocks.
        let beta = beta_bound(&[(100, 5), (50, 10)]);
        assert!(beta > 1.0);
        assert!(beta <= 2.0);
    }

    #[test]
    fn beta_of_empty_or_silent_is_one() {
        assert_eq!(beta_bound(&[]), 1.0);
        assert_eq!(beta_bound(&[(0, 0), (0, 0)]), 1.0);
    }

    #[test]
    fn beta_bounds_the_model_overestimate() {
        // Property from the paper: modeled T_comm ≤ β · exact T_comm for all
        // (T_l, T_w) ≥ 0. Spot-check on a grid.
        let loads = [(100u64, 5u64), (60, 10), (80, 7), (20, 2)];
        let beta = beta_bound(&loads);
        for &t_l in &[0.0, 1e-6, 1e-5, 1e-3] {
            for &t_w in &[0.0, 1e-9, 1e-7, 1e-6] {
                if t_l == 0.0 && t_w == 0.0 {
                    continue;
                }
                let exact = exact_comm_time(&loads, t_l, t_w);
                let modeled = modeled_comm_time(&loads, t_l, t_w);
                assert!(modeled >= exact, "model must be an overestimate");
                assert!(
                    modeled <= beta * exact * (1.0 + 1e-12),
                    "β bound violated: {modeled} > {beta} × {exact}"
                );
            }
        }
    }

    #[test]
    fn beta_never_exceeds_two_on_random_loads() {
        // β ≤ 2 is claimed in the paper for all applications; check
        // adversarial-ish configurations.
        let configs: Vec<Vec<(u64, u64)>> = vec![
            vec![(1_000_000, 2), (2, 1_000_000)],
            vec![(10, 1), (9, 100), (8, 50)],
            vec![(5, 5)],
            vec![(1, 1000), (1000, 1)],
        ];
        for loads in configs {
            let b = beta_bound(&loads);
            assert!((1.0..=2.0).contains(&b), "β = {b} for {loads:?}");
        }
    }

    #[test]
    fn exact_and_modeled_agree_for_single_pe() {
        let loads = [(100u64, 10u64)];
        assert_eq!(
            exact_comm_time(&loads, 1e-6, 1e-9),
            modeled_comm_time(&loads, 1e-6, 1e-9)
        );
    }
}
