//! Bisection-bandwidth requirements (paper §4.2, Figure 8).
//!
//! Given the traffic matrix `m_ij` (words from PE i to PE j per SMVP), the
//! words crossing the bisection `{0…p/2−1} | {p/2…p−1}` are
//! `V = Σ (m_ij + m_ji)` over cross pairs, and the *sustained bisection
//! bandwidth* needed to complete the communication phase in time
//! `C_max·T_c` is `V / (C_max·T_c)`.

use crate::machine::WORD_BYTES;

/// Words crossing the canonical bisection (first half of PEs vs second
/// half), both directions, for a `p × p` traffic matrix in words.
///
/// # Panics
///
/// Panics if `traffic` is not square.
pub fn bisection_words(traffic: &[Vec<u64>]) -> u64 {
    let p = traffic.len();
    for row in traffic {
        assert_eq!(row.len(), p, "traffic matrix must be square");
    }
    let half = p / 2;
    let mut v = 0u64;
    for i in 0..half {
        for j in half..p {
            v += traffic[i][j] + traffic[j][i];
        }
    }
    v
}

/// Required sustained bisection bandwidth in bytes/second:
/// `V / (C_max · T_c)` words/s, converted to bytes.
///
/// # Panics
///
/// Panics unless `c_max > 0` and `t_c > 0`.
pub fn required_bisection_bandwidth(v_words: u64, c_max: u64, t_c: f64) -> f64 {
    assert!(c_max > 0, "C_max must be positive");
    assert!(t_c > 0.0, "T_c must be positive");
    let comm_phase_seconds = c_max as f64 * t_c;
    v_words as f64 * WORD_BYTES / comm_phase_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_words_counts_cross_pairs_only() {
        // 4 PEs; only (0,2) and (1,3) cross the bisection {0,1}|{2,3}.
        let t = vec![
            vec![0, 5, 7, 0],
            vec![5, 0, 0, 9],
            vec![7, 0, 0, 3],
            vec![0, 9, 3, 0],
        ];
        // (0,2): 7+7, (0,3): 0, (1,2): 0, (1,3): 9+9 → 32.
        assert_eq!(bisection_words(&t), 32);
    }

    #[test]
    fn no_cross_traffic_gives_zero() {
        let t = vec![vec![0, 9], vec![9, 0]];
        // p = 2: pair (0,1) crosses → 18.
        assert_eq!(bisection_words(&t), 18);
        let isolated = vec![
            vec![0, 4, 0, 0],
            vec![4, 0, 0, 0],
            vec![0, 0, 0, 6],
            vec![0, 0, 6, 0],
        ];
        assert_eq!(bisection_words(&isolated), 0);
    }

    #[test]
    fn bandwidth_formula() {
        // V = 1000 words, comm phase = 16260 words × 28.6 ns ≈ 465 µs.
        let bw = required_bisection_bandwidth(1000, 16_260, 28.6e-9);
        let expect = 1000.0 * 8.0 / (16_260.0 * 28.6e-9);
        assert!((bw - expect).abs() < 1.0);
    }

    #[test]
    fn bandwidth_scales_with_efficiency_demand() {
        // Halving T_c (a tighter efficiency target) doubles the requirement.
        let slow = required_bisection_bandwidth(1000, 100, 2e-8);
        let fast = required_bisection_bandwidth(1000, 100, 1e-8);
        assert!((fast / slow - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_traffic_panics() {
        let t = vec![vec![0, 1], vec![0]];
        let _ = bisection_words(&t);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cmax_panics() {
        let _ = required_bisection_bandwidth(10, 0, 1e-9);
    }
}
