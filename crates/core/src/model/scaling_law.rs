//! The surface-to-volume scaling law behind §4.1's discussion.
//!
//! "A good partition of an n-node 3D mesh will produce O(n^{2/3}) shared
//! nodes … hence the computation/communication ratio is O(n^{1/3}), and a
//! factor-of-ten increase in n yields roughly a factor-of-two increase in
//! that ratio." This module fits the two coefficients of that law to
//! measured instances and extrapolates — answering the paper's warning that
//! "we cannot rely on simply increasing the problem size to guarantee good
//! efficiency" with numbers.
//!
//! Model: with `m = n/p` nodes per PE,
//! `F ≈ a·m` (volume work) and `C_max ≈ b·m^{2/3}` (surface traffic), so
//! `F/C_max ≈ (a/b)·m^{1/3}`.

use crate::characterize::SmvpInstance;

/// Fitted coefficients of the volume/surface law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingLaw {
    /// Flops per node per SMVP (`F = a·m`).
    pub a: f64,
    /// Surface coefficient (`C_max = b·m^{2/3}` words).
    pub b: f64,
}

impl ScalingLaw {
    /// Fits the law to measured instances by log-space least squares with
    /// the exponents *fixed* at 1 and 2/3 (only the coefficients are free).
    /// `nodes(instance)` supplies the mesh node count for each row.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or any instance has no communication.
    pub fn fit<F: Fn(&SmvpInstance) -> u64>(instances: &[SmvpInstance], nodes: F) -> ScalingLaw {
        assert!(!instances.is_empty(), "need at least one instance");
        let mut log_a = 0.0;
        let mut log_b = 0.0;
        for inst in instances {
            assert!(
                inst.c_max > 0,
                "instance {} has no communication",
                inst.label()
            );
            let m = nodes(inst) as f64 / inst.subdomains as f64;
            log_a += (inst.f as f64 / m).ln();
            log_b += (inst.c_max as f64 / m.powf(2.0 / 3.0)).ln();
        }
        let k = instances.len() as f64;
        ScalingLaw {
            a: (log_a / k).exp(),
            b: (log_b / k).exp(),
        }
    }

    /// Predicted flops per PE for `n` nodes on `p` PEs.
    pub fn predict_f(&self, n: u64, p: usize) -> f64 {
        self.a * n as f64 / p as f64
    }

    /// Predicted `C_max` (words) for `n` nodes on `p` PEs.
    pub fn predict_c_max(&self, n: u64, p: usize) -> f64 {
        self.b * (n as f64 / p as f64).powf(2.0 / 3.0)
    }

    /// Predicted computation/communication ratio `F/C_max`.
    pub fn predict_ratio(&self, n: u64, p: usize) -> f64 {
        self.predict_f(n, p) / self.predict_c_max(n, p)
    }

    /// The node count per PE required to reach a given `F/C_max` ratio —
    /// the iso-efficiency question. Inverting `ratio = (a/b)·m^{1/3}`.
    pub fn nodes_per_pe_for_ratio(&self, ratio: f64) -> f64 {
        (ratio * self.b / self.a).powi(3)
    }

    /// Relative fit error of the ratio prediction on an instance.
    pub fn ratio_error<F: Fn(&SmvpInstance) -> u64>(&self, inst: &SmvpInstance, nodes: F) -> f64 {
        let predicted = self.predict_ratio(nodes(inst), inst.subdomains);
        (predicted - inst.comp_comm_ratio()).abs() / inst.comp_comm_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata;

    fn paper_nodes(inst: &SmvpInstance) -> u64 {
        paperdata::figure2()
            .iter()
            .find(|r| r.app == inst.app)
            .expect("known app")
            .nodes
    }

    #[test]
    fn fits_paper_table_within_factor_two() {
        // Fit on all 24 paper instances. The law is asymptotic in m = n/p:
        // at m ≥ ~200 nodes per PE every ratio is predicted well; below that
        // (sf10/128 has only 57 nodes per PE, nearly all on the surface) it
        // degrades gracefully.
        let instances = paperdata::figure7();
        let law = ScalingLaw::fit(&instances, paper_nodes);
        for inst in &instances {
            let m = paper_nodes(inst) as f64 / inst.subdomains as f64;
            let err = law.ratio_error(inst, paper_nodes);
            let bound = if m >= 200.0 { 1.0 } else { 1.5 };
            assert!(
                err < bound,
                "{} (m = {m:.0}): predicted {:.0} vs measured {:.0}",
                inst.label(),
                law.predict_ratio(paper_nodes(inst), inst.subdomains),
                inst.comp_comm_ratio()
            );
        }
    }

    #[test]
    fn ten_x_problem_gives_about_two_x_ratio() {
        // The paper's headline scaling observation, from the fitted law.
        let law = ScalingLaw::fit(&paperdata::figure7(), paper_nodes);
        let r1 = law.predict_ratio(100_000, 16);
        let r10 = law.predict_ratio(1_000_000, 16);
        let factor = r10 / r1;
        assert!(
            (2.0..2.3).contains(&factor),
            "10x nodes should give 10^(1/3) ≈ 2.15x ratio, got {factor}"
        );
    }

    #[test]
    fn iso_ratio_inversion_round_trips() {
        let law = ScalingLaw { a: 130.0, b: 40.0 };
        for ratio in [50.0, 200.0, 800.0] {
            let m = law.nodes_per_pe_for_ratio(ratio);
            let n = (m * 64.0) as u64;
            let back = law.predict_ratio(n, 64);
            assert!((back - ratio).abs() < 0.02 * ratio, "{back} vs {ratio}");
        }
    }

    #[test]
    fn coefficients_are_physical() {
        // a ≈ flops per node ≈ 2·9·degree ≈ 250 for degree ~14; b modest.
        let law = ScalingLaw::fit(&paperdata::figure7(), paper_nodes);
        assert!(
            (100.0..500.0).contains(&law.a),
            "flops/node {} should be O(2·9·14)",
            law.a
        );
        assert!(
            law.b > 1.0 && law.b < 1_000.0,
            "surface coefficient {}",
            law.b
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_fit_panics() {
        let _ = ScalingLaw::fit(&[], |_| 1);
    }
}
