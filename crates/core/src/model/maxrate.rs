//! The max-rate communication model for node-aggregated exchanges.
//!
//! The paper's Eq. (2) is a postal model: every PE pays one block latency
//! per neighbor and one word time per word, independently. Bienz, Gropp &
//! Olson observe that on clustered machines the binding resource is not the
//! per-PE postal cost but each *node's* injection port: all PEs of a node
//! share one link to the network, so the communication phase cannot finish
//! before the busiest node has pushed (and pulled) its aggregated boundary
//! traffic through that port. With intra-node gathering, exactly one merged
//! block per (node, node) pair crosses the slow link, and the phase time is
//!
//! ```text
//! T = max over nodes N of  B_N · T_l + C_N · T_w
//! ```
//!
//! where `C_N` counts the words node `N` injects plus the words it drains
//! (its share of the queue) and `B_N` counts the merged blocks it sends plus
//! receives (each paying one latency on the shared port). When every PE is
//! its own node this degenerates to Eq. (2)'s per-PE quantities exactly.
//!
//! This module holds the machine-level math and the contiguous PE→node
//! chunking shared by the executor, the transports, and the simulator; the
//! mesh-level [`MaxRateAnalysis`](../../../quake_partition/comm/index.html)
//! builds the per-node loads from a partitioned mesh's traffic matrix.

use crate::machine::Network;
use std::ops::Range;

/// One node's injection-port load per communication phase, counting both
/// directions (sent + received), cross-node traffic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeLoad {
    /// 64-bit words injected + drained per exchange (`C_N`).
    pub words: u64,
    /// Merged blocks sent + received per exchange (`B_N`).
    pub blocks: u64,
}

/// The node owning index `idx` when `count` items are split contiguously
/// over `nodes` nodes with balanced chunking (the same convention as the
/// executor's `pe_chunk`): node `n` owns `count·n/nodes .. count·(n+1)/nodes`.
///
/// # Panics
///
/// Panics if `nodes == 0`, `nodes > count`, or `idx >= count`.
pub fn node_of(count: usize, nodes: usize, idx: usize) -> usize {
    assert!(nodes > 0, "need at least one node");
    assert!(nodes <= count, "more nodes than items");
    assert!(idx < count, "index {idx} out of {count} items");
    // Inverse of the chunk boundaries: the unique n with
    // count·n/nodes <= idx < count·(n+1)/nodes under floor division.
    ((idx + 1) * nodes - 1) / count
}

/// The contiguous index range node `n` owns under the same chunking.
///
/// # Panics
///
/// Panics if `nodes == 0`, `nodes > count`, or `n >= nodes`.
pub fn node_range(count: usize, nodes: usize, n: usize) -> Range<usize> {
    assert!(nodes > 0, "need at least one node");
    assert!(nodes <= count, "more nodes than items");
    assert!(n < nodes, "node {n} out of {nodes} nodes");
    (count * n / nodes)..(count * (n + 1) / nodes)
}

/// The max-rate phase time `max_N (B_N·t_l + C_N·t_w)` in seconds.
pub fn max_rate_time(loads: &[NodeLoad], network: &Network) -> f64 {
    loads
        .iter()
        .map(|l| l.blocks as f64 * network.t_l + l.words as f64 * network.t_w)
        .fold(0.0, f64::max)
}

/// Two-level phase time: the slow-link max-rate term plus the intra-node
/// gather leg billed at a (faster) local link. The gather leg is the
/// busiest node's *intra-node* postal cost — the PEs of one node still
/// exchange per-edge blocks locally before the merged block is injected.
pub fn two_level_time(
    cross: &[NodeLoad],
    intra: &[NodeLoad],
    slow: &Network,
    fast: &Network,
) -> f64 {
    max_rate_time(cross, slow) + max_rate_time(intra, fast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_of_inverts_node_range() {
        for count in 1usize..40 {
            for nodes in 1..=count {
                for n in 0..nodes {
                    for idx in node_range(count, nodes, n) {
                        assert_eq!(
                            node_of(count, nodes, idx),
                            n,
                            "count={count} nodes={nodes} idx={idx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn node_ranges_tile_the_index_space() {
        for count in 1usize..40 {
            for nodes in 1..=count {
                let mut next = 0;
                for n in 0..nodes {
                    let r = node_range(count, nodes, n);
                    assert_eq!(r.start, next, "gap at node {n}");
                    assert!(
                        !r.is_empty(),
                        "empty node {n} (count={count}, nodes={nodes})"
                    );
                    next = r.end;
                }
                assert_eq!(next, count);
            }
        }
    }

    #[test]
    #[should_panic(expected = "more nodes than items")]
    fn more_nodes_than_items_is_rejected() {
        let _ = node_of(2, 3, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_is_rejected() {
        let _ = node_range(4, 0, 0);
    }

    #[test]
    fn max_rate_time_is_the_busiest_port() {
        let net = Network {
            name: "n",
            t_l: 1e-6,
            t_w: 1e-8,
        };
        let loads = [
            NodeLoad {
                words: 100,
                blocks: 2,
            },
            NodeLoad {
                words: 10,
                blocks: 8,
            },
        ];
        let t0: f64 = 2.0 * 1e-6 + 100.0 * 1e-8;
        let t1: f64 = 8.0 * 1e-6 + 10.0 * 1e-8;
        assert!((max_rate_time(&loads, &net) - t0.max(t1)).abs() < 1e-18);
    }

    #[test]
    fn empty_loads_cost_nothing() {
        assert_eq!(max_rate_time(&[], &Network::cray_t3e()), 0.0);
    }

    #[test]
    fn two_level_adds_the_gather_leg() {
        let slow = Network {
            name: "slow",
            t_l: 10e-6,
            t_w: 55e-9,
        };
        let fast = Network {
            name: "fast",
            t_l: 1e-6,
            t_w: 5e-9,
        };
        let cross = [NodeLoad {
            words: 1000,
            blocks: 2,
        }];
        let intra = [NodeLoad {
            words: 300,
            blocks: 6,
        }];
        let t = two_level_time(&cross, &intra, &slow, &fast);
        let expect = (2.0 * 10e-6 + 1000.0 * 55e-9) + (6.0 * 1e-6 + 300.0 * 5e-9);
        assert!((t - expect).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn chunking_matches_linear_scan(count in 1usize..512, nodes_seed in 0usize..512) {
            let nodes = nodes_seed % count + 1;
            // The formula must agree with a direct scan of the boundaries.
            for idx in 0..count {
                let by_scan = (0..nodes)
                    .position(|n| node_range(count, nodes, n).contains(&idx))
                    .expect("ranges tile");
                prop_assert_eq!(node_of(count, nodes, idx), by_scan);
            }
        }

        #[test]
        fn aggregation_never_increases_blocks(
            words in proptest::collection::vec(0u64..10_000, 2..32),
        ) {
            // Folding per-PE loads into one node keeps the word total but
            // can only shrink the latency term: one merged block per
            // remote node replaces one per remote PE.
            let net = Network { name: "n", t_l: 1e-6, t_w: 1e-9 };
            let flat: Vec<NodeLoad> = words
                .iter()
                .map(|&w| NodeLoad { words: w, blocks: if w > 0 { 2 } else { 0 } })
                .collect();
            let merged = [NodeLoad {
                words: words.iter().sum(),
                blocks: if words.iter().any(|&w| w > 0) { 2 } else { 0 },
            }];
            // The merged node pays the full word bill but at most one
            // send + one receive latency; per-word time is conserved.
            let flat_latency: f64 = flat.iter().map(|l| l.blocks as f64).sum::<f64>() * net.t_l;
            let merged_latency = merged[0].blocks as f64 * net.t_l;
            prop_assert!(merged_latency <= flat_latency + 1e-18);
            let merged_words: u64 = merged[0].words;
            prop_assert_eq!(merged_words, words.iter().sum::<u64>());
        }
    }
}
