//! Measured-vs-predicted validation of the paper's models.
//!
//! The characterization pipeline predicts, for each application × PE count,
//! the busiest-PE flop count `F`, word count `C_max`, and block count
//! `B_max`; Eq. (1) and Eq. (2) then turn those into phase-time predictions.
//! This module closes the loop against an *instrumented run*: given per-PE
//! counters and phase times observed by an executor (e.g.
//! `quake_app::BspExecutor`), it
//!
//! 1. checks that the observed counters reproduce the characterization
//!    **exactly** (the counts are deterministic properties of the partition,
//!    so any mismatch is a bug, not noise);
//! 2. fits effective machine parameters `(T_l, T_w)` to the per-PE exchange
//!    times by least squares over `t_i ≈ B_i·T_l + C_i·T_w`;
//! 3. compares the Eq. (2) communication-time prediction
//!    `B_max·T_l + C_max·T_w` against the measured busiest-PE exchange time;
//! 4. brackets the model's pessimism by the §3.4 β bound; and
//! 5. re-derives the Eq. (1) required per-word communication time from the
//!    measured efficiency and checks it against the delivered
//!    `T_comm/C_max`.
//!
//! The module takes plain data so that `quake-core` stays independent of the
//! application crates that produce the measurements.

use std::fmt;

use crate::characterize::SmvpInstance;
use crate::model::beta::{beta_bound, exact_comm_time, modeled_comm_time};
use crate::model::eq1;

/// Per-SMVP measurements from one instrumented run.
///
/// All quantities are *per SMVP* (i.e. already divided by the step count)
/// and indexed by PE. Counter values are exact integers because the executor
/// performs the same traversal every step.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredSmvp {
    /// Flops executed by each PE.
    pub per_pe_flops: Vec<u64>,
    /// `(words, blocks)` transferred by each PE (sent + received).
    pub per_pe_loads: Vec<(u64, u64)>,
    /// Seconds each PE spent in the exchange phase.
    pub per_pe_exchange: Vec<f64>,
    /// Busiest-PE compute-phase seconds.
    pub t_compute: f64,
}

impl MeasuredSmvp {
    /// Busiest-PE flop count (the measured `F`).
    pub fn f_max(&self) -> u64 {
        self.per_pe_flops.iter().copied().max().unwrap_or(0)
    }

    /// Busiest-PE word count (the measured `C_max`).
    pub fn c_max(&self) -> u64 {
        self.per_pe_loads.iter().map(|&(c, _)| c).max().unwrap_or(0)
    }

    /// Busiest-PE block count (the measured `B_max`).
    pub fn b_max(&self) -> u64 {
        self.per_pe_loads.iter().map(|&(_, b)| b).max().unwrap_or(0)
    }

    /// Busiest-PE exchange time (the measured `T_comm`).
    pub fn t_comm(&self) -> f64 {
        self.per_pe_exchange.iter().copied().fold(0.0, f64::max)
    }
}

/// Effective machine parameters fitted from per-PE exchange times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedNetwork {
    /// Effective per-block latency in seconds.
    pub t_l: f64,
    /// Effective per-word transfer time in seconds.
    pub t_w: f64,
    /// Root-mean-square residual of the fit in seconds.
    pub residual_rms: f64,
}

/// Fits `t_i ≈ B_i·T_l + C_i·T_w` by unweighted least squares (no
/// intercept: a PE that communicates nothing spends no time exchanging).
///
/// Negative solutions are clamped to zero — with only a handful of PEs the
/// normal equations can go slightly negative on one axis, and negative
/// machine parameters are meaningless. Degenerate systems (fewer than two
/// distinct load vectors) fall back to attributing all time to whichever
/// axis has signal.
pub fn fit_network(per_pe_loads: &[(u64, u64)], per_pe_exchange: &[f64]) -> FittedNetwork {
    assert_eq!(
        per_pe_loads.len(),
        per_pe_exchange.len(),
        "loads and exchange times must cover the same PEs"
    );
    let (mut sbb, mut sbc, mut scc, mut sbt, mut sct) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (&(c, b), &t) in per_pe_loads.iter().zip(per_pe_exchange) {
        let (c, b) = (c as f64, b as f64);
        sbb += b * b;
        sbc += b * c;
        scc += c * c;
        sbt += b * t;
        sct += c * t;
    }
    let det = sbb * scc - sbc * sbc;
    // Relative threshold: the determinant of a well-conditioned 2×2 system
    // is of the order of the product of its diagonal entries.
    let (mut t_l, mut t_w) = if det > 1e-9 * sbb * scc {
        ((scc * sbt - sbc * sct) / det, (sbb * sct - sbc * sbt) / det)
    } else if scc > 0.0 {
        // Collinear loads (e.g. a single communicating PE): attribute the
        // whole time to the per-word axis, which dominates in practice.
        (0.0, sct / scc)
    } else {
        (0.0, 0.0)
    };
    t_l = t_l.max(0.0);
    t_w = t_w.max(0.0);
    let mut ss = 0.0;
    for (&(c, b), &t) in per_pe_loads.iter().zip(per_pe_exchange) {
        let r = t - (b as f64 * t_l + c as f64 * t_w);
        ss += r * r;
    }
    let n = per_pe_loads.len().max(1) as f64;
    FittedNetwork {
        t_l,
        t_w,
        residual_rms: (ss / n).sqrt(),
    }
}

/// The measured-vs-predicted comparison for one application × PE count.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The characterization-side prediction.
    pub predicted: SmvpInstance,
    /// Measured − predicted busiest-PE flops (must be 0).
    pub f_delta: i64,
    /// Measured − predicted `C_max` (must be 0).
    pub c_max_delta: i64,
    /// Measured − predicted `B_max` (must be 0).
    pub b_max_delta: i64,
    /// Effective machine parameters fitted from the run.
    pub fit: FittedNetwork,
    /// Measured busiest-PE exchange time per SMVP.
    pub t_comm_measured: f64,
    /// Eq. (2) prediction `B_max·T_l + C_max·T_w` under the fitted
    /// parameters.
    pub t_comm_predicted: f64,
    /// Relative error of the Eq. (2) prediction.
    pub eq2_rel_error: f64,
    /// The §3.4 β bound computed from the measured per-PE loads.
    pub beta: f64,
    /// Observed pessimism ratio `modeled/exact` under the fitted
    /// parameters; the model guarantees `1 ≤ ratio ≤ β`.
    pub beta_observed: f64,
    /// Busiest-PE compute time per SMVP.
    pub t_compute: f64,
    /// Effective per-flop time `T_f = t_compute / F`.
    pub t_f: f64,
    /// Measured efficiency `t_compute / (t_compute + t_comm)`.
    pub efficiency: f64,
    /// Per-word communication time Eq. (1) requires at the measured
    /// efficiency.
    pub eq1_required_tc: f64,
    /// Delivered per-word communication time `t_comm / C_max`.
    pub delivered_tc: f64,
    /// Relative error between required and delivered `T_c`.
    pub eq1_rel_error: f64,
}

impl ValidationReport {
    /// Whether the measured counters reproduce the characterization exactly.
    pub fn counters_match(&self) -> bool {
        self.f_delta == 0 && self.c_max_delta == 0 && self.b_max_delta == 0
    }

    /// Whether the observed pessimism ratio respects `1 ≤ ratio ≤ β`
    /// (within floating-point slack).
    pub fn beta_bracket_holds(&self) -> bool {
        self.beta_observed >= 1.0 - 1e-12 && self.beta_observed <= self.beta + 1e-12
    }
}

fn rel_err(measured: f64, predicted: f64) -> f64 {
    if predicted == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - predicted).abs() / predicted.abs()
    }
}

/// Compares one instrumented run against its characterization prediction.
///
/// # Examples
///
/// ```
/// use quake_core::characterize::SmvpInstance;
/// use quake_core::model::validate::{validate, MeasuredSmvp};
///
/// let predicted = SmvpInstance::new("sf2", 2, 1800, 120, 2, 60.0);
/// let measured = MeasuredSmvp {
///     per_pe_flops: vec![1800, 1700],
///     per_pe_loads: vec![(120, 2), (120, 2)],
///     per_pe_exchange: vec![3.2e-6, 3.1e-6],
///     t_compute: 1.8e-5,
/// };
/// let report = validate(&predicted, &measured);
/// assert!(report.counters_match());
/// assert!(report.beta_bracket_holds());
/// ```
pub fn validate(predicted: &SmvpInstance, measured: &MeasuredSmvp) -> ValidationReport {
    let fit = fit_network(&measured.per_pe_loads, &measured.per_pe_exchange);
    let t_comm_measured = measured.t_comm();
    let t_comm_predicted = modeled_comm_time(&measured.per_pe_loads, fit.t_l, fit.t_w);
    let exact = exact_comm_time(&measured.per_pe_loads, fit.t_l, fit.t_w);
    let beta_observed = if exact > 0.0 {
        t_comm_predicted / exact
    } else {
        1.0
    };

    let f = measured.f_max();
    let c_max = measured.c_max();
    let t_f = if f > 0 {
        measured.t_compute / f as f64
    } else {
        0.0
    };
    let total = measured.t_compute + t_comm_measured;
    let efficiency = if total > 0.0 {
        measured.t_compute / total
    } else {
        1.0
    };
    let measured_instance = SmvpInstance::new(
        predicted.app.clone(),
        predicted.subdomains,
        f,
        c_max,
        measured.b_max(),
        predicted.m_avg,
    );
    let eq1_required_tc = if c_max > 0 && t_f > 0.0 && efficiency > 0.0 && efficiency < 1.0 {
        eq1::required_tc(&measured_instance, efficiency, t_f)
    } else {
        0.0
    };
    let delivered_tc = if c_max > 0 {
        t_comm_measured / c_max as f64
    } else {
        0.0
    };

    ValidationReport {
        predicted: predicted.clone(),
        f_delta: f as i64 - predicted.f as i64,
        c_max_delta: c_max as i64 - predicted.c_max as i64,
        b_max_delta: measured.b_max() as i64 - predicted.b_max as i64,
        fit,
        t_comm_measured,
        t_comm_predicted,
        eq2_rel_error: rel_err(t_comm_measured, t_comm_predicted),
        beta: beta_bound(&measured.per_pe_loads),
        beta_observed,
        t_compute: measured.t_compute,
        t_f,
        efficiency,
        eq1_required_tc,
        delivered_tc,
        eq1_rel_error: rel_err(delivered_tc, eq1_required_tc),
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "measured vs predicted — {} on {} PEs",
            self.predicted.app, self.predicted.subdomains
        )?;
        writeln!(
            f,
            "  counters   F = {} (Δ {}), C_max = {} (Δ {}), B_max = {} (Δ {})  [{}]",
            self.predicted.f as i64 + self.f_delta,
            self.f_delta,
            self.predicted.c_max as i64 + self.c_max_delta,
            self.c_max_delta,
            self.predicted.b_max as i64 + self.b_max_delta,
            self.b_max_delta,
            if self.counters_match() {
                "exact"
            } else {
                "MISMATCH"
            },
        )?;
        writeln!(
            f,
            "  fit        T_l = {:.3e} s/block, T_w = {:.3e} s/word (rms {:.2e} s)",
            self.fit.t_l, self.fit.t_w, self.fit.residual_rms
        )?;
        writeln!(
            f,
            "  eq (2)     T_comm measured = {:.3e} s, predicted = {:.3e} s (rel err {:.1}%)",
            self.t_comm_measured,
            self.t_comm_predicted,
            100.0 * self.eq2_rel_error
        )?;
        writeln!(
            f,
            "  beta       bound = {:.4}, observed modeled/exact = {:.4}  [{}]",
            self.beta,
            self.beta_observed,
            if self.beta_bracket_holds() {
                "within bound"
            } else {
                "VIOLATED"
            },
        )?;
        writeln!(
            f,
            "  eq (1)     E = {:.4}, T_f = {:.3e} s, required T_c = {:.3e} s, \
             delivered T_c = {:.3e} s (rel err {:.1}%)",
            self.efficiency,
            self.t_f,
            self.eq1_required_tc,
            self.delivered_tc,
            100.0 * self.eq1_rel_error
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_measured(t_l: f64, t_w: f64) -> MeasuredSmvp {
        let loads = vec![(900, 6), (720, 4), (610, 8), (480, 2)];
        let times = loads
            .iter()
            .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
            .collect();
        MeasuredSmvp {
            per_pe_flops: vec![18_000, 17_400, 16_100, 15_800],
            per_pe_loads: loads,
            per_pe_exchange: times,
            t_compute: 2.4e-4,
        }
    }

    #[test]
    fn fit_recovers_exact_parameters_from_noiseless_times() {
        let (t_l, t_w) = (8.0e-6, 4.0e-8);
        let m = synthetic_measured(t_l, t_w);
        let fit = fit_network(&m.per_pe_loads, &m.per_pe_exchange);
        assert!((fit.t_l - t_l).abs() < 1e-12, "t_l = {:e}", fit.t_l);
        assert!((fit.t_w - t_w).abs() < 1e-14, "t_w = {:e}", fit.t_w);
        assert!(fit.residual_rms < 1e-12);
    }

    #[test]
    fn eq2_prediction_is_exact_for_noiseless_times() {
        let m = synthetic_measured(8.0e-6, 4.0e-8);
        let predicted = SmvpInstance::new("syn", 4, 18_000, 900, 8, 450.0);
        let report = validate(&predicted, &m);
        assert!(report.counters_match());
        // The busiest-word PE (900, 6) is not the busiest-block PE (610, 8),
        // so Eq. (2) genuinely overestimates — but by less than β.
        assert!(report.t_comm_predicted >= report.t_comm_measured);
        assert!(report.beta_bracket_holds());
        assert!(report.beta <= 2.0 + 1e-12 && report.beta >= 1.0);
    }

    #[test]
    fn counter_mismatch_is_reported() {
        let m = synthetic_measured(8.0e-6, 4.0e-8);
        let predicted = SmvpInstance::new("syn", 4, 18_001, 900, 8, 450.0);
        let report = validate(&predicted, &m);
        assert!(!report.counters_match());
        assert_eq!(report.f_delta, -1);
    }

    #[test]
    fn eq1_identity_holds_for_measured_efficiency() {
        // Eq. (1) is algebraically exact when E, T_f, and T_c all come from
        // the same run: required T_c must equal delivered T_comm/C_max.
        let m = synthetic_measured(8.0e-6, 4.0e-8);
        let predicted = SmvpInstance::new("syn", 4, 18_000, 900, 8, 450.0);
        let report = validate(&predicted, &m);
        assert!(
            report.eq1_rel_error < 1e-9,
            "eq1 rel err = {:e}",
            report.eq1_rel_error
        );
    }

    #[test]
    fn degenerate_single_pe_run_fits_without_panicking() {
        let m = MeasuredSmvp {
            per_pe_flops: vec![10_000],
            per_pe_loads: vec![(0, 0)],
            per_pe_exchange: vec![0.0],
            t_compute: 1.0e-4,
        };
        let predicted = SmvpInstance::new("syn", 1, 10_000, 0, 0, 0.0);
        let report = validate(&predicted, &m);
        assert!(report.counters_match());
        assert_eq!(report.fit.t_l, 0.0);
        assert_eq!(report.fit.t_w, 0.0);
        assert_eq!(report.efficiency, 1.0);
        assert_eq!(report.eq1_rel_error, 0.0);
    }

    #[test]
    fn display_renders_all_sections() {
        let m = synthetic_measured(8.0e-6, 4.0e-8);
        let predicted = SmvpInstance::new("syn", 4, 18_000, 900, 8, 450.0);
        let text = validate(&predicted, &m).to_string();
        for needle in ["counters", "fit", "eq (2)", "beta", "eq (1)", "exact"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
