//! Equation (1): the high-level model of the communication phase.
//!
//! `T_c = (F / C_max) · ((1 − E) / E) · T_f`
//!
//! relates the required amortized time per communication word `T_c` (whose
//! inverse is the *sustained* per-PE bandwidth) to the application's
//! computation/communication ratio `F/C_max`, the target efficiency `E`, and
//! the processor's amortized time per flop `T_f`.

use crate::characterize::SmvpInstance;
use crate::machine::{Processor, WORD_BYTES};

/// The required amortized time per communication word `T_c` (seconds) to run
/// `instance` at efficiency `e` on a processor with time-per-flop `t_f`.
///
/// # Panics
///
/// Panics unless `0 < e < 1` and `t_f > 0`.
///
/// # Examples
///
/// ```
/// use quake_core::characterize::SmvpInstance;
/// use quake_core::model::eq1::required_tc;
/// let sf2_128 = SmvpInstance::new("sf2", 128, 838_224, 16_260, 50, 459.0);
/// let tc = required_tc(&sf2_128, 0.9, 5e-9);
/// assert!((tc - 2.864e-8).abs() < 1e-10); // ≈ 28.6 ns/word
/// ```
pub fn required_tc(instance: &SmvpInstance, e: f64, t_f: f64) -> f64 {
    assert!(e > 0.0 && e < 1.0, "efficiency must be in (0, 1), got {e}");
    assert!(t_f > 0.0, "time per flop must be positive");
    instance.comp_comm_ratio() * ((1.0 - e) / e) * t_f
}

/// The required *sustained* per-PE bandwidth `T_c⁻¹` in bytes/second
/// (Figure 9's quantity).
///
/// # Panics
///
/// Same as [`required_tc`].
pub fn required_sustained_bandwidth(instance: &SmvpInstance, e: f64, processor: &Processor) -> f64 {
    WORD_BYTES / required_tc(instance, e, processor.t_f)
}

/// The efficiency achieved when the communication system delivers an
/// amortized time per word of `t_c`: `E = T_comp / (T_comp + T_comm)`.
///
/// # Panics
///
/// Panics unless `t_f > 0` and `t_c ≥ 0`.
pub fn achieved_efficiency(instance: &SmvpInstance, t_c: f64, t_f: f64) -> f64 {
    assert!(t_f > 0.0, "time per flop must be positive");
    assert!(t_c >= 0.0, "time per word must be non-negative");
    let t_comp = instance.f as f64 * t_f;
    let t_comm = instance.c_max as f64 * t_c;
    t_comp / (t_comp + t_comm)
}

/// Total SMVP time `T_smvp = T_comp + T_comm = F·T_f + C_max·T_c` (seconds).
pub fn smvp_time(instance: &SmvpInstance, t_c: f64, t_f: f64) -> f64 {
    instance.f as f64 * t_f + instance.c_max as f64 * t_c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf2_128() -> SmvpInstance {
        SmvpInstance::new("sf2", 128, 838_224, 16_260, 50, 459.0)
    }

    #[test]
    fn paper_headline_number() {
        // Paper conclusion: 200-MFLOP PEs need ≈ 300 MB/s sustained for
        // sf2/128 at 90% efficiency.
        let bw =
            required_sustained_bandwidth(&sf2_128(), 0.9, &Processor::hypothetical_200mflops());
        assert!(
            (250e6..320e6).contains(&bw),
            "expected ≈ 300 MB/s, got {:.1} MB/s",
            bw / 1e6
        );
    }

    #[test]
    fn hundred_mflops_needs_about_120mb() {
        // Paper §4.3: 120 MB/s per PE suffices for all sf2 instances at 90%
        // on 100-MFLOP PEs. The binding instance is sf2/128.
        let bw =
            required_sustained_bandwidth(&sf2_128(), 0.9, &Processor::hypothetical_100mflops());
        assert!(
            (120e6..160e6).contains(&bw),
            "expected ≈ 120-140 MB/s, got {:.1} MB/s",
            bw / 1e6
        );
    }

    #[test]
    fn efficiency_is_inverse_of_required_tc() {
        let inst = sf2_128();
        for &e in &[0.5, 0.8, 0.9] {
            let tc = required_tc(&inst, e, 5e-9);
            let back = achieved_efficiency(&inst, tc, 5e-9);
            assert!((back - e).abs() < 1e-12, "E = {e} round-tripped to {back}");
        }
    }

    #[test]
    fn higher_efficiency_demands_more_bandwidth() {
        let inst = sf2_128();
        let pe = Processor::hypothetical_200mflops();
        let bw50 = required_sustained_bandwidth(&inst, 0.5, &pe);
        let bw90 = required_sustained_bandwidth(&inst, 0.9, &pe);
        // (1-E)/E: 1.0 at 50%, 1/9 at 90% → 9x tighter.
        assert!((bw90 / bw50 - 9.0).abs() < 1e-9);
    }

    #[test]
    fn faster_processors_demand_proportional_bandwidth() {
        let inst = sf2_128();
        let bw100 = required_sustained_bandwidth(&inst, 0.9, &Processor::hypothetical_100mflops());
        let bw200 = required_sustained_bandwidth(&inst, 0.9, &Processor::hypothetical_200mflops());
        assert!((bw200 / bw100 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_network_gives_full_efficiency() {
        assert_eq!(achieved_efficiency(&sf2_128(), 0.0, 5e-9), 1.0);
    }

    #[test]
    fn smvp_time_decomposes() {
        let inst = sf2_128();
        let t = smvp_time(&inst, 28.6e-9, 5e-9);
        let t_comp = inst.f as f64 * 5e-9;
        assert!(t > t_comp);
        assert!((t - (t_comp + 16_260.0 * 28.6e-9)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_panics() {
        let _ = required_tc(&sf2_128(), 1.0, 5e-9);
    }
}
