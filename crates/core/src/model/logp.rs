//! LogP / LogGP: the general-purpose model the paper positions its
//! equations against (§3.3).
//!
//! LogP describes a machine by latency `L`, per-message processor overhead
//! `o`, inter-message gap `g`, and processor count `P`; LogGP adds a
//! per-byte gap `G` for long messages. The paper notes its `T_l` "is
//! similar to the overhead parameter o in LogP", while `T_f`, `T_w`, `F`,
//! `B_max`, `C_max` have no LogP counterparts. This module makes the
//! correspondence executable: under the mapping `o ↔ T_l`, `G ↔ T_w`,
//! the LogGP estimate of the SMVP's communication phase converges to
//! Equation (2)'s `B_max·T_l + C_max·T_w` as `L` and `g` vanish.

use crate::machine::Network;

/// LogGP machine parameters (seconds; `gap_per_word` is per 64-bit word to
/// match the paper's units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGp {
    /// Wire latency `L`.
    pub latency: f64,
    /// Per-message processor overhead `o` (paid on both send and receive).
    pub overhead: f64,
    /// Minimum gap between message injections `g`.
    pub gap: f64,
    /// Per-word gap `G` for long messages (LogGP extension).
    pub gap_per_word: f64,
}

impl LogGp {
    /// The natural mapping from this reproduction's network parameters:
    /// `o = T_l`, `G = T_w`, with explicit wire latency and injection gap.
    pub fn from_network(network: &Network, latency: f64, gap: f64) -> Self {
        LogGp {
            latency,
            overhead: network.t_l,
            gap: gap.max(0.0),
            gap_per_word: network.t_w,
        }
    }

    /// LogGP cost of one `words`-word message end to end:
    /// `o + (words − 1)·G + L + o`.
    pub fn message_time(&self, words: u64) -> f64 {
        2.0 * self.overhead + self.latency + words.saturating_sub(1) as f64 * self.gap_per_word
    }

    /// LogGP estimate of a PE's communication phase given its block and
    /// word counts (`B_i` messages totaling `C_i` words, sends and receives
    /// combined): each message costs an overhead slot serialized at the
    /// processor, words stream at the per-word gap, message injections are
    /// separated by at least `g`, and one terminal latency is exposed.
    pub fn pe_comm_time(&self, blocks: u64, words: u64) -> f64 {
        let per_message = self.overhead.max(self.gap);
        blocks as f64 * per_message + words as f64 * self.gap_per_word + self.latency
    }

    /// The phase estimate over all PEs: the slowest PE bounds the phase,
    /// exactly as in Equation (2)'s derivation.
    pub fn comm_phase_time(&self, loads: &[(u64, u64)]) -> f64 {
        loads
            .iter()
            .map(|&(c, b)| self.pe_comm_time(b, c))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::beta::modeled_comm_time;

    #[test]
    fn converges_to_equation_2_as_l_and_g_vanish() {
        let net = Network {
            name: "x",
            t_l: 5e-6,
            t_w: 40e-9,
        };
        let loads = [(10_000u64, 40u64), (8_000, 44), (12_000, 36)];
        let loggp = LogGp::from_network(&net, 0.0, 0.0);
        let loggp_time = loggp.comm_phase_time(&loads);
        let eq2_time = modeled_comm_time(&loads, net.t_l, net.t_w);
        // Eq. (2) takes maxima independently (pessimistic); LogGP here takes
        // the max per PE. They agree when one PE dominates both.
        let exact = loads
            .iter()
            .map(|&(c, b)| b as f64 * net.t_l + c as f64 * net.t_w)
            .fold(0.0, f64::max);
        assert!((loggp_time - exact).abs() < 1e-15);
        assert!(eq2_time >= loggp_time);
    }

    #[test]
    fn message_time_formula() {
        let m = LogGp {
            latency: 1e-6,
            overhead: 2e-6,
            gap: 0.0,
            gap_per_word: 10e-9,
        };
        // 1 word: 2o + L.
        assert!((m.message_time(1) - 5e-6).abs() < 1e-18);
        // 101 words: + 100 G.
        assert!((m.message_time(101) - (5e-6 + 1e-6)).abs() < 1e-15);
        assert!((m.message_time(0) - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn gap_dominates_when_larger_than_overhead() {
        let m = LogGp {
            latency: 0.0,
            overhead: 1e-6,
            gap: 4e-6,
            gap_per_word: 0.0,
        };
        // 10 messages at the injection gap, not the overhead.
        assert!((m.pe_comm_time(10, 0) - 40e-6).abs() < 1e-15);
    }

    #[test]
    fn latency_exposed_once() {
        let m = LogGp {
            latency: 7e-6,
            overhead: 1e-6,
            gap: 0.0,
            gap_per_word: 0.0,
        };
        assert!((m.pe_comm_time(2, 0) - 9e-6).abs() < 1e-15);
        assert_eq!(m.comm_phase_time(&[]), 0.0);
    }

    #[test]
    fn from_network_maps_paper_parameters() {
        let net = Network::cray_t3e();
        let m = LogGp::from_network(&net, 1e-6, 0.5e-6);
        assert_eq!(m.overhead, 22e-6);
        assert_eq!(m.gap_per_word, 55e-9);
        assert_eq!(m.latency, 1e-6);
        assert_eq!(m.gap, 0.5e-6);
    }
}
