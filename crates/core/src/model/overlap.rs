//! Overlapping computation and communication: the paper's footnote 1.
//!
//! The Quake implementations keep the phases separate ("by not modeling any
//! overlap, we obtain conservative bandwidth and latency estimates"), but
//! the paper notes overlap is possible in principle and its conclusions
//! call for "latency hiding techniques". This module quantifies the best
//! case: with perfect overlap the SMVP takes `max(T_comp, T_comm)` instead
//! of their sum, which relaxes the network requirement by at most the
//! factor the phases are imbalanced — and not at all once communication
//! dominates.

use crate::characterize::SmvpInstance;

/// SMVP time with perfectly overlapped phases: `max(T_comp, T_comm)`.
pub fn overlapped_smvp_time(instance: &SmvpInstance, t_c: f64, t_f: f64) -> f64 {
    let t_comp = instance.f as f64 * t_f;
    let t_comm = instance.c_max as f64 * t_c;
    t_comp.max(t_comm)
}

/// Speedup of perfect overlap over the paper's phase-separated execution:
/// `(T_comp + T_comm) / max(T_comp, T_comm)`, always in `[1, 2]`.
pub fn overlap_speedup(instance: &SmvpInstance, t_c: f64, t_f: f64) -> f64 {
    let t_comp = instance.f as f64 * t_f;
    let t_comm = instance.c_max as f64 * t_c;
    if t_comp.max(t_comm) == 0.0 {
        return 1.0;
    }
    (t_comp + t_comm) / t_comp.max(t_comm)
}

/// The largest amortized time per word `T_c` that still hides communication
/// entirely under computation (`T_comm ≤ T_comp`): the overlap analogue of
/// Equation (1)'s requirement. Unlike Eq. (1), this does not depend on a
/// target efficiency — under full overlap, hiding is binary.
///
/// # Panics
///
/// Panics if the instance has no communication.
pub fn fully_hidden_tc(instance: &SmvpInstance, t_f: f64) -> f64 {
    assert!(instance.c_max > 0, "instance has no communication");
    instance.f as f64 * t_f / instance.c_max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Processor;
    use crate::model::eq1::required_tc;
    use crate::paperdata;

    fn sf2_128() -> SmvpInstance {
        paperdata::figure7_instance("sf2", 128).expect("row")
    }

    #[test]
    fn speedup_is_bounded_by_two() {
        let inst = sf2_128();
        for &t_c in &[1e-9, 28.6e-9, 1e-7, 1e-6, 1e-5] {
            let s = overlap_speedup(&inst, t_c, 5e-9);
            assert!((1.0..=2.0).contains(&s), "speedup {s} at t_c = {t_c}");
        }
    }

    #[test]
    fn balanced_phases_gain_exactly_two() {
        let inst = sf2_128();
        // Choose t_c so T_comm == T_comp.
        let t_f = 5e-9;
        let t_c = inst.f as f64 * t_f / inst.c_max as f64;
        assert!((overlap_speedup(&inst, t_c, t_f) - 2.0).abs() < 1e-12);
        let t = overlapped_smvp_time(&inst, t_c, t_f);
        assert!((t - inst.f as f64 * t_f).abs() < 1e-12);
    }

    #[test]
    fn hidden_tc_is_the_e_half_requirement() {
        // T_comm ≤ T_comp is exactly the E = 0.5 point of Eq. (1): overlap
        // turns a 50%-efficient separated schedule into a fully hidden one.
        let inst = sf2_128();
        let t_f = Processor::hypothetical_200mflops().t_f;
        let hidden = fully_hidden_tc(&inst, t_f);
        let eq1_half = required_tc(&inst, 0.5, t_f);
        assert!((hidden - eq1_half).abs() < 1e-18);
        // And it is 9x looser than the separated E = 0.9 requirement.
        let eq1_ninety = required_tc(&inst, 0.9, t_f);
        assert!((hidden / eq1_ninety - 9.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_cannot_rescue_comm_dominated_machines() {
        // Once T_comm >> T_comp, overlap gains almost nothing.
        let inst = sf2_128();
        let t_f = 5e-9;
        let slow_t_c = 100.0 * fully_hidden_tc(&inst, t_f);
        let s = overlap_speedup(&inst, slow_t_c, t_f);
        assert!(s < 1.02, "speedup {s} should vanish when comm dominates");
    }

    #[test]
    fn silent_instance_speedup_is_one() {
        let inst = SmvpInstance::new("x", 1, 0, 0, 0, 0.0);
        assert_eq!(overlap_speedup(&inst, 1e-9, 1e-9), 1.0);
    }
}
