//! The paper's SMVP performance models.
//!
//! * [`eq1`] — the high-level model relating sustained communication
//!   bandwidth to computation rate and target efficiency;
//! * [`eq2`] — the low-level model in terms of block latency and burst
//!   bandwidth, including half-bandwidth design points;
//! * [`beta`] — the §3.4 error bound on the model's pessimism;
//! * [`logp`] — the LogP/LogGP correspondence discussed in §3.3;
//! * [`maxrate`] — the injection-bandwidth-limited max-rate model for
//!   node-aggregated exchanges (Bienz, Gropp & Olson);
//! * [`scaling_law`] — §4.1's O(n^{1/3}) surface-to-volume law, fitted;
//! * [`overlap`] — the footnote-1 best case of overlapped phases;
//! * [`bisection`] — bisection-bandwidth requirements;
//! * [`validate`] — measured-vs-predicted comparison of instrumented runs
//!   against the characterization and Eqs. (1)/(2).

pub mod beta;
pub mod bisection;
pub mod eq1;
pub mod eq2;
pub mod logp;
pub mod maxrate;
pub mod overlap;
pub mod scaling_law;
pub mod validate;
