//! Equation (2): the low-level model of the communication phase.
//!
//! `T_c = (B_max / C_max) · T_l + T_w`
//!
//! expresses the amortized time per word in terms of block latency `T_l` and
//! per-word burst time `T_w`, given the application's block and word maxima.

use crate::characterize::SmvpInstance;
use crate::machine::{BlockRegime, Network, WORD_BYTES};

/// The amortized time per word delivered by network `(t_l, t_w)` for an
/// instance with the given block regime.
///
/// # Panics
///
/// Panics if the instance has `c_max == 0` (no communication phase).
pub fn delivered_tc(instance: &SmvpInstance, network: &Network, regime: BlockRegime) -> f64 {
    assert!(instance.c_max > 0, "instance has no communication");
    let b = regime.effective_b_max(instance.b_max, instance.c_max) as f64;
    (b / instance.c_max as f64) * network.t_l + network.t_w
}

/// The communication-phase duration `T_comm = B_max·T_l + C_max·T_w`.
pub fn comm_time(instance: &SmvpInstance, network: &Network, regime: BlockRegime) -> f64 {
    let b = regime.effective_b_max(instance.b_max, instance.c_max) as f64;
    b * network.t_l + instance.c_max as f64 * network.t_w
}

/// The block latency `T_l` that, combined with per-word time `t_w`, meets a
/// target amortized time per word `t_c_target` (Figure 10's curves). Returns
/// `None` when `t_w ≥ t_c_target` — the burst bandwidth alone is too slow,
/// so no latency (even zero) can meet the target.
pub fn latency_for_target(
    instance: &SmvpInstance,
    t_c_target: f64,
    t_w: f64,
    regime: BlockRegime,
) -> Option<f64> {
    if t_w >= t_c_target {
        return None;
    }
    let b = regime.effective_b_max(instance.b_max, instance.c_max) as f64;
    if b == 0.0 {
        return Some(f64::INFINITY);
    }
    Some((t_c_target - t_w) * instance.c_max as f64 / b)
}

/// The latency bound at infinite burst bandwidth (`T_w = 0`): the largest
/// block latency that can still meet `t_c_target`.
pub fn latency_at_infinite_burst(
    instance: &SmvpInstance,
    t_c_target: f64,
    regime: BlockRegime,
) -> f64 {
    latency_for_target(instance, t_c_target, 0.0, regime)
        .expect("zero per-word time always meets a positive target")
}

/// A *half-bandwidth* design point (paper §4.4): the `(T_l, T_w)` pair such
/// that block latency and burst transfer each consume half of the
/// communication phase. Over-engineering either side of such a design can
/// buy at most 2×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfBandwidthPoint {
    /// Half-bandwidth block latency (seconds).
    pub t_l: f64,
    /// Half-bandwidth per-word time (seconds).
    pub t_w: f64,
}

impl HalfBandwidthPoint {
    /// Burst bandwidth `T_w⁻¹` in bytes/second.
    pub fn burst_bandwidth_bytes(&self) -> f64 {
        WORD_BYTES / self.t_w
    }
}

/// Computes the half-bandwidth design point meeting `t_c_target`:
/// `B_max·T_l = C_max·T_w = ½·C_max·t_c_target` (Figure 11's quantities).
///
/// # Panics
///
/// Panics if the instance has no communication or `t_c_target ≤ 0`.
pub fn half_bandwidth_point(
    instance: &SmvpInstance,
    t_c_target: f64,
    regime: BlockRegime,
) -> HalfBandwidthPoint {
    assert!(instance.c_max > 0, "instance has no communication");
    assert!(t_c_target > 0.0, "target time per word must be positive");
    let b = regime.effective_b_max(instance.b_max, instance.c_max) as f64;
    let half_comm_per_word = 0.5 * t_c_target;
    HalfBandwidthPoint {
        t_l: half_comm_per_word * instance.c_max as f64 / b,
        t_w: half_comm_per_word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::eq1::required_tc;

    fn sf2_128() -> SmvpInstance {
        SmvpInstance::new("sf2", 128, 838_224, 16_260, 50, 459.0)
    }

    #[test]
    fn delivered_tc_matches_equation() {
        let inst = sf2_128();
        let net = Network {
            name: "n",
            t_l: 10e-6,
            t_w: 50e-9,
        };
        let tc = delivered_tc(&inst, &net, BlockRegime::Maximal);
        let expect = (50.0 / 16_260.0) * 10e-6 + 50e-9;
        assert!((tc - expect).abs() < 1e-18);
    }

    #[test]
    fn t3e_parameters_reproduce_paper_regime() {
        // On the measured T3E network (T_l = 22 µs, T_w = 55 ns) the latency
        // term for sf2/128 dominates: (50/16260)·22µs ≈ 67.7 ns vs 55 ns.
        let inst = sf2_128();
        let net = Network::cray_t3e();
        let tc = delivered_tc(&inst, &net, BlockRegime::Maximal);
        let latency_part = (50.0 / 16_260.0) * 22e-6;
        assert!(latency_part > net.t_w);
        assert!((tc - (latency_part + 55e-9)).abs() < 1e-15);
    }

    #[test]
    fn latency_for_target_inverts_delivered_tc() {
        let inst = sf2_128();
        let target = 30e-9;
        let t_w = 10e-9;
        let t_l = latency_for_target(&inst, target, t_w, BlockRegime::Maximal).unwrap();
        let net = Network {
            name: "n",
            t_l,
            t_w,
        };
        let tc = delivered_tc(&inst, &net, BlockRegime::Maximal);
        assert!((tc - target).abs() < 1e-15);
    }

    #[test]
    fn infeasible_burst_returns_none() {
        let inst = sf2_128();
        assert!(latency_for_target(&inst, 30e-9, 30e-9, BlockRegime::Maximal).is_none());
        assert!(latency_for_target(&inst, 30e-9, 40e-9, BlockRegime::Maximal).is_none());
    }

    #[test]
    fn infinite_burst_latency_bound_for_paper_case() {
        // sf2/128 at E = 0.9 on 200-MFLOP PEs: with infinite burst
        // bandwidth, maximal blocks allow T_l up to ≈ 9.3 µs by Eq. (2);
        // 4-word blocks only ≈ 115 ns (the paper's ≈ 100 ns reading).
        let inst = sf2_128();
        let tc = required_tc(&inst, 0.9, 5e-9);
        let max_blocks = latency_at_infinite_burst(&inst, tc, BlockRegime::Maximal);
        assert!((8e-6..11e-6).contains(&max_blocks), "got {max_blocks}");
        let cache_line = latency_at_infinite_burst(&inst, tc, BlockRegime::CACHE_LINE);
        assert!(
            (100e-9..130e-9).contains(&cache_line),
            "got {} ns",
            cache_line * 1e9
        );
    }

    #[test]
    fn half_bandwidth_splits_comm_time_evenly() {
        let inst = sf2_128();
        let tc = required_tc(&inst, 0.9, 5e-9);
        let pt = half_bandwidth_point(&inst, tc, BlockRegime::Maximal);
        let latency_time = inst.b_max as f64 * pt.t_l;
        let burst_time = inst.c_max as f64 * pt.t_w;
        assert!((latency_time - burst_time).abs() < 1e-15);
        let total = latency_time + burst_time;
        assert!((total - inst.c_max as f64 * tc).abs() < 1e-12);
    }

    #[test]
    fn paper_most_demanding_half_bandwidth_case() {
        // Fig. 11, hardest case: sf2/128, 200-MFLOP PEs, E = 0.9.
        let inst = sf2_128();
        let tc = required_tc(&inst, 0.9, 5e-9);
        let maximal = half_bandwidth_point(&inst, tc, BlockRegime::Maximal);
        // Burst ≈ 600 MB/s (paper: "burst bandwidth of 600 MBytes/sec").
        assert!(
            (450e6..700e6).contains(&maximal.burst_bandwidth_bytes()),
            "burst = {:.0} MB/s",
            maximal.burst_bandwidth_bytes() / 1e6
        );
        // Latency of a few µs (paper reads ≈ 2 µs off the log-scale plot;
        // the exact Eq. (2) value is ≈ 4.7 µs).
        assert!((2e-6..6e-6).contains(&maximal.t_l), "t_l = {}", maximal.t_l);
        // Fixed 4-word blocks: latency collapses to tens of ns (paper ≈ 70).
        let fixed = half_bandwidth_point(&inst, tc, BlockRegime::CACHE_LINE);
        assert!(
            (40e-9..90e-9).contains(&fixed.t_l),
            "t_l = {} ns",
            fixed.t_l * 1e9
        );
    }

    #[test]
    fn comm_time_decomposition() {
        let inst = sf2_128();
        let net = Network {
            name: "n",
            t_l: 1e-6,
            t_w: 10e-9,
        };
        let t = comm_time(&inst, &net, BlockRegime::Maximal);
        assert!((t - (50.0 * 1e-6 + 16_260.0 * 10e-9)).abs() < 1e-12);
        // And T_comm = C_max · T_c.
        let tc = delivered_tc(&inst, &net, BlockRegime::Maximal);
        assert!((t - inst.c_max as f64 * tc).abs() < 1e-10);
    }

    #[test]
    fn fixed_blocks_demand_lower_latency() {
        let inst = sf2_128();
        let tc = 30e-9;
        let max_b = latency_at_infinite_burst(&inst, tc, BlockRegime::Maximal);
        let fix_b = latency_at_infinite_burst(&inst, tc, BlockRegime::CACHE_LINE);
        assert!(fix_b < max_b / 50.0);
    }

    #[test]
    #[should_panic(expected = "no communication")]
    fn zero_comm_panics() {
        let inst = SmvpInstance::new("x", 1, 10, 0, 0, 0.0);
        let _ = delivered_tc(&inst, &Network::cray_t3e(), BlockRegime::Maximal);
    }
}
