//! The per-step critical-path profiler: where did each step's wall time go?
//!
//! The paper's Fig. 10 splits runtime into compute vs communication per
//! machine; this module does the same split per *step* and per *PE* from
//! the recorded span window, then goes two levels deeper than the paper
//! could: the exchange is split into transport **wait** (blocked in
//! `acquire`, the latency term the paper says dominates) and **apply**
//! (summing neighbor partials, the bandwidth term), and every step names
//! the PE on its critical path.
//!
//! Attribution is exact by construction: the executor's traced paths record
//! one top-level span per phase per PE per step, and the per-PE span total
//! *is* the measured step wall for that PE (the `barrier` span is the wall
//! residual). The step wall is the maximum per-PE total, the row shown is
//! the wall-defining PE's breakdown, and the **straggler** is the PE with
//! the most *busy* time (total minus barrier minus wait) — the one everyone
//! else waited for.
//!
//! Busy time alone cannot finger a shard whose process died mid-step (a
//! wire stall ends in a respawn, and the victim generation's span ring
//! dies with it). The cross-shard flow records close that gap: when a
//! step's largest recorded `acquire` wait exceeds every PE's busy time,
//! the *sender* of that starved edge is the straggler — the victims'
//! clocks testify against the shard that cannot testify for itself. A
//! stalled wire therefore shows up twice: as the receivers' inflated wait
//! rungs, and as the stalled shard's name in the straggler column.
//!
//! The report closes with the Eq. (2)/overlap *predicted* decomposition
//! next to the measured one, so a model-vs-measured residual is localized
//! to a phase (latency underestimated? overlap not hiding?) instead of
//! smeared over the run.

use std::fmt::Write as _;

use crate::model::beta::modeled_comm_time;

use super::context::FlowKind;
use super::merge::ShardTrace;
use super::span::PhaseId;

/// Inputs the profiler needs beyond the spans themselves.
#[derive(Debug, Clone, Default)]
pub struct ProfileOptions {
    /// Per-PE `(words, blocks)` exchanged per step, for the Eq. (2)
    /// baseline. Empty disables the model comparison.
    pub loads: Vec<(u64, u64)>,
    /// Fitted or measured link parameters `(t_l, t_w)` in seconds.
    pub link: Option<(f64, f64)>,
    /// Whether the run used the overlapped schedule (changes the predicted
    /// step composition: `max(interior, exchange)` instead of their sum).
    pub overlap: bool,
}

/// Wall-time attribution rungs for one (step, PE), nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rungs {
    /// Boundary compute + publishing outgoing blocks (`post` spans).
    pub post_ns: u64,
    /// Interior/local compute (`compute` spans).
    pub interior_ns: u64,
    /// Exchange time spent applying neighbor partials (exchange − wait).
    pub apply_ns: u64,
    /// Exchange time spent blocked in `Transport::acquire`.
    pub wait_ns: u64,
    /// Step-barrier residual (wall minus this PE's own work).
    pub barrier_ns: u64,
    /// Chaos-layer staging, verification, and recovery.
    pub recover_ns: u64,
    /// Everything else on the PE lane (assemble, fold).
    pub other_ns: u64,
}

impl Rungs {
    /// Sum of all rungs — the PE's measured step wall.
    pub fn total_ns(&self) -> u64 {
        self.post_ns
            + self.interior_ns
            + self.apply_ns
            + self.wait_ns
            + self.barrier_ns
            + self.recover_ns
            + self.other_ns
    }

    /// Time this PE held the critical path: total minus idle (barrier)
    /// minus transport wait.
    pub fn busy_ns(&self) -> u64 {
        self.total_ns() - self.barrier_ns - self.wait_ns
    }

    fn add(&mut self, other: &Rungs) {
        self.post_ns += other.post_ns;
        self.interior_ns += other.interior_ns;
        self.apply_ns += other.apply_ns;
        self.wait_ns += other.wait_ns;
        self.barrier_ns += other.barrier_ns;
        self.recover_ns += other.recover_ns;
        self.other_ns += other.other_ns;
    }
}

/// One step's attribution row.
#[derive(Debug, Clone)]
pub struct StepRow {
    /// BSP step.
    pub step: u64,
    /// Measured step wall: the maximum per-PE rung total.
    pub wall_ns: u64,
    /// The wall-defining PE (whose rungs are shown).
    pub crit_pe: u32,
    /// The wall-defining PE's breakdown.
    pub rungs: Rungs,
    /// The PE everyone waited for: the most busy time across PEs, or the
    /// sender of the step's starving edge when a recorded acquire wait
    /// exceeds every PE's busy time (a dead generation leaves no spans,
    /// but its victims' flow records still name it).
    pub straggler_pe: u32,
    /// Shard owning the straggler.
    pub straggler_shard: u32,
    /// How long the straggler held the step: its busy nanoseconds, or
    /// the wait observed against it when flow blame decided.
    pub straggler_busy_ns: u64,
}

/// Model-vs-measured comparison, per mean step.
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// Eq. (2) `B_max·T_l + C_max·T_w`, ns per step.
    pub predicted_exchange_ns: u64,
    /// Measured mean of per-step max-PE exchange (apply + wait), ns.
    pub measured_exchange_ns: u64,
    /// Measured mean of per-step max-PE interior compute, ns.
    pub measured_interior_ns: u64,
    /// Measured mean of per-step max-PE post, ns.
    pub measured_post_ns: u64,
    /// Measured mean step wall, ns.
    pub measured_wall_ns: u64,
    /// Predicted step wall composed from the schedule: barrier schedule
    /// `interior + exchange`, overlap schedule
    /// `post + max(interior, exchange)` (OverlapAnalysis composition) —
    /// measured compute terms, *predicted* exchange term.
    pub predicted_step_ns: u64,
    /// True when the overlap composition was used.
    pub overlap: bool,
}

/// The full profiler output.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-step rows, ascending step order.
    pub steps: Vec<StepRow>,
    /// Rung totals over the wall-defining PEs of all steps.
    pub totals: Rungs,
    /// Spans lost to ring overwrite across all shards: when nonzero the
    /// earliest rows may under-report.
    pub spans_dropped: u64,
    /// The Eq. (2)/overlap baseline, when loads and link were provided.
    pub model: Option<ModelComparison>,
}

impl ProfileReport {
    /// Attributes the span windows in `shards` (timestamps need not be
    /// aligned — attribution uses durations only).
    pub fn build(shards: &[ShardTrace], opts: &ProfileOptions) -> ProfileReport {
        // (step, pe) -> raw phase sums. BTreeMap keeps steps ordered.
        let mut by_pe: std::collections::BTreeMap<(u64, u32), [u64; PhaseId::ALL.len()]> =
            std::collections::BTreeMap::new();
        let mut owned: Vec<(u32, u32, u32)> = Vec::new(); // (pe_lo, pe_hi, shard)
                                                          // step -> worst recorded cross-shard acquire wait (from, waited).
        let mut starved: std::collections::BTreeMap<u64, (u32, u64)> =
            std::collections::BTreeMap::new();
        for st in shards {
            owned.push((st.snap.pe_lo, st.snap.pe_hi, st.snap.ctx.shard));
            for f in &st.snap.flows {
                if f.kind == FlowKind::Acquire {
                    let worst = starved.entry(f.step).or_insert((f.from, 0));
                    if f.waited_ns > worst.1 {
                        *worst = (f.from, f.waited_ns);
                    }
                }
            }
            for s in &st.snap.spans {
                // Driver-lane spans (fold, recovery control) are not PE
                // wall time; skip lanes outside the shard's PE range.
                if !(st.snap.pe_lo..st.snap.pe_hi).contains(&s.pe) {
                    continue;
                }
                by_pe.entry((s.step, s.pe)).or_default()[s.phase as usize] += s.dur_ns;
            }
        }
        let shard_of = |pe: u32| -> u32 {
            owned
                .iter()
                .find(|(lo, hi, _)| (*lo..*hi).contains(&pe))
                .map_or(0, |(_, _, sh)| *sh)
        };

        // Fold raw phase sums into rungs per (step, pe).
        let mut rows: std::collections::BTreeMap<u64, Vec<(u32, Rungs)>> =
            std::collections::BTreeMap::new();
        for (&(step, pe), sums) in &by_pe {
            let exchange = sums[PhaseId::Exchange as usize];
            // `wait` spans are nested inside `exchange`; clamp so clock
            // quantization can never produce a negative apply rung.
            let wait = sums[PhaseId::Wait as usize].min(exchange);
            let r = Rungs {
                post_ns: sums[PhaseId::Post as usize],
                interior_ns: sums[PhaseId::Compute as usize],
                apply_ns: exchange - wait,
                wait_ns: wait,
                barrier_ns: sums[PhaseId::Barrier as usize],
                recover_ns: sums[PhaseId::Stage as usize]
                    + sums[PhaseId::Verify as usize]
                    + sums[PhaseId::Recover as usize],
                other_ns: sums[PhaseId::Assemble as usize] + sums[PhaseId::Fold as usize],
            };
            rows.entry(step).or_default().push((pe, r));
        }

        let mut steps = Vec::with_capacity(rows.len());
        let mut totals = Rungs::default();
        for (step, pes) in rows {
            let (crit_pe, crit) = pes
                .iter()
                .max_by_key(|(pe, r)| (r.total_ns(), *pe))
                .copied()
                .expect("step with no PEs");
            let (mut straggler_pe, straggler) = pes
                .iter()
                .max_by_key(|(pe, r)| (r.busy_ns(), *pe))
                .copied()
                .expect("step with no PEs");
            let mut straggler_busy_ns = straggler.busy_ns();
            // Flow blame: a starving edge that out-waits every PE's busy
            // time names its sender — even one whose spans died with a
            // respawned process.
            if let Some(&(from, waited)) = starved.get(&step) {
                if waited > straggler_busy_ns {
                    straggler_pe = from;
                    straggler_busy_ns = waited;
                }
            }
            totals.add(&crit);
            steps.push(StepRow {
                step,
                wall_ns: crit.total_ns(),
                crit_pe,
                rungs: crit,
                straggler_pe,
                straggler_shard: shard_of(straggler_pe),
                straggler_busy_ns,
            });
        }

        let model = build_model(&steps, opts);
        ProfileReport {
            steps,
            totals,
            spans_dropped: shards.iter().map(|s| s.snap.spans_dropped).sum(),
            model,
        }
    }

    /// The most frequent straggler shard across steps, with its step count.
    pub fn dominant_straggler(&self) -> Option<(u32, usize)> {
        let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for row in &self.steps {
            *counts.entry(row.straggler_shard).or_default() += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(sh, n)| (n, std::cmp::Reverse(sh)))
    }

    /// Renders the human-readable attribution table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("critical-path attribution (rungs of the wall-defining PE, per step)\n");
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "  note: {} spans dropped from ring buffers; earliest rows may under-report",
                self.spans_dropped
            );
        }
        let _ = writeln!(
            out,
            "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>8}  straggler",
            "step",
            "wall",
            "post",
            "interior",
            "apply",
            "wait",
            "barrier",
            "recover",
            "other",
            "crit-PE"
        );
        for row in &self.steps {
            let r = &row.rungs;
            let _ = writeln!(
                out,
                "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>8}  PE {} (shard {}, busy {})",
                row.step,
                fmt_ns(row.wall_ns),
                fmt_ns(r.post_ns),
                fmt_ns(r.interior_ns),
                fmt_ns(r.apply_ns),
                fmt_ns(r.wait_ns),
                fmt_ns(r.barrier_ns),
                fmt_ns(r.recover_ns),
                fmt_ns(r.other_ns),
                format!("PE {}", row.crit_pe),
                row.straggler_pe,
                row.straggler_shard,
                fmt_ns(row.straggler_busy_ns),
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "total",
            fmt_ns(t.total_ns()),
            fmt_ns(t.post_ns),
            fmt_ns(t.interior_ns),
            fmt_ns(t.apply_ns),
            fmt_ns(t.wait_ns),
            fmt_ns(t.barrier_ns),
            fmt_ns(t.recover_ns),
            fmt_ns(t.other_ns),
        );
        if let Some((shard, n)) = self.dominant_straggler() {
            let _ = writeln!(
                out,
                "  straggler verdict: shard {shard} holds the critical path in {n}/{} steps",
                self.steps.len()
            );
        }
        if let Some(m) = &self.model {
            let _ = writeln!(
                out,
                "  model: Eq. (2) exchange {} vs measured {} per step ({})",
                fmt_ns(m.predicted_exchange_ns),
                fmt_ns(m.measured_exchange_ns),
                fmt_residual(m.measured_exchange_ns, m.predicted_exchange_ns),
            );
            let composition = if m.overlap {
                "post + max(interior, exchange)"
            } else {
                "interior + exchange"
            };
            let _ = writeln!(
                out,
                "  model: predicted step [{composition}] {} vs measured wall {} per step ({})",
                fmt_ns(m.predicted_step_ns),
                fmt_ns(m.measured_wall_ns),
                fmt_residual(m.measured_wall_ns, m.predicted_step_ns),
            );
        }
        out
    }

    /// Renders the machine-readable artifact for `--profile-json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"steps\":[");
        for (i, row) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"step\":{},\"wall_ns\":{},\"crit_pe\":{},\"straggler_pe\":{},\
                 \"straggler_shard\":{},\"straggler_busy_ns\":{},\"rungs\":{}}}",
                row.step,
                row.wall_ns,
                row.crit_pe,
                row.straggler_pe,
                row.straggler_shard,
                row.straggler_busy_ns,
                rungs_json(&row.rungs)
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{},\"spans_dropped\":{}",
            rungs_json(&self.totals),
            self.spans_dropped
        );
        match &self.model {
            Some(m) => {
                let _ = write!(
                    out,
                    ",\"model\":{{\"predicted_exchange_ns\":{},\"measured_exchange_ns\":{},\
                     \"measured_interior_ns\":{},\"measured_post_ns\":{},\
                     \"measured_wall_ns\":{},\"predicted_step_ns\":{},\"overlap\":{}}}",
                    m.predicted_exchange_ns,
                    m.measured_exchange_ns,
                    m.measured_interior_ns,
                    m.measured_post_ns,
                    m.measured_wall_ns,
                    m.predicted_step_ns,
                    m.overlap
                );
            }
            None => out.push_str(",\"model\":null"),
        }
        out.push('}');
        out
    }
}

fn build_model(steps: &[StepRow], opts: &ProfileOptions) -> Option<ModelComparison> {
    let (t_l, t_w) = opts.link?;
    if opts.loads.is_empty() || steps.is_empty() {
        return None;
    }
    let predicted_exchange_ns = (modeled_comm_time(&opts.loads, t_l, t_w) * 1e9).round() as u64;
    let n = steps.len() as u64;
    let mean = |f: &dyn Fn(&StepRow) -> u64| steps.iter().map(f).sum::<u64>() / n;
    let measured_exchange_ns = mean(&|r| r.rungs.apply_ns + r.rungs.wait_ns);
    let measured_interior_ns = mean(&|r| r.rungs.interior_ns);
    let measured_post_ns = mean(&|r| r.rungs.post_ns);
    let measured_wall_ns = mean(&|r| r.wall_ns);
    let predicted_step_ns = if opts.overlap {
        measured_post_ns + measured_interior_ns.max(predicted_exchange_ns)
    } else {
        measured_interior_ns + predicted_exchange_ns
    };
    Some(ModelComparison {
        predicted_exchange_ns,
        measured_exchange_ns,
        measured_interior_ns,
        measured_post_ns,
        measured_wall_ns,
        predicted_step_ns,
        overlap: opts.overlap,
    })
}

fn rungs_json(r: &Rungs) -> String {
    format!(
        "{{\"post_ns\":{},\"interior_ns\":{},\"apply_ns\":{},\"wait_ns\":{},\
         \"barrier_ns\":{},\"recover_ns\":{},\"other_ns\":{}}}",
        r.post_ns, r.interior_ns, r.apply_ns, r.wait_ns, r.barrier_ns, r.recover_ns, r.other_ns
    )
}

/// `ns` with an engineering unit, 3 significant-ish digits, fixed width
/// friendly (`1.23 ms`, `456 µs`, `789 ns`).
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} µs", v / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Signed relative residual of measured vs predicted.
fn fmt_residual(measured: u64, predicted: u64) -> String {
    if predicted == 0 {
        return "predicted 0".to_string();
    }
    let rel = (measured as f64 - predicted as f64) / predicted as f64;
    format!("{:+.1}% vs model", rel * 100.0)
}

#[cfg(test)]
mod tests {
    use super::super::context::{TelemetrySnapshot, TraceContext};
    use super::super::span::Span;
    use super::*;

    fn snap(shard: u32, pe_lo: u32, pe_hi: u32, spans: Vec<Span>) -> ShardTrace {
        ShardTrace {
            snap: TelemetrySnapshot {
                ctx: TraceContext {
                    run_id: 1,
                    shard,
                    generation: 0,
                },
                pe_lo,
                pe_hi,
                steps: 0,
                phase_wall_ns: [0; PhaseId::ALL.len()],
                spans,
                spans_dropped: 0,
                instants: Vec::new(),
                instants_dropped: 0,
                block_latency_ns: Default::default(),
                block_words: Default::default(),
                compute_ns: Default::default(),
                retry_ns: Default::default(),
                node_block_words: Default::default(),
                flows: Vec::new(),
                flows_dropped: 0,
            },
            clock_offset_ns: 0,
        }
    }

    fn span(phase: PhaseId, pe: u32, step: u64, dur_ns: u64) -> Span {
        Span {
            phase,
            pe,
            step,
            start_ns: step * 10_000,
            dur_ns,
        }
    }

    /// Two PEs: PE 0 computes 800 and waits 100 at the barrier (wall 1000);
    /// PE 1 computes 300, exchanges 500 (of which 200 waited), barrier 200
    /// (wall 1000).
    fn two_pe_shard() -> ShardTrace {
        snap(
            0,
            0,
            2,
            vec![
                span(PhaseId::Compute, 0, 0, 800),
                span(PhaseId::Exchange, 0, 0, 100),
                span(PhaseId::Barrier, 0, 0, 100),
                span(PhaseId::Compute, 1, 0, 300),
                span(PhaseId::Exchange, 1, 0, 500),
                span(PhaseId::Wait, 1, 0, 200),
                span(PhaseId::Barrier, 1, 0, 200),
                // Driver-lane fold must not pollute PE attribution.
                span(PhaseId::Fold, 2, 0, 9_999),
            ],
        )
    }

    #[test]
    fn rungs_sum_to_the_pe_wall_and_wait_splits_exchange() {
        let report = ProfileReport::build(&[two_pe_shard()], &ProfileOptions::default());
        assert_eq!(report.steps.len(), 1);
        let row = &report.steps[0];
        assert_eq!(row.wall_ns, 1_000);
        assert_eq!(row.rungs.total_ns(), row.wall_ns);
        // Both PEs total 1000; the tie-break picks the higher PE, whose
        // exchange splits into 300 apply + 200 wait.
        assert_eq!(row.crit_pe, 1);
        assert_eq!(row.rungs.apply_ns, 300);
        assert_eq!(row.rungs.wait_ns, 200);
        // Straggler is PE 0: busy 900 vs PE 1's 600.
        assert_eq!(row.straggler_pe, 0);
        assert_eq!(row.straggler_busy_ns, 900);
        assert_eq!(row.straggler_shard, 0);
    }

    #[test]
    fn straggler_crosses_shard_boundaries() {
        let a = snap(
            0,
            0,
            1,
            vec![
                span(PhaseId::Compute, 0, 0, 100),
                span(PhaseId::Barrier, 0, 0, 900),
            ],
        );
        let b = snap(
            3,
            1,
            2,
            vec![
                // A stalled wire inflates this shard's post rung.
                span(PhaseId::Post, 1, 0, 950),
                span(PhaseId::Compute, 1, 0, 50),
            ],
        );
        let report = ProfileReport::build(&[a, b], &ProfileOptions::default());
        let row = &report.steps[0];
        assert_eq!(row.straggler_pe, 1);
        assert_eq!(row.straggler_shard, 3);
        assert_eq!(report.dominant_straggler(), Some((3, 1)));
        let table = report.render_table();
        assert!(table.contains("shard 3 holds the critical path in 1/1 steps"));
    }

    #[test]
    fn flow_blame_names_a_shard_whose_spans_died_with_it() {
        // Shard 0 (the victim) spent the step blocked on a block from
        // PE 1: tiny compute, a huge exchange that was almost all wait.
        // Shard 1 stalled, was respawned, and its replacement generation
        // replayed the step quickly — its spans show nothing unusual.
        let mut victim = snap(
            0,
            0,
            1,
            vec![
                span(PhaseId::Compute, 0, 0, 1_000),
                span(PhaseId::Exchange, 0, 0, 2_000_000),
                span(PhaseId::Wait, 0, 0, 1_999_000),
            ],
        );
        victim.snap.flows.push(crate::telemetry::FlowRec {
            kind: FlowKind::Acquire,
            step: 0,
            from: 1,
            to: 0,
            at_ns: 2_000_000,
            waited_ns: 1_999_000,
        });
        let respawned = snap(
            1,
            1,
            2,
            vec![
                span(PhaseId::Compute, 1, 0, 1_200),
                span(PhaseId::Exchange, 1, 0, 300),
            ],
        );
        let report = ProfileReport::build(&[victim, respawned], &ProfileOptions::default());
        let row = &report.steps[0];
        // Busy time alone would pick the respawned shard's normal compute;
        // the recorded wait against PE 1 overrules it.
        assert_eq!(row.straggler_pe, 1);
        assert_eq!(row.straggler_shard, 1);
        assert_eq!(row.straggler_busy_ns, 1_999_000);
        assert_eq!(report.dominant_straggler(), Some((1, 1)));
    }

    #[test]
    fn model_section_localizes_residuals() {
        let report = ProfileReport::build(
            &[two_pe_shard()],
            &ProfileOptions {
                // One block of 10 words on the busiest PE.
                loads: vec![(10, 1)],
                // t_l = 100 ns, t_w = 10 ns → predicted exchange 200 ns.
                link: Some((100e-9, 10e-9)),
                overlap: false,
            },
        );
        let m = report.model.as_ref().expect("model");
        assert_eq!(m.predicted_exchange_ns, 200);
        assert_eq!(m.measured_exchange_ns, 500);
        assert_eq!(m.measured_interior_ns, 300);
        assert_eq!(m.predicted_step_ns, 500);
        let table = report.render_table();
        assert!(table.contains("Eq. (2) exchange"), "{table}");
        assert!(table.contains("+150.0% vs model"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"predicted_exchange_ns\":200"));
        assert!(json.contains("\"overlap\":false"));
    }

    #[test]
    fn json_is_wellformed_without_model() {
        let report = ProfileReport::build(&[two_pe_shard()], &ProfileOptions::default());
        let json = report.to_json();
        assert!(json.starts_with("{\"steps\":["));
        assert!(json.ends_with("}"));
        assert!(json.contains("\"model\":null"));
        assert!(json.contains("\"wall_ns\":1000"));
    }

    #[test]
    fn dropped_spans_are_called_out() {
        let mut st = two_pe_shard();
        st.snap.spans_dropped = 7;
        let report = ProfileReport::build(&[st], &ProfileOptions::default());
        assert_eq!(report.spans_dropped, 7);
        assert!(report
            .render_table()
            .contains("7 spans dropped from ring buffers"));
    }
}
