//! Live model-drift detection: measured exchange time vs the Eq. (2)
//! prediction, step by step.
//!
//! The validation layer (`model::validate`) compares one *aggregate* run
//! against the model after the fact. That hides transients: a single
//! straggling step, a page-cache hiccup, a neighbor-link slowdown — all
//! average away over thousands of SMVPs. [`DriftMonitor`] instead fits the
//! machine parameters `(T_l, T_w)` to each step's per-PE exchange times,
//! evaluates the Eq. (2) prediction `T_c = B_max·T_l + C_max·T_w` for that
//! step, and flags the step when the measurement cannot be explained by the
//! linear model — i.e. when the worst per-PE fit residual, normalized by
//! the step's median exchange time, exceeds a configurable threshold. Each sample also reports where the observed model pessimism
//! `predicted/measured` sits relative to the §3.4 β bracket `[1, β]`: on a
//! healthy step the fit is near-exact and the ratio obeys the paper's
//! theorem, while an anomalous step pushes it outside.
//!
//! Each step's fit uses only that step's own times, so the monitor needs no
//! warmup, no history, and no allocation in steady state (the flagged
//! window is bounded).

use crate::model::beta::{beta_bound, modeled_comm_time};
use crate::model::validate::fit_network;

/// Tolerance on the β bracket before a step's pessimism ratio counts as
/// escaped: real timing noise makes the busiest-PE measurement wobble a few
/// percent around the fitted model.
const BETA_SLACK: f64 = 0.25;

/// One flagged (or inspected) step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// The BSP step observed.
    pub step: u64,
    /// Busiest-PE measured exchange seconds.
    pub measured: f64,
    /// Eq. (2) prediction under this step's fitted `(T_l, T_w)`.
    pub predicted: f64,
    /// Drift score: worst per-PE residual of this step's fit, normalized by
    /// the step's median exchange time (see [`DriftMonitor::observe`]).
    pub score: f64,
    /// Observed model pessimism `predicted/measured` for this step. The
    /// paper's §3.4 theorem keeps `modeled/exact` in `[1, β]`; when the fit
    /// explains the step, the measured ratio lands in the same bracket.
    pub pessimism: f64,
    /// True when `pessimism` escaped `[1, β]` beyond slack — the measured
    /// step is incompatible with the bound the model proves.
    pub beta_excess: bool,
}

/// Configuration for [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative drift score above which a step is flagged. 1.0 means "the
    /// model mispredicts this step by 100%".
    pub threshold: f64,
    /// Busiest-PE exchange seconds below which a step is skipped as
    /// noise-dominated: below the millisecond scale, a single page-fault
    /// burst or preemption leaves residuals no linear model explains, and
    /// flagging those would bury real anomalies. The paper's quantities at
    /// production scale are milliseconds and up, at the default floor.
    pub min_time_s: f64,
    /// Flagged samples kept for the report (oldest dropped beyond this).
    pub max_flagged: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 2.0,
            min_time_s: 1e-3,
            max_flagged: 64,
        }
    }
}

/// Per-step comparison of measured exchange time against the Eq. (2) model.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    /// Per-PE `(words, blocks)` per step — constant for a fixed exchange
    /// schedule, so captured once at arm time.
    loads: Vec<(u64, u64)>,
    beta: f64,
    config: DriftConfig,
    steps_observed: u64,
    flagged: Vec<DriftSample>,
    flagged_total: u64,
    /// The worst-scoring step seen, flagged or not.
    worst: Option<DriftSample>,
    /// Reused sort buffer for the per-step median (no steady-state
    /// allocation).
    scratch: Vec<f64>,
}

impl DriftMonitor {
    /// A monitor for an executor whose PEs carry `loads` = per-PE
    /// `(words, blocks)` each step.
    ///
    /// # Panics
    ///
    /// Panics if `config.threshold` is not positive.
    pub fn new(loads: Vec<(u64, u64)>, config: DriftConfig) -> Self {
        assert!(
            config.threshold > 0.0,
            "drift threshold must be positive (got {})",
            config.threshold
        );
        let pes = loads.len();
        DriftMonitor {
            beta: beta_bound(&loads),
            loads,
            config,
            steps_observed: 0,
            flagged: Vec::with_capacity(config.max_flagged.min(1024)),
            flagged_total: 0,
            worst: None,
            scratch: Vec::with_capacity(pes),
        }
    }

    /// The §3.4 β bound for the armed loads.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.config.threshold
    }

    /// Steps observed so far.
    pub fn steps_observed(&self) -> u64 {
        self.steps_observed
    }

    /// Total steps flagged (including any dropped from the kept window).
    pub fn flagged_total(&self) -> u64 {
        self.flagged_total
    }

    /// The kept window of flagged samples, oldest first.
    pub fn flagged(&self) -> &[DriftSample] {
        &self.flagged
    }

    /// The worst-scoring step seen, flagged or not.
    pub fn worst(&self) -> Option<DriftSample> {
        self.worst
    }

    /// Observes one step's per-PE exchange times and returns the sample if
    /// the step was flagged.
    ///
    /// The drift score is the worst per-PE absolute residual of this step's
    /// own `(T_l, T_w)` fit, normalized by the step's *median* exchange
    /// time. The fit, prediction, and measurement all come from this step
    /// alone: a step whose times are proportional to its loads scores near
    /// zero regardless of absolute speed (the fit absorbs uniform
    /// machine-speed wobble), while a step with a latency anomaly on *some*
    /// PEs cannot be explained by any `(T_l, T_w)` and leaves a residual
    /// many multiples of the healthy time scale. The median keeps the
    /// normalizer honest when the anomaly itself dominates the mean or max.
    ///
    /// # Panics
    ///
    /// Panics if `per_pe_exchange` does not cover the armed PEs.
    pub fn observe(&mut self, step: u64, per_pe_exchange: &[f64]) -> Option<DriftSample> {
        assert_eq!(
            per_pe_exchange.len(),
            self.loads.len(),
            "exchange times must cover the armed PEs"
        );
        self.steps_observed += 1;
        let fit = fit_network(&self.loads, per_pe_exchange);
        let predicted = modeled_comm_time(&self.loads, fit.t_l, fit.t_w);
        let measured = per_pe_exchange.iter().copied().fold(0.0, f64::max);
        // A silent machine (no communication) cannot drift, and a step
        // faster than the noise floor cannot be judged.
        if predicted <= 0.0 || measured <= 0.0 || measured < self.config.min_time_s {
            return None;
        }
        let mut worst_residual = 0.0f64;
        for (&(c, b), &t) in self.loads.iter().zip(per_pe_exchange) {
            let r = t - (b as f64 * fit.t_l + c as f64 * fit.t_w);
            worst_residual = worst_residual.max(r.abs());
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(per_pe_exchange);
        self.scratch.sort_by(|a, b| a.total_cmp(b));
        let median = self.scratch[self.scratch.len() / 2];
        // A majority-silent step degenerates the median; fall back to the
        // busiest PE, which is positive here.
        let t_ref = if median > 0.0 { median } else { measured };
        let score = worst_residual / t_ref;
        let pessimism = predicted / measured;
        let beta_excess =
            pessimism < 1.0 - BETA_SLACK || pessimism > self.beta * (1.0 + BETA_SLACK);
        let sample = DriftSample {
            step,
            measured,
            predicted,
            score,
            pessimism,
            beta_excess,
        };
        if self.worst.is_none_or(|w| sample.score > w.score) {
            self.worst = Some(sample);
        }
        if score > self.config.threshold {
            self.flagged_total += 1;
            if self.flagged.len() >= self.config.max_flagged {
                self.flagged.remove(0);
            }
            self.flagged.push(sample);
            Some(sample)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOADS: [(u64, u64); 4] = [(900, 6), (720, 4), (610, 8), (480, 2)];

    /// Times exactly proportional to the loads under (t_l, t_w).
    fn clean_times(t_l: f64, t_w: f64) -> Vec<f64> {
        LOADS
            .iter()
            .map(|&(c, b)| b as f64 * t_l + c as f64 * t_w)
            .collect()
    }

    /// The default config minus the noise floor, so µs-scale synthetic
    /// times are judged rather than skipped.
    fn judging_config() -> DriftConfig {
        DriftConfig {
            min_time_s: 0.0,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn clean_steps_stay_silent_with_beta_in_bracket() {
        let mut m = DriftMonitor::new(LOADS.to_vec(), judging_config());
        for step in 0..50 {
            // Uniform machine-speed wobble: the per-step fit absorbs it.
            let wobble = 1.0 + 0.1 * (step as f64 * 0.7).sin();
            let times: Vec<f64> = clean_times(8.0e-6 * wobble, 4.0e-8 * wobble);
            assert!(m.observe(step, &times).is_none(), "step {step} flagged");
        }
        assert_eq!(m.flagged_total(), 0);
        assert_eq!(m.steps_observed(), 50);
        let worst = m.worst().expect("steps were observed");
        assert!(worst.score < 1e-6, "clean score {}", worst.score);
        // With a perfect fit, pessimism == modeled/exact, which the paper's
        // theorem keeps in [1, β].
        assert!(!worst.beta_excess);
        assert!(worst.pessimism >= 1.0 - 1e-9 && worst.pessimism <= m.beta() + 1e-9);
    }

    #[test]
    fn perturbed_step_is_flagged() {
        let mut m = DriftMonitor::new(LOADS.to_vec(), judging_config());
        for step in 0..10 {
            let mut times = clean_times(8.0e-6, 4.0e-8);
            if step == 7 {
                // One PE's exchange stalls 100×: no (T_l, T_w) explains it.
                times[1] *= 100.0;
            }
            let flagged = m.observe(step, &times);
            assert_eq!(flagged.is_some(), step == 7, "step {step}");
            if let Some(s) = flagged {
                assert_eq!(s.step, 7);
                assert!(s.score > m.threshold());
            }
        }
        assert_eq!(m.flagged_total(), 1);
        assert_eq!(m.worst().unwrap().step, 7);
    }

    #[test]
    fn silent_machine_never_flags() {
        let mut m = DriftMonitor::new(vec![(0, 0), (0, 0)], judging_config());
        assert!(m.observe(0, &[0.0, 0.0]).is_none());
        assert_eq!(m.flagged_total(), 0);
        assert_eq!(m.beta(), 1.0);
    }

    #[test]
    fn noise_floor_skips_fast_steps() {
        // Default floor is 1 ms; this anomalous step finishes in under
        // 100 µs, so it is jitter, not drift.
        let mut m = DriftMonitor::new(LOADS.to_vec(), DriftConfig::default());
        let mut times = clean_times(5.0e-7, 2.5e-9);
        times[1] *= 10.0;
        assert!(times.iter().copied().fold(0.0, f64::max) < 1e-3);
        assert!(m.observe(0, &times).is_none());
        assert_eq!(m.steps_observed(), 1);
        // The same shape above the floor is judged (and flagged).
        let mut slow: Vec<f64> = clean_times(5.0e-4, 2.5e-6);
        slow[1] *= 10.0;
        assert!(m.observe(1, &slow).is_some());
    }

    #[test]
    fn flagged_window_is_bounded() {
        let mut m = DriftMonitor::new(
            LOADS.to_vec(),
            DriftConfig {
                threshold: 0.5,
                min_time_s: 0.0,
                max_flagged: 3,
            },
        );
        for step in 0..10 {
            let mut times = clean_times(8.0e-6, 4.0e-8);
            times[2] *= 50.0; // every step drifts
            m.observe(step, &times);
        }
        assert_eq!(m.flagged_total(), 10);
        assert_eq!(m.flagged().len(), 3);
        assert_eq!(
            m.flagged().iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn nonpositive_threshold_is_rejected() {
        let _ = DriftMonitor::new(
            vec![(1, 1)],
            DriftConfig {
                threshold: 0.0,
                min_time_s: 0.0,
                max_flagged: 1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "cover the armed PEs")]
    fn wrong_pe_count_panics() {
        let mut m = DriftMonitor::new(LOADS.to_vec(), DriftConfig::default());
        let _ = m.observe(0, &[1.0]);
    }
}
