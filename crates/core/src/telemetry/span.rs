//! Zero-allocation-in-steady-state span recording for the BSP phases.
//!
//! The executor runs the same phase sequence thousands of times, so span
//! storage is a preallocated ring: once warm, recording a span is an index
//! write and a cursor bump — no allocator, no lock, no syscall. When the
//! ring fills, the oldest spans are overwritten (and counted), which keeps
//! the *most recent* window of execution for the Chrome-trace export — the
//! part a person debugging a drifting run actually wants to see.

/// The fixed span vocabulary: every phase the executor can attribute time
/// to, including the chaos layer's staging/verify/recovery work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PhaseId {
    /// Gather replicated local `x` per PE.
    Assemble,
    /// Local SMVP per PE.
    Compute,
    /// Staging an inbound exchange block through the modeled NI buffer.
    Stage,
    /// Checksum verification of a staged block.
    Verify,
    /// Pairwise exchange-and-sum of neighbor contributions.
    Exchange,
    /// Wait at a phase barrier (phase wall minus this PE's own work).
    Barrier,
    /// Replicated results folded into the global vector.
    Fold,
    /// Fault recovery: checkpoint restore, replay, inline re-execution.
    Recover,
    /// Overlapped step only: computing and publishing the boundary-row
    /// partials that neighbors consume (the "post outgoing blocks" window).
    Post,
    /// Transport wait: seconds the exchange spent blocked in
    /// `Transport::acquire` (sender progress, not this PE's load). Recorded
    /// nested inside the `Exchange` span so the profiler can split the
    /// exchange into apply work vs waiting on the wire.
    Wait,
    /// Node-aggregated exchange only: intra-node gather of boundary partials
    /// into the merged per-(node, node) block before it crosses the slow
    /// link. Recorded nested inside the `Exchange` span, like `Wait`.
    Gather,
}

impl PhaseId {
    /// Every phase, in execution order.
    pub const ALL: [PhaseId; 11] = [
        PhaseId::Assemble,
        PhaseId::Post,
        PhaseId::Compute,
        PhaseId::Stage,
        PhaseId::Verify,
        PhaseId::Exchange,
        PhaseId::Gather,
        PhaseId::Wait,
        PhaseId::Barrier,
        PhaseId::Fold,
        PhaseId::Recover,
    ];

    /// The stable lowercase name used in trace and metrics output.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::Assemble => "assemble",
            PhaseId::Compute => "compute",
            PhaseId::Stage => "stage",
            PhaseId::Verify => "verify",
            PhaseId::Exchange => "exchange",
            PhaseId::Barrier => "barrier",
            PhaseId::Fold => "fold",
            PhaseId::Recover => "recover",
            PhaseId::Post => "post",
            PhaseId::Wait => "wait",
            PhaseId::Gather => "gather",
        }
    }

    /// Inverse of the snapshot codec's `phase as u8` encoding. Returns
    /// `None` for bytes no phase maps to (corrupt or future snapshots).
    pub fn from_u8(byte: u8) -> Option<PhaseId> {
        PhaseId::ALL.iter().copied().find(|p| *p as u8 == byte)
    }
}

/// One recorded span: a phase executed by one PE during one step.
///
/// Times are nanosecond offsets from the recorder's epoch (the executor's
/// construction instant), so spans from different PEs share one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which phase.
    pub phase: PhaseId,
    /// Executing PE (or the driver lane, numbered after the last PE).
    pub pe: u32,
    /// BSP step the span belongs to.
    pub step: u64,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A point event (zero duration): injected faults, detections, restores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInstant {
    /// Stable event name (e.g. `fault:drop`, `recover:restore`).
    pub name: &'static str,
    /// PE the event is attributed to.
    pub pe: u32,
    /// BSP step.
    pub step: u64,
    /// Nanoseconds since the recorder epoch.
    pub at_ns: u64,
}

/// A fixed-capacity overwrite-oldest ring of [`Span`]s.
///
/// # Examples
///
/// ```
/// use quake_core::telemetry::{PhaseId, Span, SpanRing};
/// let mut ring = SpanRing::new(2);
/// for step in 0..3 {
///     ring.push(Span { phase: PhaseId::Compute, pe: 0, step, start_ns: step * 10, dur_ns: 5 });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// // The oldest span (step 0) was overwritten.
/// assert_eq!(ring.iter().map(|s| s.step).collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct SpanRing {
    buf: Vec<Span>,
    /// Index of the next write (== index of the oldest element when full).
    head: usize,
    len: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans, fully preallocated.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity >= 1");
        SpanRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Records a span, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, span: Span) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(span);
            self.len += 1;
        } else {
            self.buf[self.head] = span;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % self.buf.capacity();
    }

    /// Spans currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum spans the ring can hold.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Spans overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Accounts for `n` spans lost before they reached this ring (e.g.
    /// overwritten in a shard-local ring before its snapshot was merged).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Iterates the retained spans oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        let split = if self.len == self.buf.capacity() {
            self.head
        } else {
            0
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn span(step: u64) -> Span {
        Span {
            phase: PhaseId::Compute,
            pe: 0,
            step,
            start_ns: step,
            dur_ns: 1,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = SpanRing::new(3);
        assert!(r.is_empty());
        for s in 0..5 {
            r.push(span(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().map(|s| s.step).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<&str> =
            PhaseId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), PhaseId::ALL.len());
        for required in [
            "compute", "stage", "verify", "exchange", "barrier", "recover",
        ] {
            assert!(names.contains(required), "missing span id {required:?}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = SpanRing::new(0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wraparound_keeps_exactly_the_last_capacity_spans(
            capacity in 1usize..32,
            pushes in 0usize..200,
        ) {
            let mut r = SpanRing::new(capacity);
            for s in 0..pushes {
                r.push(span(s as u64));
            }
            prop_assert_eq!(r.len(), pushes.min(capacity));
            prop_assert_eq!(r.dropped(), pushes.saturating_sub(capacity) as u64);
            let kept: Vec<u64> = r.iter().map(|s| s.step).collect();
            let expect: Vec<u64> =
                (pushes.saturating_sub(capacity)..pushes).map(|s| s as u64).collect();
            prop_assert_eq!(kept, expect);
            // Steady state: the ring never grows past its preallocation.
            prop_assert!(r.capacity() == capacity);
        }
    }
}
