//! Structured telemetry for the instrumented BSP executor: span tracing,
//! log2-bucketed histograms, live model-drift detection, and exporters.
//!
//! The paper's central finding is that *small-block latency*, not
//! bandwidth, binds the SMVP exchange (§5: µs-scale maximal blocks vs
//! ~100 ns → 7 ns cache-line blocks). Seeing that in a live run requires
//! per-block and per-phase *distributions*, not the coarse per-phase wall
//! sums the executor's counters accumulate. This module provides the
//! observability layer:
//!
//! * [`SpanRing`] / [`PhaseId`] — a preallocated overwrite-oldest ring of
//!   per-PE, per-step phase spans with a fixed span vocabulary
//!   (`compute`, `stage`, `verify`, `exchange`, `barrier`, `recover`, plus
//!   `assemble`/`fold`); recording is allocation-free in steady state;
//! * [`Log2Histogram`] — HDR-style power-of-two-bucketed histograms with
//!   p50/p90/p99/max summaries, used for block latency, block size,
//!   per-PE compute time, and chaos-layer backoff delays;
//! * [`DriftMonitor`] — per-step comparison of the measured exchange time
//!   against the Eq. (2) prediction `B_max·T_l + C_max·T_w` and the §3.4 β
//!   bracket, flagging steps the linear model cannot explain;
//! * [`Telemetry`] — the aggregate the executor owns, with exporters:
//!   Chrome `trace_event` JSON ([`Telemetry::to_chrome_trace`], loadable in
//!   `chrome://tracing` or Perfetto) and Prometheus text exposition
//!   ([`Telemetry::to_prometheus`]).
//!
//! Everything here operates on plain integers handed in by the executor
//! (nanosecond offsets from its epoch), so the module is deterministic
//! under test and free of any clock or I/O dependency.

mod context;
mod drift;
mod export;
mod histogram;
mod merge;
pub mod profile;
mod span;

pub use context::{FlowKind, FlowRec, InstantRec, TelemetrySnapshot, TraceContext};
pub use drift::{DriftConfig, DriftMonitor, DriftSample};
pub use histogram::{bucket_lower, bucket_of, bucket_upper, HistSummary, Log2Histogram, BUCKETS};
pub use merge::{merged_chrome_trace, merged_telemetry, ShardTrace, SupervisorInstant};
pub use span::{PhaseId, Span, SpanRing, TraceInstant};

/// Construction-time knobs for [`Telemetry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Span ring capacity (most recent spans retained).
    pub span_capacity: usize,
    /// Instant-event capacity (faults are rare; excess is counted, not
    /// kept).
    pub instant_capacity: usize,
    /// Drift-monitor configuration, or `None` to disable drift detection.
    pub drift: Option<DriftConfig>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            span_capacity: 65_536,
            instant_capacity: 4_096,
            drift: Some(DriftConfig::default()),
        }
    }
}

/// The telemetry state one executor owns: spans, instants, histograms, the
/// drift monitor, and per-phase wall accumulators.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Per-PE, per-step phase spans (most recent window).
    pub spans: SpanRing,
    instants: Vec<TraceInstant>,
    instant_cap: usize,
    instants_dropped: u64,
    /// Per-block exchange fetch latency, nanoseconds.
    pub block_latency_ns: Log2Histogram,
    /// Per-block message size, words.
    pub block_words: Log2Histogram,
    /// Per-PE compute-phase time, nanoseconds.
    pub compute_ns: Log2Histogram,
    /// Chaos-layer backoff/retry delay, nanoseconds.
    pub retry_ns: Log2Histogram,
    /// Node-aggregated exchange: merged per-(node, node) block size, words.
    /// Empty on flat runs.
    pub node_block_words: Log2Histogram,
    /// Live Eq. (2) drift monitor, when armed with per-PE loads.
    pub drift: Option<DriftMonitor>,
    /// BSP steps observed.
    pub steps: u64,
    /// Accumulated wall nanoseconds per phase (indexed like
    /// [`PhaseId::ALL`]).
    phase_wall_ns: [u64; PhaseId::ALL.len()],
    /// PEs in the traced executor (trace lane `pes` is the driver).
    pes: usize,
}

impl Telemetry {
    /// Telemetry for `pes` processing elements. `loads` (per-PE
    /// `(words, blocks)` per step) arms the drift monitor when the config
    /// asks for one.
    pub fn new(pes: usize, loads: Vec<(u64, u64)>, config: TelemetryConfig) -> Self {
        let instant_cap = config.instant_capacity.clamp(1, 1 << 20);
        Telemetry {
            spans: SpanRing::new(config.span_capacity),
            // Faults are exceptional, so instants may allocate when they
            // arrive; the steady-state hot path records none.
            instants: Vec::new(),
            instant_cap,
            instants_dropped: 0,
            block_latency_ns: Log2Histogram::new(),
            block_words: Log2Histogram::new(),
            compute_ns: Log2Histogram::new(),
            retry_ns: Log2Histogram::new(),
            node_block_words: Log2Histogram::new(),
            drift: config.drift.map(|d| DriftMonitor::new(loads, d)),
            steps: 0,
            phase_wall_ns: [0; PhaseId::ALL.len()],
            pes,
        }
    }

    /// PEs in the traced executor.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Records a span and attributes its duration to the phase totals.
    #[inline]
    pub fn span(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Adds `ns` of wall time to `phase`'s exposition counter.
    pub fn add_phase_wall(&mut self, phase: PhaseId, ns: u64) {
        self.phase_wall_ns[phase as usize] += ns;
    }

    /// Accumulated wall nanoseconds for `phase`.
    pub fn phase_wall_ns(&self, phase: PhaseId) -> u64 {
        self.phase_wall_ns[phase as usize]
    }

    /// Records a point event, keeping at most the configured capacity.
    pub fn instant(&mut self, event: TraceInstant) {
        if self.instants.len() < self.instant_cap {
            self.instants.push(event);
        } else {
            self.instants_dropped += 1;
        }
    }

    /// Retained point events, in recording order.
    pub fn instants(&self) -> &[TraceInstant] {
        &self.instants
    }

    /// Point events discarded because the buffer was full.
    pub fn instants_dropped(&self) -> u64 {
        self.instants_dropped
    }

    /// Accounts for `n` point events that existed elsewhere but cannot be
    /// carried into this aggregate (cross-process snapshots carry owned
    /// strings; [`TraceInstant`] names are `&'static str`). Keeps merged
    /// totals truthful without fabricating events.
    pub fn note_dropped_instants(&mut self, n: u64) {
        self.instants_dropped += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_accumulates_all_channels() {
        let mut t = Telemetry::new(2, vec![(10, 1), (8, 1)], TelemetryConfig::default());
        assert_eq!(t.pes(), 2);
        t.span(Span {
            phase: PhaseId::Compute,
            pe: 0,
            step: 0,
            start_ns: 0,
            dur_ns: 100,
        });
        t.add_phase_wall(PhaseId::Compute, 100);
        t.instant(TraceInstant {
            name: "fault:drop",
            pe: 1,
            step: 0,
            at_ns: 50,
        });
        t.block_latency_ns.record(120);
        t.block_words.record(30);
        t.steps = 1;
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.instants().len(), 1);
        assert_eq!(t.phase_wall_ns(PhaseId::Compute), 100);
        assert_eq!(t.phase_wall_ns(PhaseId::Exchange), 0);
        assert!(t.drift.is_some());
    }

    #[test]
    fn instant_overflow_is_counted_not_kept() {
        let mut t = Telemetry::new(
            1,
            vec![(0, 0)],
            TelemetryConfig {
                span_capacity: 4,
                instant_capacity: 2,
                drift: None,
            },
        );
        for i in 0..5 {
            t.instant(TraceInstant {
                name: "fault:crash",
                pe: 0,
                step: i,
                at_ns: i,
            });
        }
        assert_eq!(t.instants().len(), 2);
        assert_eq!(t.instants_dropped(), 3);
        assert!(t.drift.is_none());
    }
}
