//! The cross-process telemetry snapshot: what one shard child ships to the
//! supervising parent so per-process span rings can be merged into one
//! coherent timeline.
//!
//! A `--transport proc` run forks one OS process per shard, and each child
//! owns a full [`Telemetry`] — spans, histograms, fault instants — recorded
//! against *its own* monotonic epoch. This module defines the package that
//! crosses the process boundary at run end (and after every respawn):
//!
//! * [`TraceContext`] — the identity the parent hands each child at `Go`
//!   time (run id, shard, supervision generation) and that the child stamps
//!   on its snapshot, so generations of a respawned shard stay separable;
//! * [`FlowRec`] — one endpoint of a cross-shard block transfer (a post on
//!   the sender or an acquire on the receiver), the raw material for the
//!   Chrome flow events (`ph:"s"/"t"`) that make the irregular exchange
//!   visible in Perfetto;
//! * [`TelemetrySnapshot`] — the whole package with a self-contained binary
//!   codec. The codec is hand-rolled little-endian like the rest of the
//!   workspace (no serde): a version byte, fixed-width scalars, and
//!   length-prefixed sequences with hard caps so a corrupt length cannot
//!   allocate unbounded memory.
//!
//! The snapshot is *data only*: clock-domain alignment (the RTT-midpoint
//! offset measured at handshake) is the parent's knowledge and travels
//! separately — see `merge.rs`.

use super::histogram::{Log2Histogram, BUCKETS};
use super::span::{PhaseId, Span};
use super::Telemetry;

/// Codec version byte; bump on any layout change.
const SNAPSHOT_VERSION: u8 = 2;

/// Decode-side caps: a corrupt or adversarial length prefix must not turn
/// into a multi-gigabyte allocation. Generous multiples of the real
/// capacities (span ring 65 536, instants 4 096).
const MAX_SEQ: usize = 1 << 22;
const MAX_NAME: usize = 1 << 10;

/// The tracing identity a shard child runs under, propagated through the
/// frame codec at `Go` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies one `smvp-run` invocation across all its shard processes.
    pub run_id: u64,
    /// Shard index within the ensemble.
    pub shard: u32,
    /// Supervision generation: 0 for the first launch, +1 per respawn.
    pub generation: u32,
}

/// Which end of a block transfer a [`FlowRec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Sender side: the block left this shard (recorded at post time).
    Post,
    /// Receiver side: the block was consumed here (recorded at acquire).
    Acquire,
}

/// One endpoint of a cross-shard ghost-block transfer.
///
/// The merge layer pairs the k-th `Post` with the k-th `Acquire` for the
/// same `(step, from, to)` edge to synthesize a Chrome flow event from the
/// sender's track to the receiver's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRec {
    /// Post (sender) or acquire (receiver).
    pub kind: FlowKind,
    /// BSP step the block belongs to.
    pub step: u64,
    /// Producing PE (global id).
    pub from: u32,
    /// Consuming PE (global id).
    pub to: u32,
    /// Nanoseconds since the recording shard's epoch.
    pub at_ns: u64,
    /// Receiver only: nanoseconds the acquire spent blocked waiting.
    pub waited_ns: u64,
}

/// An owned fault/recovery point event. [`super::TraceInstant`] names are
/// `&'static str` for the zero-allocation hot path; a string that crossed a
/// process boundary has no static home, so snapshots carry owned names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantRec {
    /// Event name (e.g. `wire:stall`, `recover:restore`).
    pub name: String,
    /// PE the event is attributed to.
    pub pe: u32,
    /// BSP step.
    pub step: u64,
    /// Nanoseconds since the recording shard's epoch.
    pub at_ns: u64,
}

/// Everything one shard process knows about its own execution, packaged for
/// the parent.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Identity stamp: which run, which shard, which generation.
    pub ctx: TraceContext,
    /// First global PE this shard owns.
    pub pe_lo: u32,
    /// One past the last global PE this shard owns.
    pub pe_hi: u32,
    /// BSP steps the shard observed.
    pub steps: u64,
    /// Accumulated wall ns per phase, indexed by `PhaseId as usize` (the
    /// same layout [`Telemetry`] uses internally).
    pub phase_wall_ns: [u64; PhaseId::ALL.len()],
    /// The retained span window, oldest-first.
    pub spans: Vec<Span>,
    /// Spans the ring overwrote before the snapshot was taken.
    pub spans_dropped: u64,
    /// Retained fault/recovery instants.
    pub instants: Vec<InstantRec>,
    /// Instants dropped at capacity.
    pub instants_dropped: u64,
    /// Per-block exchange fetch latency, ns.
    pub block_latency_ns: Log2Histogram,
    /// Per-block message size, words.
    pub block_words: Log2Histogram,
    /// Per-PE compute-phase time, ns.
    pub compute_ns: Log2Histogram,
    /// Chaos-layer backoff delay, ns.
    pub retry_ns: Log2Histogram,
    /// Node-aggregated exchange: merged per-(node, node) block size, words.
    pub node_block_words: Log2Histogram,
    /// Cross-shard transfer endpoints recorded by this shard.
    pub flows: Vec<FlowRec>,
    /// Flow endpoints dropped once the bounded buffer filled.
    pub flows_dropped: u64,
}

impl TelemetrySnapshot {
    /// Captures `telemetry` (plus the transport's flow endpoints) under the
    /// identity `ctx`, for the global PE range `pe_lo..pe_hi`.
    pub fn capture(
        telemetry: &Telemetry,
        ctx: TraceContext,
        pe_lo: u32,
        pe_hi: u32,
        flows: Vec<FlowRec>,
        flows_dropped: u64,
    ) -> Self {
        let mut phase_wall_ns = [0u64; PhaseId::ALL.len()];
        for phase in PhaseId::ALL {
            phase_wall_ns[phase as usize] = telemetry.phase_wall_ns(phase);
        }
        TelemetrySnapshot {
            ctx,
            pe_lo,
            pe_hi,
            steps: telemetry.steps,
            phase_wall_ns,
            spans: telemetry.spans.iter().copied().collect(),
            spans_dropped: telemetry.spans.dropped(),
            instants: telemetry
                .instants()
                .iter()
                .map(|i| InstantRec {
                    name: i.name.to_string(),
                    pe: i.pe,
                    step: i.step,
                    at_ns: i.at_ns,
                })
                .collect(),
            instants_dropped: telemetry.instants_dropped(),
            block_latency_ns: telemetry.block_latency_ns.clone(),
            block_words: telemetry.block_words.clone(),
            compute_ns: telemetry.compute_ns.clone(),
            retry_ns: telemetry.retry_ns.clone(),
            node_block_words: telemetry.node_block_words.clone(),
            flows,
            flows_dropped,
        }
    }

    /// Serializes the snapshot for the `Telemetry` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(64 + 29 * self.spans.len() + 33 * self.flows.len());
        w.push(SNAPSHOT_VERSION);
        put_u64(&mut w, self.ctx.run_id);
        put_u32(&mut w, self.ctx.shard);
        put_u32(&mut w, self.ctx.generation);
        put_u32(&mut w, self.pe_lo);
        put_u32(&mut w, self.pe_hi);
        put_u64(&mut w, self.steps);
        put_u32(&mut w, self.phase_wall_ns.len() as u32);
        for &ns in &self.phase_wall_ns {
            put_u64(&mut w, ns);
        }
        put_u32(&mut w, self.spans.len() as u32);
        for s in &self.spans {
            w.push(s.phase as u8);
            put_u32(&mut w, s.pe);
            put_u64(&mut w, s.step);
            put_u64(&mut w, s.start_ns);
            put_u64(&mut w, s.dur_ns);
        }
        put_u64(&mut w, self.spans_dropped);
        put_u32(&mut w, self.instants.len() as u32);
        for i in &self.instants {
            put_str(&mut w, &i.name);
            put_u32(&mut w, i.pe);
            put_u64(&mut w, i.step);
            put_u64(&mut w, i.at_ns);
        }
        put_u64(&mut w, self.instants_dropped);
        for h in [
            &self.block_latency_ns,
            &self.block_words,
            &self.compute_ns,
            &self.retry_ns,
            &self.node_block_words,
        ] {
            put_histogram(&mut w, h);
        }
        put_u32(&mut w, self.flows.len() as u32);
        for f in &self.flows {
            w.push(match f.kind {
                FlowKind::Post => 0,
                FlowKind::Acquire => 1,
            });
            put_u64(&mut w, f.step);
            put_u32(&mut w, f.from);
            put_u32(&mut w, f.to);
            put_u64(&mut w, f.at_ns);
            put_u64(&mut w, f.waited_ns);
        }
        put_u64(&mut w, self.flows_dropped);
        w
    }

    /// Decodes a snapshot payload. Errors name the first malformed field;
    /// the frame layer has already checksummed the bytes, so an error here
    /// means a version or logic mismatch, not line noise.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Cursor { buf: bytes, pos: 0 };
        let version = r.u8("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "telemetry snapshot version {version} (expected {SNAPSHOT_VERSION})"
            ));
        }
        let ctx = TraceContext {
            run_id: r.u64("run_id")?,
            shard: r.u32("shard")?,
            generation: r.u32("generation")?,
        };
        let pe_lo = r.u32("pe_lo")?;
        let pe_hi = r.u32("pe_hi")?;
        let steps = r.u64("steps")?;
        let wall_len = r.len("phase_wall len", PhaseId::ALL.len() * 4)?;
        let mut phase_wall_ns = [0u64; PhaseId::ALL.len()];
        for i in 0..wall_len {
            let ns = r.u64("phase_wall")?;
            // A snapshot from a build with extra phases still decodes; the
            // surplus walls have no local phase to land on and are summed
            // into the last slot rather than silently vanishing.
            let slot = i.min(PhaseId::ALL.len() - 1);
            phase_wall_ns[slot] += ns;
        }
        let span_count = r.len("span count", MAX_SEQ)?;
        let mut spans = Vec::with_capacity(span_count);
        for _ in 0..span_count {
            let raw = r.u8("span phase")?;
            let phase =
                PhaseId::from_u8(raw).ok_or_else(|| format!("unknown span phase byte {raw}"))?;
            spans.push(Span {
                phase,
                pe: r.u32("span pe")?,
                step: r.u64("span step")?,
                start_ns: r.u64("span start")?,
                dur_ns: r.u64("span dur")?,
            });
        }
        let spans_dropped = r.u64("spans_dropped")?;
        let instant_count = r.len("instant count", MAX_SEQ)?;
        let mut instants = Vec::with_capacity(instant_count);
        for _ in 0..instant_count {
            instants.push(InstantRec {
                name: r.str("instant name")?,
                pe: r.u32("instant pe")?,
                step: r.u64("instant step")?,
                at_ns: r.u64("instant at")?,
            });
        }
        let instants_dropped = r.u64("instants_dropped")?;
        let block_latency_ns = take_histogram(&mut r)?;
        let block_words = take_histogram(&mut r)?;
        let compute_ns = take_histogram(&mut r)?;
        let retry_ns = take_histogram(&mut r)?;
        let node_block_words = take_histogram(&mut r)?;
        let flow_count = r.len("flow count", MAX_SEQ)?;
        let mut flows = Vec::with_capacity(flow_count);
        for _ in 0..flow_count {
            let kind = match r.u8("flow kind")? {
                0 => FlowKind::Post,
                1 => FlowKind::Acquire,
                other => return Err(format!("unknown flow kind byte {other}")),
            };
            flows.push(FlowRec {
                kind,
                step: r.u64("flow step")?,
                from: r.u32("flow from")?,
                to: r.u32("flow to")?,
                at_ns: r.u64("flow at")?,
                waited_ns: r.u64("flow waited")?,
            });
        }
        let flows_dropped = r.u64("flows_dropped")?;
        if r.pos != bytes.len() {
            return Err(format!(
                "telemetry snapshot has {} trailing bytes",
                bytes.len() - r.pos
            ));
        }
        Ok(TelemetrySnapshot {
            ctx,
            pe_lo,
            pe_hi,
            steps,
            phase_wall_ns,
            spans,
            spans_dropped,
            instants,
            instants_dropped,
            block_latency_ns,
            block_words,
            compute_ns,
            retry_ns,
            node_block_words,
            flows,
            flows_dropped,
        })
    }
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let take = bytes.len().min(MAX_NAME);
    put_u32(w, take as u32);
    w.extend_from_slice(&bytes[..take]);
}

fn put_histogram(w: &mut Vec<u8>, h: &Log2Histogram) {
    for &c in h.buckets() {
        put_u64(w, c);
    }
    let sum = h.sum();
    put_u64(w, sum as u64);
    put_u64(w, (sum >> 64) as u64);
    put_u64(w, h.min());
    put_u64(w, h.max());
}

fn take_histogram(r: &mut Cursor<'_>) -> Result<Log2Histogram, String> {
    let mut counts = [0u64; BUCKETS];
    for c in counts.iter_mut() {
        *c = r.u64("hist bucket")?;
    }
    let lo = r.u64("hist sum lo")?;
    let hi = r.u64("hist sum hi")?;
    let sum = (u128::from(hi) << 64) | u128::from(lo);
    let min = r.u64("hist min")?;
    let max = r.u64("hist max")?;
    Ok(Log2Histogram::from_raw(counts, sum, min, max))
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn bytes(&mut self, n: usize, what: &str) -> Result<&[u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("telemetry snapshot truncated reading {what}"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    /// A length prefix, validated against `cap` before any allocation.
    fn len(&mut self, what: &str, cap: usize) -> Result<usize, String> {
        let n = self.u32(what)? as usize;
        if n > cap {
            return Err(format!("telemetry snapshot {what} {n} exceeds cap {cap}"));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(what, MAX_NAME)?;
        let raw = self.bytes(n, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{TelemetryConfig, TraceInstant};
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut t = Telemetry::new(2, vec![(30, 1), (28, 1)], TelemetryConfig::default());
        for step in 0..4u64 {
            for pe in 0..2u32 {
                t.span(Span {
                    phase: PhaseId::Compute,
                    pe: 4 + pe,
                    step,
                    start_ns: step * 1_000 + u64::from(pe),
                    dur_ns: 400,
                });
                t.span(Span {
                    phase: PhaseId::Wait,
                    pe: 4 + pe,
                    step,
                    start_ns: step * 1_000 + 500,
                    dur_ns: 40,
                });
            }
            t.add_phase_wall(PhaseId::Compute, 800);
            t.add_phase_wall(PhaseId::Wait, 80);
            t.block_latency_ns.record(120 + step);
            t.block_words.record(30);
            t.steps += 1;
        }
        t.instant(TraceInstant {
            name: "wire:stall",
            pe: 5,
            step: 2,
            at_ns: 2_450,
        });
        let flows = vec![
            FlowRec {
                kind: FlowKind::Post,
                step: 1,
                from: 4,
                to: 2,
                at_ns: 1_100,
                waited_ns: 0,
            },
            FlowRec {
                kind: FlowKind::Acquire,
                step: 1,
                from: 1,
                to: 5,
                at_ns: 1_600,
                waited_ns: 250,
            },
        ];
        TelemetrySnapshot::capture(
            &t,
            TraceContext {
                run_id: 0xDEAD_BEEF_0042,
                shard: 1,
                generation: 2,
            },
            4,
            6,
            flows,
            3,
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = TelemetrySnapshot::decode(&bytes).expect("decode");
        assert_eq!(snap, back);
        assert_eq!(back.ctx.generation, 2);
        assert_eq!(back.spans.len(), 16);
        assert_eq!(back.instants.len(), 1);
        assert_eq!(back.instants[0].name, "wire:stall");
        assert_eq!(back.flows.len(), 2);
        assert_eq!(back.flows_dropped, 3);
        assert_eq!(back.block_latency_ns.count(), 4);
        assert_eq!(back.phase_wall_ns[PhaseId::Wait as usize], 320);
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        let bytes = sample_snapshot().encode();
        for cut in 0..bytes.len() {
            let err = TelemetrySnapshot::decode(&bytes[..cut]);
            assert!(err.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_snapshot().encode();
        bytes.push(0);
        assert!(TelemetrySnapshot::decode(&bytes)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn bad_version_and_bad_enums_are_rejected() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] = 99;
        assert!(TelemetrySnapshot::decode(&bytes)
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // Corrupt the span count (offset: 1 version + 8 + 4 + 4 + 4 + 4 + 8
        // bytes of header + 4 len + 10 walls * 8).
        let mut bytes = sample_snapshot().encode();
        let off = 1 + 8 + 4 + 4 + 4 + 4 + 8 + 4 + PhaseId::ALL.len() * 8;
        bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(TelemetrySnapshot::decode(&bytes)
            .unwrap_err()
            .contains("cap"));
    }

    #[test]
    fn empty_telemetry_snapshot_roundtrips() {
        let t = Telemetry::new(1, vec![(0, 0)], TelemetryConfig::default());
        let snap = TelemetrySnapshot::capture(
            &t,
            TraceContext {
                run_id: 1,
                shard: 0,
                generation: 0,
            },
            0,
            1,
            Vec::new(),
            0,
        );
        let back = TelemetrySnapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(snap, back);
        assert_eq!(back.block_latency_ns.count(), 0);
        // The empty-histogram min sentinel survives the trip: merging the
        // decoded histogram must not poison the min.
        let mut merged = back.block_latency_ns.clone();
        let mut other = Log2Histogram::new();
        other.record(7);
        merged.merge(&other);
        assert_eq!(merged.min(), 7);
    }
}
