//! Log2-bucketed (HDR-style) histograms for latency- and size-scale values.
//!
//! The paper's headline quantities span five orders of magnitude — ~7 ns
//! cache-line block latencies up to µs-scale maximal blocks — so a
//! fixed-width histogram either clips the tail or wastes its resolution.
//! [`Log2Histogram`] buckets by bit length instead: bucket `b` holds the
//! values whose highest set bit is `b-1` (bucket 0 holds exactly zero), so
//! every decade gets ~3.3 buckets and recording is two instructions. The
//! whole struct is a fixed 65-slot array — no allocation on record, merge,
//! or query — which is what lets the executor feed it from the hot path.

use std::fmt;

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A fixed-footprint histogram over `u64` values with power-of-two bucket
/// boundaries and exact count/sum/min/max side channels.
///
/// # Examples
///
/// ```
/// use quake_core::telemetry::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// for v in [3, 5, 9, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 1000);
/// assert!(h.percentile(0.5) >= 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// The index of the bucket holding `v`: 0 for zero, else `v`'s bit length.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b`.
pub fn bucket_lower(b: usize) -> u64 {
    assert!(b < BUCKETS, "bucket index out of range");
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of bucket `b`.
pub fn bucket_upper(b: usize) -> u64 {
    assert!(b < BUCKETS, "bucket index out of range");
    if b == 0 {
        0
    } else if b == 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Percentile summary of one histogram, as rendered by the report table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Median (bucket-resolution upper estimate).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: f64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuilds a histogram from transported raw state (the cross-process
    /// telemetry snapshot codec). `min` is the *observed* minimum as
    /// reported by [`Log2Histogram::min`] — for an empty histogram the
    /// internal sentinel is restored so later merges stay correct.
    pub fn from_raw(counts: [u64; BUCKETS], sum: u128, min: u64, max: u64) -> Self {
        let count: u64 = counts.iter().sum();
        Log2Histogram {
            counts,
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records `n` occurrences of `v` (used when only an aggregate count
    /// survives the hot path).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Merging is associative and commutative:
    /// any merge tree over the same records yields the same histogram
    /// (asserted by proptest).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index by [`bucket_of`]).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The `q`-quantile (`0 < q <= 1`) at bucket resolution: the upper
    /// bound of the bucket containing the ⌈q·count⌉-th smallest sample,
    /// clamped to the exact observed maximum. Returns 0 for an empty
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// The p50/p90/p99/max summary used by the report table and the
    /// Prometheus export.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            max: self.max(),
            mean: self.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_are_contiguous_and_exhaustive() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..BUCKETS {
            assert_eq!(
                bucket_lower(b),
                bucket_upper(b - 1).wrapping_add(1),
                "gap between buckets {} and {}",
                b - 1,
                b
            );
        }
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn summary_of_known_distribution() {
        let mut h = Log2Histogram::new();
        // 100 values: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        // p50 lands in the bucket of 50 (32..=63): upper bound 63.
        assert_eq!(s.p50, 63);
        // p99 lands in 64..=127, clamped to the observed max.
        assert_eq!(s.p99, 100);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for _ in 0..7 {
            a.record(42);
        }
        b.record_n(42, 7);
        b.record_n(9, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_is_rejected() {
        let _ = Log2Histogram::new().percentile(0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_value_lands_inside_its_bucket(v in 0u64..=u64::MAX) {
            let b = bucket_of(v);
            prop_assert!(bucket_lower(b) <= v, "lower({b}) > {v}");
            prop_assert!(v <= bucket_upper(b), "{v} > upper({b})");
        }

        #[test]
        fn merge_is_associative_and_commutative(
            xs in proptest::collection::vec(0u64..1_000_000_000, 0..64),
            ys in proptest::collection::vec(0u64..1_000_000_000, 0..64),
            zs in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        ) {
            let build = |vals: &[u64]| {
                let mut h = Log2Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            let (x, y, z) = (build(&xs), build(&ys), build(&zs));
            // (x ⊕ y) ⊕ z
            let mut left = x.clone();
            left.merge(&y);
            left.merge(&z);
            // x ⊕ (y ⊕ z)
            let mut yz = y.clone();
            yz.merge(&z);
            let mut right = x.clone();
            right.merge(&yz);
            prop_assert_eq!(&left, &right);
            // y ⊕ x == x ⊕ y
            let mut xy = x.clone();
            xy.merge(&y);
            let mut yx = y.clone();
            yx.merge(&x);
            prop_assert_eq!(&xy, &yx);
            // And the merge equals one histogram over the concatenation.
            let mut all = xs.clone();
            all.extend_from_slice(&ys);
            all.extend_from_slice(&zs);
            prop_assert_eq!(&left, &build(&all));
        }

        #[test]
        fn percentiles_are_monotone_and_bracket_the_data(
            xs in proptest::collection::vec(0u64..1_000_000_000, 1..128),
        ) {
            let mut h = Log2Histogram::new();
            for &v in &xs {
                h.record(v);
            }
            let s = h.summary();
            let lo = *xs.iter().min().unwrap();
            let hi = *xs.iter().max().unwrap();
            prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
            prop_assert_eq!(s.max, hi);
            prop_assert_eq!(h.min(), lo);
            // Bucket-resolution quantiles never undershoot the true value's
            // bucket lower bound and never exceed the max.
            prop_assert!(s.p50 >= lo);
        }
    }
}
