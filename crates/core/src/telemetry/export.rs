//! Exporters: Chrome `trace_event` JSON and Prometheus text exposition.
//!
//! Both formats are emitted by hand (the workspace has no real serde) and
//! deterministically: spans in ring order, histograms in bucket order,
//! object keys fixed. The Chrome output is the JSON Object Format
//! (`{"traceEvents": [...]}`) with complete (`ph:"X"`) events for spans and
//! instant (`ph:"i"`) events for faults, timestamps in fractional
//! microseconds as the format requires; it loads directly in
//! `chrome://tracing` and Perfetto. The Prometheus output uses the plain
//! text exposition format: histogram families with cumulative `le` buckets
//! and `+Inf`, plus counters for steps, phase walls, and drift flags.

use std::fmt::Write as _;

use super::histogram::{bucket_upper, Log2Histogram, BUCKETS};
use super::span::PhaseId;
use super::Telemetry;

/// Escapes a string for a JSON literal (the span vocabulary is static and
/// clean, but label strings pass through here for safety).
pub(super) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds to the fractional microseconds Chrome's `ts`/`dur` expect.
pub(super) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Telemetry {
    /// Renders the Chrome `trace_event` JSON document.
    ///
    /// One process (`pid` 0) named `process_name`; one thread lane per PE
    /// plus a `driver` lane (tid = PE count) for caller-thread work (fold,
    /// recovery control).
    pub fn to_chrome_trace(&self, process_name: &str) -> String {
        let mut out = String::with_capacity(256 + 160 * self.spans.len());
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&ev);
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(process_name)
            ),
        );
        // Truncated span windows must not masquerade as complete ones: the
        // ring overwrites oldest-first, so surface the loss in-band where a
        // person inspecting the trace will see it.
        push(
            &mut out,
            format!(
                "{{\"name\":\"telemetry_stats\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                 \"args\":{{\"name\":\"telemetry_stats\",\"dropped_spans\":{},\
                 \"dropped_instants\":{}}}}}",
                self.spans.dropped(),
                self.instants_dropped()
            ),
        );
        // Node-aggregated runs: surface the merged (node, node) block-size
        // distribution in-band so a Perfetto reader sees the aggregation
        // factor next to the gather spans and flow arrows.
        if self.node_block_words.count() > 0 {
            let s = self.node_block_words.summary();
            push(
                &mut out,
                format!(
                    "{{\"name\":\"node_block_words\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
                     \"args\":{{\"name\":\"node_block_words\",\"count\":{},\
                     \"p50\":{},\"p99\":{},\"max\":{},\"mean\":{}}}}}",
                    s.count,
                    s.p50,
                    s.p99,
                    s.max,
                    fmt_f64(s.mean)
                ),
            );
        }
        for pe in 0..=self.pes() {
            let label = if pe == self.pes() {
                "driver".to_string()
            } else {
                format!("PE {pe}")
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
            );
        }
        for s in self.spans.iter() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"bsp\",\"ph\":\"X\",\"pid\":0,\
                     \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"step\":{}}}}}",
                    s.phase.name(),
                    s.pe,
                    us(s.start_ns),
                    us(s.dur_ns),
                    s.step
                ),
            );
        }
        for i in self.instants() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{},\"ts\":{},\"args\":{{\"step\":{}}}}}",
                    json_escape(i.name),
                    i.pe,
                    us(i.at_ns),
                    i.step
                ),
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders the Prometheus text exposition.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        write_histogram(
            &mut out,
            "quake_block_latency_seconds",
            "Per-block exchange fetch latency.",
            &self.block_latency_ns,
            1e-9,
        );
        write_histogram(
            &mut out,
            "quake_block_size_words",
            "Exchange block size in 64-bit words.",
            &self.block_words,
            1.0,
        );
        write_histogram(
            &mut out,
            "quake_pe_compute_seconds",
            "Per-PE compute-phase time per step.",
            &self.compute_ns,
            1e-9,
        );
        write_histogram(
            &mut out,
            "quake_retry_delay_seconds",
            "Chaos-layer backoff/retry delay.",
            &self.retry_ns,
            1e-9,
        );
        write_histogram(
            &mut out,
            "quake_node_block_words",
            "Merged cross-node aggregate block size per (node, node) pair \
             in 64-bit words (empty on flat runs).",
            &self.node_block_words,
            1.0,
        );

        out.push_str("# HELP quake_steps_total BSP steps observed by telemetry.\n");
        out.push_str("# TYPE quake_steps_total counter\n");
        let _ = writeln!(out, "quake_steps_total {}", self.steps);

        out.push_str("# HELP quake_phase_seconds_total Accumulated wall time per BSP phase.\n");
        out.push_str("# TYPE quake_phase_seconds_total counter\n");
        for phase in PhaseId::ALL {
            let _ = writeln!(
                out,
                "quake_phase_seconds_total{{phase=\"{}\"}} {}",
                phase.name(),
                fmt_f64(self.phase_wall_ns(phase) as f64 * 1e-9)
            );
        }

        out.push_str("# HELP quake_spans_dropped_total Spans overwritten in the ring buffer.\n");
        out.push_str("# TYPE quake_spans_dropped_total counter\n");
        let _ = writeln!(out, "quake_spans_dropped_total {}", self.spans.dropped());

        out.push_str("# HELP quake_fault_instants_total Fault/recovery point events recorded.\n");
        out.push_str("# TYPE quake_fault_instants_total counter\n");
        let _ = writeln!(
            out,
            "quake_fault_instants_total {}",
            self.instants().len() as u64 + self.instants_dropped()
        );

        if let Some(drift) = &self.drift {
            out.push_str(
                "# HELP quake_drift_flagged_total Steps whose measured exchange time \
                 escaped the Eq. (2) model.\n",
            );
            out.push_str("# TYPE quake_drift_flagged_total counter\n");
            let _ = writeln!(out, "quake_drift_flagged_total {}", drift.flagged_total());
            out.push_str("# HELP quake_drift_beta_bound The section 3.4 beta bound.\n");
            out.push_str("# TYPE quake_drift_beta_bound gauge\n");
            let _ = writeln!(out, "quake_drift_beta_bound {}", fmt_f64(drift.beta()));
            out.push_str("# HELP quake_drift_worst_score Worst per-step drift score seen.\n");
            out.push_str("# TYPE quake_drift_worst_score gauge\n");
            let worst = drift.worst().map_or(0.0, |w| w.score);
            let _ = writeln!(out, "quake_drift_worst_score {}", fmt_f64(worst));
        }
        out
    }
}

/// Prometheus sample values must be plain decimal or scientific floats;
/// `{:e}` keeps tiny latencies exact without 30-digit expansions.
pub(super) fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if (1e-3..1e15).contains(&v.abs()) {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

/// Writes one histogram family: cumulative `_bucket{le=...}` lines over the
/// occupied log2 buckets, `+Inf`, `_sum`, `_count`.
pub(super) fn write_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    h: &Log2Histogram,
    scale: f64,
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let top = (0..BUCKETS).rev().find(|&b| h.buckets()[b] > 0);
    let mut cum = 0u64;
    if let Some(top) = top {
        for b in 0..=top {
            cum += h.buckets()[b];
            let le = bucket_upper(b) as f64 * scale;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_f64(le));
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", fmt_f64(h.sum() as f64 * scale));
    let _ = writeln!(out, "{name}_count {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::super::span::{Span, TraceInstant};
    use super::super::{Telemetry, TelemetryConfig};
    use super::*;

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::new(2, vec![(30, 1), (30, 1)], TelemetryConfig::default());
        for step in 0..3u64 {
            for pe in 0..2u32 {
                t.span(Span {
                    phase: PhaseId::Compute,
                    pe,
                    step,
                    start_ns: step * 1000,
                    dur_ns: 400 + u64::from(pe),
                });
                t.span(Span {
                    phase: PhaseId::Exchange,
                    pe,
                    step,
                    start_ns: step * 1000 + 500,
                    dur_ns: 100,
                });
                t.span(Span {
                    phase: PhaseId::Barrier,
                    pe,
                    step,
                    start_ns: step * 1000 + 600,
                    dur_ns: 10,
                });
                t.compute_ns.record(400);
            }
            t.span(Span {
                phase: PhaseId::Fold,
                pe: 2,
                step,
                start_ns: step * 1000 + 700,
                dur_ns: 50,
            });
            t.block_latency_ns.record(120 + step);
            t.block_words.record(30);
            t.add_phase_wall(PhaseId::Compute, 401);
            t.add_phase_wall(PhaseId::Exchange, 100);
            t.steps += 1;
        }
        t.instant(TraceInstant {
            name: "fault:drop",
            pe: 1,
            step: 1,
            at_ns: 1550,
        });
        t
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_instants() {
        let t = sample_telemetry();
        let text = t.to_chrome_trace("smvp sf10 x4");
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        for needle in [
            "\"process_name\"",
            "\"thread_name\"",
            "\"driver\"",
            "\"name\":\"compute\"",
            "\"name\":\"exchange\"",
            "\"name\":\"barrier\"",
            "\"name\":\"fold\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"name\":\"fault:drop\"",
            "\"args\":{\"step\":1}",
        ] {
            assert!(text.contains(needle), "missing {needle} in trace:\n{text}");
        }
        // ts in fractional µs: 1550 ns → 1.550.
        assert!(text.contains("\"ts\":1.550"));
    }

    #[test]
    fn prometheus_exposition_has_expected_families() {
        let t = sample_telemetry();
        let text = t.to_prometheus();
        for family in [
            "quake_block_latency_seconds",
            "quake_block_size_words",
            "quake_pe_compute_seconds",
            "quake_retry_delay_seconds",
            "quake_steps_total",
            "quake_phase_seconds_total",
            "quake_spans_dropped_total",
            "quake_fault_instants_total",
            "quake_drift_flagged_total",
            "quake_drift_beta_bound",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("quake_steps_total 3"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
        // Cumulative bucket counts end at the total count.
        assert!(text.contains("quake_block_size_words_count 3"));
        assert!(text.contains("phase=\"compute\""));
    }

    #[test]
    fn empty_telemetry_still_exports_valid_documents() {
        let t = Telemetry::new(1, vec![(0, 0)], TelemetryConfig::default());
        let trace = t.to_chrome_trace("empty");
        assert!(trace.contains("traceEvents"));
        let prom = t.to_prometheus();
        assert!(prom.contains("quake_steps_total 0"));
        assert!(prom.contains("quake_block_latency_seconds_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn us_formats_ns_remainder() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_550), "1.550");
        assert_eq!(us(1_000_007), "1000.007");
    }
}
