//! Merging per-shard telemetry snapshots into one coherent timeline.
//!
//! Each shard process records against its own monotonic epoch. The parent
//! measures, at handshake time, an RTT-midpoint clock offset per shard
//! (generation-tagged, re-measured after every respawn); this module applies
//! those offsets and renders a single Chrome `trace_event` document:
//!
//! * one *process* track per shard (`pid` = shard index), labeled with the
//!   shard's PE range and supervision generation, plus a `supervisor` track
//!   for parent-side incidents;
//! * one *thread* lane per global PE inside its owning shard's process;
//! * cross-process flow events (`ph:"s"` → `ph:"t"`) pairing each ghost
//!   block's post on the sender track with its acquire on the receiver
//!   track, which is what makes the irregular exchange *visible*: in
//!   Perfetto the flow arrows fan out from a posting PE to every consumer,
//!   and a stalled wire shows up as a long arrow into a long `wait` span;
//! * per-shard and whole-run `telemetry_stats` metadata carrying dropped
//!   span/instant/flow counts so a truncated window is visibly truncated.
//!
//! [`merged_telemetry`] separately folds the snapshots into one aggregate
//! [`Telemetry`] so the existing summary table and Prometheus exposition
//! work unchanged on distributed runs.

use std::collections::BTreeMap;

use super::context::{FlowKind, TelemetrySnapshot};
use super::export::{json_escape, us};
use super::span::Span;
use super::{PhaseId, Telemetry, TelemetryConfig};

/// One shard's snapshot plus the parent's knowledge of its clock domain.
#[derive(Debug, Clone)]
pub struct ShardTrace {
    /// The package the shard child shipped at run end.
    pub snap: TelemetrySnapshot,
    /// Nanoseconds to *add* to the shard's timestamps to express them on
    /// the parent's run clock (RTT-midpoint estimate from handshake).
    pub clock_offset_ns: i64,
}

/// A parent-side incident to render on the supervisor track (wire chaos
/// verdicts, respawns).
#[derive(Debug, Clone)]
pub struct SupervisorInstant {
    /// Event name (e.g. `incident:stall`, `incident:respawn`).
    pub name: String,
    /// Shard the incident concerns.
    pub shard: u32,
    /// Nanoseconds on the parent's run clock.
    pub at_ns: u64,
}

impl ShardTrace {
    /// A shard timestamp expressed on the parent's run clock.
    fn align(&self, ns: u64) -> u64 {
        (ns as i64).saturating_add(self.clock_offset_ns).max(0) as u64
    }
}

/// Renders the merged multi-process Chrome trace document.
pub fn merged_chrome_trace(
    run_name: &str,
    shards: &[ShardTrace],
    supervisor: &[SupervisorInstant],
) -> String {
    let total_spans: usize = shards.iter().map(|s| s.snap.spans.len()).sum();
    let mut out = String::with_capacity(512 + 170 * total_spans);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };

    let (flow_events, unpaired_flows) = pair_flows(shards);

    // Whole-run stats up front: a reader (human or validator) learns about
    // loss before scrolling any events.
    let dropped_spans: u64 = shards.iter().map(|s| s.snap.spans_dropped).sum();
    let dropped_instants: u64 = shards.iter().map(|s| s.snap.instants_dropped).sum();
    let dropped_flows: u64 = shards.iter().map(|s| s.snap.flows_dropped).sum();
    let run_id = shards.first().map_or(0, |s| s.snap.ctx.run_id);
    push(
        &mut out,
        format!(
            "{{\"name\":\"telemetry_stats\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"telemetry_stats\",\"run_id\":{run_id},\
             \"shards\":{},\"dropped_spans\":{dropped_spans},\
             \"dropped_instants\":{dropped_instants},\
             \"dropped_flows\":{dropped_flows},\
             \"unpaired_flows\":{unpaired_flows}}}}}",
            shards.len()
        ),
    );

    for st in shards {
        let snap = &st.snap;
        let pid = snap.ctx.shard;
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{} shard {pid} gen {} (PE {}..{})\"}}}}",
                json_escape(run_name),
                snap.ctx.generation,
                snap.pe_lo,
                snap.pe_hi,
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\":\"telemetry_stats\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"telemetry_stats\",\"generation\":{},\
                 \"dropped_spans\":{},\"dropped_instants\":{},\"dropped_flows\":{}}}}}",
                snap.ctx.generation, snap.spans_dropped, snap.instants_dropped, snap.flows_dropped
            ),
        );
        let mut tids: Vec<u32> = snap.spans.iter().map(|s| s.pe).collect();
        tids.extend(snap.instants.iter().map(|i| i.pe));
        tids.extend(snap.pe_lo..snap.pe_hi);
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let label = if (snap.pe_lo..snap.pe_hi).contains(tid) {
                format!("PE {tid}")
            } else {
                "driver".to_string()
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
            );
        }
        // Sort by (lane, aligned start) so each track reads monotonically —
        // the ring interleaves PEs within a step.
        let mut spans: Vec<Span> = snap.spans.clone();
        spans.sort_by_key(|s| (s.pe, st.align(s.start_ns), s.dur_ns));
        for s in &spans {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"bsp\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"step\":{}}}}}",
                    s.phase.name(),
                    s.pe,
                    us(st.align(s.start_ns)),
                    us(s.dur_ns),
                    s.step
                ),
            );
        }
        for i in &snap.instants {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{\"step\":{}}}}}",
                    json_escape(&i.name),
                    i.pe,
                    us(st.align(i.at_ns)),
                    i.step
                ),
            );
        }
    }

    for ev in flow_events {
        push(&mut out, ev);
    }

    if !supervisor.is_empty() {
        let sup_pid = shards
            .iter()
            .map(|s| s.snap.ctx.shard + 1)
            .max()
            .unwrap_or(0);
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{sup_pid},\"tid\":0,\
                 \"args\":{{\"name\":\"supervisor\"}}}}"
            ),
        );
        for i in supervisor {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{sup_pid},\"tid\":0,\"ts\":{},\"args\":{{\"shard\":{}}}}}",
                    json_escape(&i.name),
                    us(i.at_ns),
                    i.shard
                ),
            );
        }
    }

    out.push_str("]}");
    out
}

/// One endpoint of a flow, located on the merged timeline.
struct FlowEnd {
    pid: u32,
    tid: u32,
    at_ns: u64,
}

/// Pairs the k-th post with the k-th acquire per `(step, from, to)` edge
/// (both sides sorted by aligned time) and renders `ph:"s"`/`ph:"t"` event
/// pairs. Returns the rendered events and the count of endpoints that never
/// found a partner (receiver died, buffer truncated on one side).
///
/// Only complete pairs are emitted, so the merged document satisfies "every
/// `s` has a matching `t`" by construction; the losses are reported in the
/// `telemetry_stats` metadata instead of dangling arrows.
fn pair_flows(shards: &[ShardTrace]) -> (Vec<String>, u64) {
    type Edge = (u64, u32, u32);
    let mut posts: BTreeMap<Edge, Vec<FlowEnd>> = BTreeMap::new();
    let mut acquires: BTreeMap<Edge, Vec<FlowEnd>> = BTreeMap::new();
    for st in shards {
        for f in &st.snap.flows {
            let end = FlowEnd {
                pid: st.snap.ctx.shard,
                tid: match f.kind {
                    FlowKind::Post => f.from,
                    FlowKind::Acquire => f.to,
                },
                at_ns: st.align(f.at_ns),
            };
            let bucket = match f.kind {
                FlowKind::Post => &mut posts,
                FlowKind::Acquire => &mut acquires,
            };
            bucket.entry((f.step, f.from, f.to)).or_default().push(end);
        }
    }
    let mut events = Vec::new();
    let mut unpaired = 0u64;
    let mut next_id = 1u64;
    for (edge, mut ps) in posts {
        let mut acqs = acquires.remove(&edge).unwrap_or_default();
        ps.sort_by_key(|e| e.at_ns);
        acqs.sort_by_key(|e| e.at_ns);
        let pairs = ps.len().min(acqs.len());
        unpaired += (ps.len().max(acqs.len()) - pairs) as u64;
        let (step, from, to) = edge;
        for (p, a) in ps.iter().zip(acqs.iter()).take(pairs) {
            let id = next_id;
            next_id += 1;
            // Clamp so the arrow never points backward in time: offsets are
            // RTT-midpoint *estimates* and can disagree by half an RTT.
            let t_ns = a.at_ns.max(p.at_ns);
            events.push(format!(
                "{{\"name\":\"ghost {from}->{to}\",\"cat\":\"ghost\",\"ph\":\"s\",\
                 \"id\":{id},\"pid\":{},\"tid\":{},\"ts\":{},\
                 \"args\":{{\"step\":{step}}}}}",
                p.pid,
                p.tid,
                us(p.at_ns)
            ));
            events.push(format!(
                "{{\"name\":\"ghost {from}->{to}\",\"cat\":\"ghost\",\"ph\":\"t\",\
                 \"id\":{id},\"pid\":{},\"tid\":{},\"ts\":{},\
                 \"args\":{{\"step\":{step}}}}}",
                a.pid,
                a.tid,
                us(t_ns)
            ));
        }
    }
    unpaired += acquires.values().map(|v| v.len() as u64).sum::<u64>();
    (events, unpaired)
}

/// Folds the shard snapshots into one aggregate [`Telemetry`] (offsets
/// applied to span timestamps) so the summary table and Prometheus
/// exposition work unchanged on a distributed run.
///
/// The drift monitor is not reconstructed — it needs per-step residual
/// state that does not survive snapshotting — and instants are accounted
/// as dropped (their owned names cannot become `&'static str`), keeping
/// `quake_fault_instants_total` truthful.
pub fn merged_telemetry(shards: &[ShardTrace]) -> Telemetry {
    let pes = shards.iter().map(|s| s.snap.pe_hi).max().unwrap_or(0) as usize;
    let total_spans: usize = shards.iter().map(|s| s.snap.spans.len()).sum();
    let mut t = Telemetry::new(
        pes,
        Vec::new(),
        TelemetryConfig {
            span_capacity: total_spans.max(1),
            instant_capacity: 1,
            drift: None,
        },
    );
    for st in shards {
        let snap = &st.snap;
        for s in &snap.spans {
            t.span(Span {
                start_ns: st.align(s.start_ns),
                ..*s
            });
        }
        t.spans.note_dropped(snap.spans_dropped);
        t.note_dropped_instants(snap.instants.len() as u64 + snap.instants_dropped);
        for phase in PhaseId::ALL {
            t.add_phase_wall(phase, snap.phase_wall_ns[phase as usize]);
        }
        t.block_latency_ns.merge(&snap.block_latency_ns);
        t.block_words.merge(&snap.block_words);
        t.compute_ns.merge(&snap.compute_ns);
        t.retry_ns.merge(&snap.retry_ns);
        t.node_block_words.merge(&snap.node_block_words);
        t.steps = t.steps.max(snap.steps);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::super::context::{FlowRec, TraceContext};
    use super::*;

    fn shard(shard: u32, pe_lo: u32, pe_hi: u32, offset: i64) -> ShardTrace {
        let mut spans = Vec::new();
        for step in 0..3u64 {
            for pe in pe_lo..pe_hi {
                spans.push(Span {
                    phase: PhaseId::Compute,
                    pe,
                    step,
                    start_ns: step * 1_000,
                    dur_ns: 400,
                });
                spans.push(Span {
                    phase: PhaseId::Exchange,
                    pe,
                    step,
                    start_ns: step * 1_000 + 450,
                    dur_ns: 200,
                });
            }
        }
        let mut phase_wall_ns = [0u64; PhaseId::ALL.len()];
        phase_wall_ns[PhaseId::Compute as usize] = 1_200 * u64::from(pe_hi - pe_lo);
        ShardTrace {
            snap: TelemetrySnapshot {
                ctx: TraceContext {
                    run_id: 7,
                    shard,
                    generation: u32::from(shard == 1),
                },
                pe_lo,
                pe_hi,
                steps: 3,
                phase_wall_ns,
                spans,
                spans_dropped: 2,
                instants: Vec::new(),
                instants_dropped: 1,
                block_latency_ns: Default::default(),
                block_words: Default::default(),
                compute_ns: Default::default(),
                retry_ns: Default::default(),
                node_block_words: Default::default(),
                flows: Vec::new(),
                flows_dropped: 0,
            },
            clock_offset_ns: offset,
        }
    }

    fn with_flows(mut st: ShardTrace, flows: Vec<FlowRec>) -> ShardTrace {
        st.snap.flows = flows;
        st
    }

    #[test]
    fn merged_trace_has_one_process_per_shard_and_stats() {
        let shards = [shard(0, 0, 2, 0), shard(1, 2, 4, 5_000)];
        let text = merged_chrome_trace("smvp", &shards, &[]);
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.contains("\"name\":\"smvp shard 0 gen 0 (PE 0..2)\""));
        assert!(text.contains("\"name\":\"smvp shard 1 gen 1 (PE 2..4)\""));
        assert!(text.contains("\"dropped_spans\":4")); // run total
        assert!(text.contains("\"pid\":1,\"tid\":3"));
        // Offset application: shard 1 step-0 compute starts at 5 µs.
        assert!(text.contains("\"ts\":5.000"));
    }

    #[test]
    fn flows_pair_post_with_acquire_across_processes() {
        let a = with_flows(
            shard(0, 0, 1, 0),
            vec![FlowRec {
                kind: FlowKind::Post,
                step: 1,
                from: 0,
                to: 1,
                at_ns: 1_450,
                waited_ns: 0,
            }],
        );
        let b = with_flows(
            shard(1, 1, 2, 100),
            vec![FlowRec {
                kind: FlowKind::Acquire,
                step: 1,
                from: 0,
                to: 1,
                at_ns: 1_500,
                waited_ns: 40,
            }],
        );
        let text = merged_chrome_trace("smvp", &[a, b], &[]);
        assert!(text.contains("\"ph\":\"s\",\"id\":1,\"pid\":0,\"tid\":0"));
        assert!(text.contains("\"ph\":\"t\",\"id\":1,\"pid\":1,\"tid\":1"));
        assert!(text.contains("\"unpaired_flows\":0"));
    }

    #[test]
    fn unpaired_endpoints_are_counted_not_emitted() {
        let a = with_flows(
            shard(0, 0, 1, 0),
            vec![
                FlowRec {
                    kind: FlowKind::Post,
                    step: 0,
                    from: 0,
                    to: 1,
                    at_ns: 10,
                    waited_ns: 0,
                },
                FlowRec {
                    kind: FlowKind::Post,
                    step: 0,
                    from: 0,
                    to: 1,
                    at_ns: 20,
                    waited_ns: 0,
                },
            ],
        );
        let b = with_flows(
            shard(1, 1, 2, 0),
            vec![
                FlowRec {
                    kind: FlowKind::Acquire,
                    step: 0,
                    from: 0,
                    to: 1,
                    at_ns: 30,
                    waited_ns: 0,
                },
                // A stray acquire on an edge nobody posted.
                FlowRec {
                    kind: FlowKind::Acquire,
                    step: 9,
                    from: 0,
                    to: 1,
                    at_ns: 40,
                    waited_ns: 0,
                },
            ],
        );
        let text = merged_chrome_trace("smvp", &[a, b], &[]);
        assert_eq!(text.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"t\"").count(), 1);
        assert!(text.contains("\"unpaired_flows\":2"));
    }

    #[test]
    fn flow_arrow_never_points_backward() {
        // Receiver clock behind by 1 µs: raw acquire ts < post ts.
        let a = with_flows(
            shard(0, 0, 1, 0),
            vec![FlowRec {
                kind: FlowKind::Post,
                step: 0,
                from: 0,
                to: 1,
                at_ns: 2_000,
                waited_ns: 0,
            }],
        );
        let b = with_flows(
            shard(1, 1, 2, -1_000),
            vec![FlowRec {
                kind: FlowKind::Acquire,
                step: 0,
                from: 0,
                to: 1,
                at_ns: 2_500,
                waited_ns: 0,
            }],
        );
        let text = merged_chrome_trace("smvp", &[a, b], &[]);
        // Acquire aligned to 1.5 µs, clamped up to the post's 2.0 µs.
        assert!(text.contains("\"ph\":\"t\",\"id\":1,\"pid\":1,\"tid\":1,\"ts\":2.000"));
    }

    #[test]
    fn supervisor_track_renders_incidents() {
        let shards = [shard(0, 0, 1, 0), shard(2, 1, 2, 0)];
        let sup = [SupervisorInstant {
            name: "incident:stall".to_string(),
            shard: 2,
            at_ns: 9_000,
        }];
        let text = merged_chrome_trace("smvp", &shards, &sup);
        assert!(text.contains("\"name\":\"supervisor\""));
        // Supervisor pid sits above the largest shard pid.
        assert!(text.contains("\"pid\":3,\"tid\":0,\"ts\":9.000"));
        assert!(text.contains("\"args\":{\"shard\":2}"));
    }

    #[test]
    fn merged_telemetry_aggregates_counters() {
        let shards = [shard(0, 0, 2, 0), shard(1, 2, 4, 5_000)];
        let t = merged_telemetry(&shards);
        assert_eq!(t.pes(), 4);
        assert_eq!(t.steps, 3);
        assert_eq!(t.spans.len(), 24);
        assert_eq!(t.spans.dropped(), 4);
        assert_eq!(t.instants_dropped(), 2);
        assert_eq!(t.phase_wall_ns(PhaseId::Compute), 4_800);
        // Prometheus export works on the merged aggregate.
        let prom = t.to_prometheus();
        assert!(prom.contains("quake_spans_dropped_total 4"));
        assert!(prom.contains("quake_steps_total 3"));
    }

    #[test]
    fn aligned_span_starts_are_monotonic_per_track() {
        let shards = [shard(0, 0, 2, 0), shard(1, 2, 4, -250)];
        let text = merged_chrome_trace("smvp", &shards, &[]);
        // Extract (pid, tid, ts) for X events in document order and check
        // per-track monotonicity the same way the bench validator does.
        let mut last: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for ev in text.split("{\"name\":").skip(1) {
            if !ev.contains("\"ph\":\"X\"") {
                continue;
            }
            let grab = |key: &str| -> f64 {
                let at = ev.find(key).unwrap() + key.len();
                let rest = &ev[at..];
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                    .unwrap_or(rest.len());
                rest[..end].parse().unwrap()
            };
            let key = (grab("\"pid\":") as u32, grab("\"tid\":") as u32);
            let ts = grab("\"ts\":");
            if let Some(prev) = last.insert(key, ts) {
                assert!(prev <= ts, "track {key:?} went backwards: {prev} > {ts}");
            }
        }
        assert!(!last.is_empty());
    }
}
