//! Requirement sweeps: the data series behind paper Figures 8–11.
//!
//! Each function maps SMVP instances × machine assumptions to the rows or
//! curves the paper plots; the `quake-bench` binaries print them.

use crate::characterize::SmvpInstance;
use crate::machine::{BlockRegime, Processor, WORD_BYTES};
use crate::model::bisection::required_bisection_bandwidth;
use crate::model::eq1::required_tc;
use crate::model::eq2::{half_bandwidth_point, latency_for_target, HalfBandwidthPoint};

/// The efficiency targets the paper sweeps (50%, 80%, 90%).
pub const EFFICIENCIES: [f64; 3] = [0.5, 0.8, 0.9];

/// One point of Figure 9: required sustained per-PE bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SustainedBandwidthPoint {
    /// The instance label (`sfx/y`).
    pub label: String,
    /// Subdomain count.
    pub subdomains: usize,
    /// Processor assumption.
    pub processor: Processor,
    /// Target efficiency.
    pub efficiency: f64,
    /// Required sustained bandwidth, bytes/second.
    pub bandwidth_bytes: f64,
}

/// Figure 9 series: required sustained per-PE bandwidth for every instance ×
/// processor × efficiency combination.
pub fn sustained_bandwidth_series(
    instances: &[SmvpInstance],
    processors: &[Processor],
    efficiencies: &[f64],
) -> Vec<SustainedBandwidthPoint> {
    let mut out = Vec::new();
    for inst in instances {
        for pe in processors {
            for &e in efficiencies {
                let t_c = required_tc(inst, e, pe.t_f);
                out.push(SustainedBandwidthPoint {
                    label: inst.label(),
                    subdomains: inst.subdomains,
                    processor: *pe,
                    efficiency: e,
                    bandwidth_bytes: WORD_BYTES / t_c,
                });
            }
        }
    }
    out
}

/// One point of Figure 8: required sustained bisection bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectionPoint {
    /// The instance label.
    pub label: String,
    /// Subdomain count.
    pub subdomains: usize,
    /// Processor assumption.
    pub processor: Processor,
    /// Target efficiency.
    pub efficiency: f64,
    /// Words crossing the bisection per SMVP.
    pub v_words: u64,
    /// Required bisection bandwidth, bytes/second.
    pub bandwidth_bytes: f64,
}

/// Figure 8 series. Unlike Figure 9, this needs the traffic matrix's
/// bisection volume `V`, which the paper derived from the partitioned
/// meshes; pass `(instance, v_words)` pairs from the synthetic pipeline.
pub fn bisection_series(
    instances_with_v: &[(SmvpInstance, u64)],
    processors: &[Processor],
    efficiencies: &[f64],
) -> Vec<BisectionPoint> {
    let mut out = Vec::new();
    for (inst, v) in instances_with_v {
        if inst.c_max == 0 {
            continue;
        }
        for pe in processors {
            for &e in efficiencies {
                let t_c = required_tc(inst, e, pe.t_f);
                out.push(BisectionPoint {
                    label: inst.label(),
                    subdomains: inst.subdomains,
                    processor: *pe,
                    efficiency: e,
                    v_words: *v,
                    bandwidth_bytes: required_bisection_bandwidth(*v, inst.c_max, t_c),
                });
            }
        }
    }
    out
}

/// One Figure 10 tradeoff curve: for a fixed instance/efficiency/processor,
/// the block latency permitted at each burst bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffCurve {
    /// Target efficiency.
    pub efficiency: f64,
    /// Block regime the curve was computed under.
    pub regime: BlockRegime,
    /// `(burst bandwidth bytes/s, permitted block latency seconds)` points;
    /// burst bandwidths below feasibility are omitted.
    pub points: Vec<(f64, f64)>,
}

/// Computes a Figure 10 curve over the given burst bandwidths (bytes/s).
pub fn tradeoff_curve(
    instance: &SmvpInstance,
    efficiency: f64,
    processor: &Processor,
    regime: BlockRegime,
    burst_bandwidths_bytes: &[f64],
) -> TradeoffCurve {
    let t_c = required_tc(instance, efficiency, processor.t_f);
    let points = burst_bandwidths_bytes
        .iter()
        .filter_map(|&bw| {
            let t_w = WORD_BYTES / bw;
            latency_for_target(instance, t_c, t_w, regime).map(|t_l| (bw, t_l))
        })
        .collect();
    TradeoffCurve {
        efficiency,
        regime,
        points,
    }
}

/// One point of Figure 11: a half-bandwidth design point.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfBandwidthRow {
    /// The instance label.
    pub label: String,
    /// Subdomain count.
    pub subdomains: usize,
    /// Processor assumption.
    pub processor: Processor,
    /// Target efficiency.
    pub efficiency: f64,
    /// Block regime.
    pub regime: BlockRegime,
    /// The half-bandwidth `(T_l, T_w)` design point.
    pub point: HalfBandwidthPoint,
}

/// Figure 11 series: half-bandwidth design points for every combination.
pub fn half_bandwidth_series(
    instances: &[SmvpInstance],
    processors: &[Processor],
    efficiencies: &[f64],
    regimes: &[BlockRegime],
) -> Vec<HalfBandwidthRow> {
    let mut out = Vec::new();
    for inst in instances {
        if inst.c_max == 0 {
            continue;
        }
        for pe in processors {
            for &e in efficiencies {
                for &regime in regimes {
                    let t_c = required_tc(inst, e, pe.t_f);
                    out.push(HalfBandwidthRow {
                        label: inst.label(),
                        subdomains: inst.subdomains,
                        processor: *pe,
                        efficiency: e,
                        regime,
                        point: half_bandwidth_point(inst, t_c, regime),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paperdata;

    #[test]
    fn figure9_worst_case_is_about_300mb() {
        let sf2 = paperdata::figure7_app("sf2");
        let series =
            sustained_bandwidth_series(&sf2, &[Processor::hypothetical_200mflops()], &[0.9]);
        let worst = series.iter().map(|p| p.bandwidth_bytes).fold(0.0, f64::max);
        assert!(
            (250e6..320e6).contains(&worst),
            "worst sf2 requirement = {:.0} MB/s",
            worst / 1e6
        );
        // The binding instance is the largest p (lowest F/C_max).
        let binding = series
            .iter()
            .max_by(|a, b| a.bandwidth_bytes.partial_cmp(&b.bandwidth_bytes).unwrap())
            .unwrap();
        assert_eq!(binding.subdomains, 128);
    }

    #[test]
    fn figure9_series_covers_grid() {
        let sf2 = paperdata::figure7_app("sf2");
        let series = sustained_bandwidth_series(
            &sf2,
            &[
                Processor::hypothetical_100mflops(),
                Processor::hypothetical_200mflops(),
            ],
            &EFFICIENCIES,
        );
        assert_eq!(series.len(), 6 * 2 * 3);
    }

    #[test]
    fn figure10_curves_are_monotone() {
        // More burst bandwidth permits more latency.
        let inst = paperdata::figure7_instance("sf2", 128).unwrap();
        let bws: Vec<f64> = (1..=40).map(|i| i as f64 * 50e6).collect();
        let curve = tradeoffs_for_test(&inst, &bws);
        assert!(!curve.points.is_empty());
        for w in curve.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "latency must grow with burst bandwidth");
        }
    }

    fn tradeoffs_for_test(inst: &SmvpInstance, bws: &[f64]) -> TradeoffCurve {
        tradeoff_curve(
            inst,
            0.9,
            &Processor::hypothetical_200mflops(),
            BlockRegime::Maximal,
            bws,
        )
    }

    #[test]
    fn figure10_infeasible_bandwidths_dropped() {
        let inst = paperdata::figure7_instance("sf2", 128).unwrap();
        // t_c ≈ 28.6 ns → min feasible burst ≈ 280 MB/s; ask below that.
        let curve = tradeoffs_for_test(&inst, &[100e6, 200e6]);
        assert!(curve.points.is_empty());
    }

    #[test]
    fn figure11_fixed_blocks_need_far_less_latency() {
        let sf2 = paperdata::figure7_app("sf2");
        let rows = half_bandwidth_series(
            &sf2,
            &[Processor::hypothetical_200mflops()],
            &[0.9],
            &[BlockRegime::Maximal, BlockRegime::CACHE_LINE],
        );
        let maximal_min = rows
            .iter()
            .filter(|r| r.regime == BlockRegime::Maximal)
            .map(|r| r.point.t_l)
            .fold(f64::INFINITY, f64::min);
        let fixed_min = rows
            .iter()
            .filter(|r| r.regime == BlockRegime::CACHE_LINE)
            .map(|r| r.point.t_l)
            .fold(f64::INFINITY, f64::min);
        assert!(
            fixed_min < maximal_min / 20.0,
            "fixed {fixed_min} vs maximal {maximal_min}"
        );
    }

    #[test]
    fn figure8_bisection_worst_case_is_modest() {
        // Synthesize plausible V values (a few times C_max) and confirm the
        // worst case stays well under a GB/s, the paper's "quite modest".
        let sf2 = paperdata::figure7_app("sf2");
        // A geometric partition's bisection volume is a few C_max (the
        // paper's Fig. 8 worst case of 700 MB/s corresponds to V ≈ 2.5·C_max).
        let with_v: Vec<(SmvpInstance, u64)> =
            sf2.into_iter().map(|i| (i.clone(), i.c_max * 3)).collect();
        let series = bisection_series(&with_v, &[Processor::hypothetical_200mflops()], &[0.9]);
        let worst = series.iter().map(|p| p.bandwidth_bytes).fold(0.0, f64::max);
        assert!(
            worst < 2e9,
            "bisection requirement {worst} implausibly high"
        );
        assert!(worst > 1e6);
    }

    #[test]
    fn series_skip_silent_instances() {
        let silent = SmvpInstance::new("x", 1, 10, 0, 0, 0.0);
        assert!(half_bandwidth_series(
            std::slice::from_ref(&silent),
            &[Processor::hypothetical_100mflops()],
            &[0.9],
            &[BlockRegime::Maximal]
        )
        .is_empty());
        assert!(bisection_series(
            &[(silent, 0)],
            &[Processor::hypothetical_100mflops()],
            &[0.9]
        )
        .is_empty());
    }
}
