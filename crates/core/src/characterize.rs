//! The SMVP instance characterization: one row of paper Figure 7.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The architectural signature of one SMVP instance — an application mesh
/// partitioned onto `subdomains` PEs (paper Fig. 7 row).
///
/// All quantities are *per SMVP operation*:
///
/// * `f` — flops on the busiest PE (`F = 2m`, `m` = local scalar nonzeros);
/// * `c_max` — maximum 64-bit words sent + received by any PE;
/// * `b_max` — maximum blocks sent + received by any PE, maximal aggregation;
/// * `m_avg` — mean message size in words.
///
/// # Examples
///
/// ```
/// use quake_core::characterize::SmvpInstance;
/// let sf2_128 = SmvpInstance::new("sf2", 128, 838_224, 16_260, 50, 459.0);
/// assert!((sf2_128.comp_comm_ratio() - 51.55).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmvpInstance {
    /// Application name (e.g. `"sf2"`).
    pub app: String,
    /// Number of subdomains / PEs.
    pub subdomains: usize,
    /// Flops per SMVP on the busiest PE.
    pub f: u64,
    /// Maximum communication words per PE per SMVP.
    pub c_max: u64,
    /// Maximum communication blocks per PE per SMVP (maximal aggregation).
    pub b_max: u64,
    /// Average message size in 64-bit words.
    pub m_avg: f64,
}

impl SmvpInstance {
    /// Creates an instance row.
    pub fn new(
        app: impl Into<String>,
        subdomains: usize,
        f: u64,
        c_max: u64,
        b_max: u64,
        m_avg: f64,
    ) -> Self {
        SmvpInstance {
            app: app.into(),
            subdomains,
            f,
            c_max,
            b_max,
            m_avg,
        }
    }

    /// Computation/communication ratio `F / C_max` (∞ if no communication).
    pub fn comp_comm_ratio(&self) -> f64 {
        if self.c_max == 0 {
            f64::INFINITY
        } else {
            self.f as f64 / self.c_max as f64
        }
    }

    /// The instance label in the paper's `sfx/y` notation.
    pub fn label(&self) -> String {
        format!("{}/{}", self.app, self.subdomains)
    }
}

impl fmt::Display for SmvpInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: F={} C_max={} B_max={} M_avg={:.0} F/C_max={:.0}",
            self.label(),
            self.f,
            self.c_max,
            self.b_max,
            self.m_avg,
            self.comp_comm_ratio()
        )
    }
}

/// Application-level aggregate statistics used in the paper's EXFLOW
/// comparison (§1): data per PE, communication volume and message count per
/// MFLOP, and message size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppCommSummary {
    /// Megabytes of data per PE.
    pub data_mb_per_pe: f64,
    /// Communication volume per MFLOP of computation (KBytes).
    pub comm_kb_per_mflop: f64,
    /// Messages per MFLOP of computation.
    pub messages_per_mflop: f64,
    /// Average message size (KBytes).
    pub avg_message_kb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_label() {
        let i = SmvpInstance::new("sf10", 4, 453_924, 2_352, 6, 369.0);
        assert_eq!(i.label(), "sf10/4");
        assert!((i.comp_comm_ratio() - 193.0).abs() < 0.5);
    }

    #[test]
    fn zero_comm_is_infinite_ratio() {
        let i = SmvpInstance::new("x", 1, 100, 0, 0, 0.0);
        assert!(i.comp_comm_ratio().is_infinite());
    }

    #[test]
    fn display_contains_fields() {
        let i = SmvpInstance::new("sf2", 128, 838_224, 16_260, 50, 459.0);
        let s = i.to_string();
        assert!(s.contains("sf2/128"));
        assert!(s.contains("C_max=16260"));
    }
}
