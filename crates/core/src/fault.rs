//! Deterministic fault injection for the bulk-synchronous SMVP.
//!
//! The paper's central claim is that the BSP SMVP is *latency-bound*: every
//! barrier waits for the worst-case PE, so one straggling, silent, or dead
//! PE defines `T_comm` (Eq. 1/2 and the β bound of §3.4). A perfect-machine
//! executor can only ever measure the best case. This module supplies the
//! other half: a seeded, fully deterministic **fault plan** — per-step,
//! per-PE events — that an executor injects at precise points in the
//! assemble→compute→exchange→fold cycle and then *recovers from*, so the
//! realized efficiency under faults can be compared against the clean
//! Eq. (1) prediction.
//!
//! Determinism is the load-bearing property. A [`FaultPlan`] is a pure
//! function of `(seed, steps, pes, rates)`: the same plan replays the same
//! chaos every run, which is what makes "every recovered run is bitwise
//! equal to a fault-free run" a testable statement rather than a hope.
//!
//! Four fault kinds model the failure modes of the paper's machine:
//!
//! * [`FaultKind::Straggle`] — one PE's compute phase is delayed (per-PE
//!   jitter; the barrier absorbs it, and barrier-wait accounting sees it);
//! * [`FaultKind::Drop`] — an exchange block is lost in flight and must be
//!   re-fetched after a timeout (bounded retry with exponential backoff);
//! * [`FaultKind::Corrupt`] — ghost words arrive bit-flipped; per-block
//!   checksums detect the damage and force a clean re-fetch;
//! * [`FaultKind::Crash`] — the PE dies mid-step; recovery is re-execution
//!   of its shard ([`RecoveryPolicy::Degrade`]) or checkpoint/restart
//!   ([`RecoveryPolicy::Restart`]).
//!
//! [`FaultReport`] accounts for every event three ways — injected,
//! detected, recovered — plus the recovery work performed (retries,
//! re-fetches, replayed steps, restores). Under a healing policy the three
//! counts must balance; [`FaultReport::balanced`] is the invariant the
//! chaos tests assert.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// SplitMix64 finalizer — the stateless mixer behind [`WireFaultPlan`]
/// sampling and [`RetryBackoff`] jitter. Pure: same input, same output.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from a mixed hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PE's compute phase is delayed by `delay_us` microseconds —
    /// per-PE jitter that every barrier in the step must absorb.
    Straggle {
        /// Injected delay in microseconds.
        delay_us: u32,
    },
    /// One of the PE's inbound exchange blocks is dropped in flight; the
    /// first fetch attempt fails and must be retried.
    Drop,
    /// The PE's inbound ghost words arrive corrupted; `salt` selects which
    /// word and which bit the executor flips (derived, so the plan stays
    /// topology-independent).
    Corrupt {
        /// Deterministic selector for the corrupted word/bit.
        salt: u64,
    },
    /// The PE crashes mid-step (modeled as a worker panic while executing
    /// the PE's compute shard).
    Crash,
}

impl FaultKind {
    /// Short lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggle { .. } => "straggle",
            FaultKind::Drop => "drop",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Crash => "crash",
        }
    }
}

/// One kind of injected *wire* fault — damage applied to the live byte
/// stream between shard processes, below the in-process chaos layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFaultKind {
    /// A payload byte of the outgoing frame is bit-flipped; the receiver's
    /// frame checksum detects it and requests a resend.
    Corrupt {
        /// Deterministic selector for the flipped byte/bit.
        salt: u64,
    },
    /// The tail of the outgoing frame is zeroed from a cut point (a runt
    /// frame with an intact length prefix, so the stream stays framed);
    /// detected exactly like corruption.
    Truncate {
        /// Deterministic selector for the cut point.
        cut: u64,
    },
    /// The outgoing frame is held back before hitting the socket.
    Delay {
        /// Injected delay in microseconds.
        delay_us: u32,
    },
    /// The connection is torn down mid-run; both sides must reconnect and
    /// replay their block caches.
    Reset,
    /// The sender goes silent while holding the connection open — the
    /// hung-but-alive peer the heartbeat/deadline layer exists to unmask.
    Stall,
}

impl WireFaultKind {
    /// Short lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WireFaultKind::Corrupt { .. } => "corrupt",
            WireFaultKind::Truncate { .. } => "truncate",
            WireFaultKind::Delay { .. } => "delay",
            WireFaultKind::Reset => "reset",
            WireFaultKind::Stall => "stall",
        }
    }
}

/// Per-kind wire-fault event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireFaultCounts {
    /// Bit-flipped frames.
    pub corrupt: u64,
    /// Runt (tail-zeroed) frames.
    pub truncate: u64,
    /// Artificially delayed frames.
    pub delay: u64,
    /// Torn-down connections.
    pub reset: u64,
    /// Hung-peer stalls.
    pub stall: u64,
}

impl WireFaultCounts {
    /// Adds `n` events of `kind`.
    pub fn add(&mut self, kind: &WireFaultKind, n: u64) {
        match kind {
            WireFaultKind::Corrupt { .. } => self.corrupt += n,
            WireFaultKind::Truncate { .. } => self.truncate += n,
            WireFaultKind::Delay { .. } => self.delay += n,
            WireFaultKind::Reset => self.reset += n,
            WireFaultKind::Stall => self.stall += n,
        }
    }

    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.corrupt + self.truncate + self.delay + self.reset + self.stall
    }
}

impl fmt::Display for WireFaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (corrupt {}, truncate {}, delay {}, reset {}, stall {})",
            self.total(),
            self.corrupt,
            self.truncate,
            self.delay,
            self.reset,
            self.stall
        )
    }
}

/// A seeded, deterministic wire-fault sampler.
///
/// Unlike [`FaultPlan`] (which pre-generates events for a known `steps ×
/// pes` grid), the wire layer cannot enumerate frames up front — frame
/// counts depend on topology and recovery traffic. So the plan is a *pure
/// sampling function*: `sample(from, to, seq)` hashes the connection
/// identity and the per-connection ghost-frame sequence number against the
/// seed. The same `(seed, rate, from, to, seq)` always yields the same
/// verdict, which keeps wire chaos replayable without shared RNG state.
///
/// Transient kinds (corrupt, truncate, delay) each fire at `rate`; the
/// disruptive kinds are rarer — reset at `rate/4`, stall at `rate/10` —
/// mirroring how [`FaultRates::uniform`] treats crashes. Callers cap
/// resets/stalls per connection; the sampler itself is stateless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaultPlan {
    seed: u64,
    rate: f64,
}

impl WireFaultPlan {
    /// No wire faults (sampling always misses).
    pub fn none() -> Self {
        WireFaultPlan { seed: 0, rate: 0.0 }
    }

    /// The CLI's one-knob preset over `--wire-fault-rate/--wire-fault-seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        WireFaultPlan { seed, rate }
    }

    /// True if sampling can ever fire.
    pub fn is_armed(&self) -> bool {
        self.rate > 0.0
    }

    /// The verdict for ghost frame `seq` on the directed connection
    /// `from → to`. Rare kinds are checked first so the transients cannot
    /// shadow them.
    pub fn sample(&self, from: usize, to: usize, seq: u64) -> Option<WireFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let conn = ((from as u64) << 32) | to as u64;
        let mut h = mix64(self.seed ^ mix64(conn) ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut draw = || {
            h = mix64(h);
            unit(h)
        };
        if draw() < self.rate / 10.0 {
            return Some(WireFaultKind::Stall);
        }
        if draw() < self.rate / 4.0 {
            return Some(WireFaultKind::Reset);
        }
        if draw() < self.rate {
            h = mix64(h);
            return Some(WireFaultKind::Corrupt { salt: h });
        }
        if draw() < self.rate {
            h = mix64(h);
            return Some(WireFaultKind::Truncate { cut: h });
        }
        if draw() < self.rate {
            h = mix64(h);
            let delay_us = 100 + (h % 700) as u32;
            return Some(WireFaultKind::Delay { delay_us });
        }
        None
    }
}

/// Bounded exponential backoff with deterministic *decorrelated jitter*
/// (`sleep = min(cap, base + rand_between(0, 3·prev − base))`), seeded so
/// the schedule is reproducible. Used by the exchange re-fetch loop so
/// retries across PEs don't synchronize, and by the wire layer's
/// reconnect dialer.
#[derive(Debug, Clone)]
pub struct RetryBackoff {
    state: u64,
    base_us: u64,
    cap_us: u64,
    prev_us: u64,
}

impl RetryBackoff {
    /// Default bounds match the historical re-fetch schedule
    /// (`1<<attempt` µs clamped to 64 µs): base 2 µs, cap 64 µs.
    pub fn new(seed: u64) -> Self {
        RetryBackoff::with_bounds(seed, 2, 64)
    }

    /// Backoff over `[base_us, cap_us]` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `base_us` is zero or exceeds `cap_us`.
    pub fn with_bounds(seed: u64, base_us: u64, cap_us: u64) -> Self {
        assert!(base_us > 0 && base_us <= cap_us, "need 0 < base <= cap");
        RetryBackoff {
            state: mix64(seed),
            base_us,
            cap_us,
            prev_us: base_us,
        }
    }

    /// The next delay in the schedule: always within `[base, cap]`, grows
    /// roughly geometrically, and is a pure function of `(seed, call #)`.
    pub fn next_delay(&mut self) -> Duration {
        self.state = mix64(self.state);
        let span = (self.prev_us.saturating_mul(3)).max(self.base_us + 1) - self.base_us;
        let next = (self.base_us + self.state % span).min(self.cap_us);
        self.prev_us = next;
        Duration::from_micros(next)
    }
}

/// One scheduled fault: a kind firing at `(step, pe)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based SMVP step at which the fault fires.
    pub step: u64,
    /// The victim PE.
    pub pe: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Per-kind injection probabilities, sampled once per `(step, pe, kind)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a PE straggles in a given step.
    pub straggle: f64,
    /// Probability one of a PE's inbound blocks is dropped in a given step.
    pub drop: f64,
    /// Probability a PE's inbound ghost words are corrupted in a given step.
    pub corrupt: f64,
    /// Probability a PE crashes in a given step (usually much smaller than
    /// the transient rates).
    pub crash: f64,
    /// Hard cap on generated crash events across the whole plan (crashes
    /// are the expensive faults to recover from; `u32::MAX` means no cap).
    pub max_crashes: u32,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates {
            straggle: 0.0,
            drop: 0.0,
            corrupt: 0.0,
            crash: 0.0,
            max_crashes: 0,
        }
    }

    /// The CLI's one-knob preset: transient faults (straggle, drop,
    /// corrupt) at `rate`, crashes at a tenth of it capped to one — the
    /// paper's "one bad PE" scenario.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        FaultRates {
            straggle: rate,
            drop: rate,
            corrupt: rate,
            crash: rate / 10.0,
            max_crashes: 1,
        }
    }

    /// True if every rate is zero (the plan will be empty).
    pub fn is_zero(&self) -> bool {
        self.straggle == 0.0 && self.drop == 0.0 && self.corrupt == 0.0 && self.crash == 0.0
    }
}

/// A seeded, deterministic schedule of faults: the chaos layer's script.
///
/// Events are stored sorted by `(step, pe)` so an executor can look up the
/// faults for the cell it is about to execute in `O(log n)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults; executors treat it as "chaos disabled").
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (tests and targeted experiments);
    /// events are sorted into canonical `(step, pe)` order.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.step, e.pe));
        FaultPlan { events }
    }

    /// Generates the deterministic plan for `steps × pes` cells: for each
    /// cell, each fault kind fires independently with its
    /// [`FaultRates`] probability. Identical `(seed, steps, pes, rates)`
    /// always yield the identical plan.
    pub fn generate(seed: u64, steps: u64, pes: usize, rates: &FaultRates) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut crashes = 0u32;
        for step in 0..steps {
            for pe in 0..pes {
                if rates.straggle > 0.0 && rng.gen_bool(rates.straggle) {
                    let delay_us = rng.gen_range(30u32..=300);
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Straggle { delay_us },
                    });
                }
                if rates.drop > 0.0 && rng.gen_bool(rates.drop) {
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Drop,
                    });
                }
                if rates.corrupt > 0.0 && rng.gen_bool(rates.corrupt) {
                    let salt = rng.gen::<u64>();
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Corrupt { salt },
                    });
                }
                if rates.crash > 0.0 && crashes < rates.max_crashes && rng.gen_bool(rates.crash) {
                    crashes += 1;
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Crash,
                    });
                }
            }
        }
        // Generation order is already (step, pe)-sorted.
        FaultPlan { events }
    }

    /// All scheduled events, sorted by `(step, pe)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Global indices of the events scheduled for `(step, pe)` — the
    /// contiguous sorted range, so the executor can pair each event with
    /// its own consumed-flag.
    pub fn at(&self, step: u64, pe: usize) -> std::ops::Range<usize> {
        let lo = self.events.partition_point(|e| (e.step, e.pe) < (step, pe));
        let hi = self
            .events
            .partition_point(|e| (e.step, e.pe) <= (step, pe));
        lo..hi
    }

    /// Count of scheduled events per kind.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for e in &self.events {
            c.add(&e.kind, 1);
        }
        c
    }
}

/// What an executor does when a PE crashes (and how a supervising worker
/// pool treats a panicking worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Re-raise the failure and abort the run (the pre-chaos behaviour).
    FailFast,
    /// Keep going on the survivors: the dead PE's shard is re-executed on a
    /// surviving thread, the run continues degraded.
    Degrade,
    /// Heal fully: replace the dead worker, restore the last checkpoint,
    /// and replay the lost steps.
    #[default]
    Restart,
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::FailFast => "failfast",
            RecoveryPolicy::Degrade => "degrade",
            RecoveryPolicy::Restart => "restart",
        })
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failfast" => Ok(RecoveryPolicy::FailFast),
            "degrade" => Ok(RecoveryPolicy::Degrade),
            "restart" => Ok(RecoveryPolicy::Restart),
            other => Err(format!(
                "unknown recovery policy '{other}' (expected failfast|degrade|restart)"
            )),
        }
    }
}

/// Per-kind event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Straggler delays.
    pub straggle: u64,
    /// Dropped exchange blocks.
    pub drop: u64,
    /// Corrupted ghost-word blocks.
    pub corrupt: u64,
    /// PE crashes.
    pub crash: u64,
}

impl FaultCounts {
    /// Adds `n` events of `kind`.
    pub fn add(&mut self, kind: &FaultKind, n: u64) {
        match kind {
            FaultKind::Straggle { .. } => self.straggle += n,
            FaultKind::Drop => self.drop += n,
            FaultKind::Corrupt { .. } => self.corrupt += n,
            FaultKind::Crash => self.crash += n,
        }
    }

    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.straggle + self.drop + self.corrupt + self.crash
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (straggle {}, drop {}, corrupt {}, crash {})",
            self.total(),
            self.straggle,
            self.drop,
            self.corrupt,
            self.crash
        )
    }
}

/// The chaos layer's ledger: every fault accounted for three ways, plus
/// the recovery work it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Events the plan actually fired during executed steps.
    pub injected: FaultCounts,
    /// Events the recovery machinery noticed (timeout, checksum mismatch,
    /// caught panic, observed delay).
    pub detected: FaultCounts,
    /// Events fully recovered from (output provably unaffected).
    pub recovered: FaultCounts,
    /// Exchange fetch attempts beyond the first (drop recovery).
    pub retries: u64,
    /// Clean re-fetches after a checksum mismatch (corruption recovery).
    pub refetches: u64,
    /// Steps re-executed after a checkpoint restore.
    pub replayed_steps: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoint restores performed.
    pub restores: u64,
    /// Crashed shards re-executed on a surviving thread (Degrade policy).
    pub degraded_shards: u64,
    /// Worker threads replaced after a crash (Restart policy).
    pub respawned_workers: u64,
    /// Wire faults injected on the socket byte stream (proc transport).
    pub wire_injected: WireFaultCounts,
    /// Wire faults the receiving side (or the supervisor) noticed.
    pub wire_detected: WireFaultCounts,
    /// Wire faults fully healed (resend, reconnect, or shard respawn).
    pub wire_recovered: WireFaultCounts,
    /// Cache replays served after a frame-checksum mismatch on the wire.
    pub wire_resends: u64,
    /// Socket connections re-established after a reset.
    pub reconnects: u64,
    /// Deadline escalations: a peer went silent past the conn timeout and
    /// was reported to the supervisor as suspect.
    pub suspects: u64,
    /// Shard processes respawned individually by the supervisor.
    pub respawned_shards: u64,
    /// Whole-ensemble retries (the last-resort fallback).
    pub ensemble_restarts: u64,
    /// Log2 histogram of injected wire delays and reconnect backoff waits,
    /// in microseconds (bucket `i` counts waits in `[2^i, 2^(i+1))` µs;
    /// the last bucket absorbs the tail).
    pub wire_delay_us_hist: [u64; 16],
    /// Exact total of the waits recorded into `wire_delay_us_hist`, in
    /// microseconds — the Prometheus `_sum` companion the log2 buckets
    /// alone cannot reconstruct.
    pub wire_delay_us_sum: u64,
}

/// Records a wait of `us` microseconds into a ledger's wire-delay
/// histogram (and its exact running sum).
pub fn record_delay_us(fr: &mut FaultReport, us: u64) {
    let bucket = if us == 0 {
        0
    } else {
        (63 - us.leading_zeros() as usize).min(15)
    };
    fr.wire_delay_us_hist[bucket] += 1;
    fr.wire_delay_us_sum += us;
}

impl FaultReport {
    /// The healing invariant: every injected fault was detected, and every
    /// detected fault was recovered — in-process *and* on the wire. Holds
    /// for any run that completes under [`RecoveryPolicy::Restart`] or
    /// [`RecoveryPolicy::Degrade`].
    pub fn balanced(&self) -> bool {
        self.injected == self.detected
            && self.detected == self.recovered
            && self.wire_injected == self.wire_detected
            && self.wire_detected == self.wire_recovered
    }

    /// Folds another report into this one (elementwise sums).
    pub fn merge(&mut self, other: &FaultReport) {
        for (mine, theirs) in [
            (&mut self.injected, &other.injected),
            (&mut self.detected, &other.detected),
            (&mut self.recovered, &other.recovered),
        ] {
            mine.straggle += theirs.straggle;
            mine.drop += theirs.drop;
            mine.corrupt += theirs.corrupt;
            mine.crash += theirs.crash;
        }
        self.retries += other.retries;
        self.refetches += other.refetches;
        self.replayed_steps += other.replayed_steps;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.degraded_shards += other.degraded_shards;
        self.respawned_workers += other.respawned_workers;
        for (mine, theirs) in [
            (&mut self.wire_injected, &other.wire_injected),
            (&mut self.wire_detected, &other.wire_detected),
            (&mut self.wire_recovered, &other.wire_recovered),
        ] {
            mine.corrupt += theirs.corrupt;
            mine.truncate += theirs.truncate;
            mine.delay += theirs.delay;
            mine.reset += theirs.reset;
            mine.stall += theirs.stall;
        }
        self.wire_resends += other.wire_resends;
        self.reconnects += other.reconnects;
        self.suspects += other.suspects;
        self.respawned_shards += other.respawned_shards;
        self.ensemble_restarts += other.ensemble_restarts;
        for (mine, theirs) in self
            .wire_delay_us_hist
            .iter_mut()
            .zip(other.wire_delay_us_hist.iter())
        {
            *mine += *theirs;
        }
        self.wire_delay_us_sum += other.wire_delay_us_sum;
    }

    /// Compact single-line JSON for machine consumption (CI assertions,
    /// sweep tooling). Hand-rolled: the counts are all integers, so no
    /// escaping is needed.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"injected\":{},\"detected\":{},\"recovered\":{},",
                "\"injected_by_kind\":{{\"straggle\":{},\"drop\":{},\"corrupt\":{},\"crash\":{}}},",
                "\"retries\":{},\"refetches\":{},\"replayed_steps\":{},",
                "\"checkpoints\":{},\"restores\":{},\"degraded_shards\":{},",
                "\"respawned_workers\":{},",
                "\"wire_injected\":{},\"wire_detected\":{},\"wire_recovered\":{},",
                "\"wire_injected_by_kind\":{{\"corrupt\":{},\"truncate\":{},\"delay\":{},",
                "\"reset\":{},\"stall\":{}}},",
                "\"wire_resends\":{},\"reconnects\":{},\"suspects\":{},",
                "\"respawned_shards\":{},\"ensemble_restarts\":{},\"balanced\":{}}}"
            ),
            self.injected.total(),
            self.detected.total(),
            self.recovered.total(),
            self.injected.straggle,
            self.injected.drop,
            self.injected.corrupt,
            self.injected.crash,
            self.retries,
            self.refetches,
            self.replayed_steps,
            self.checkpoints,
            self.restores,
            self.degraded_shards,
            self.respawned_workers,
            self.wire_injected.total(),
            self.wire_detected.total(),
            self.wire_recovered.total(),
            self.wire_injected.corrupt,
            self.wire_injected.truncate,
            self.wire_injected.delay,
            self.wire_injected.reset,
            self.wire_injected.stall,
            self.wire_resends,
            self.reconnects,
            self.suspects,
            self.respawned_shards,
            self.ensemble_restarts,
            self.balanced(),
        )
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault report:")?;
        writeln!(f, "  injected:  {}", self.injected)?;
        writeln!(f, "  detected:  {}", self.detected)?;
        writeln!(f, "  recovered: {}", self.recovered)?;
        writeln!(
            f,
            "  recovery work: {} retries, {} re-fetches, {} replayed steps, \
             {} restores ({} checkpoints), {} degraded shards, {} respawned workers",
            self.retries,
            self.refetches,
            self.replayed_steps,
            self.restores,
            self.checkpoints,
            self.degraded_shards,
            self.respawned_workers
        )?;
        if self.wire_injected.total() > 0
            || self.wire_resends > 0
            || self.reconnects > 0
            || self.suspects > 0
            || self.respawned_shards > 0
            || self.ensemble_restarts > 0
        {
            writeln!(f, "  wire injected:  {}", self.wire_injected)?;
            writeln!(f, "  wire detected:  {}", self.wire_detected)?;
            writeln!(f, "  wire recovered: {}", self.wire_recovered)?;
            writeln!(
                f,
                "  wire recovery work: {} resends, {} reconnects, {} suspects, \
                 {} shard respawns, {} ensemble restarts",
                self.wire_resends,
                self.reconnects,
                self.suspects,
                self.respawned_shards,
                self.ensemble_restarts
            )?;
        }
        write!(
            f,
            "  balance: {}",
            if self.balanced() {
                "injected == detected == recovered"
            } else {
                "UNBALANCED"
            }
        )
    }
}

/// Incremental FNV-1a over `f64` bit patterns — the per-block checksum used
/// to detect corrupted ghost words. Bit-exact: any single flipped mantissa
/// or exponent bit changes the sum.
#[derive(Debug, Clone, Copy)]
pub struct BlockChecksum(u64);

impl Default for BlockChecksum {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockChecksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh (empty-input) checksum state.
    pub fn new() -> Self {
        BlockChecksum(Self::OFFSET)
    }

    /// Feeds one word's bit pattern.
    pub fn write_f64(&mut self, w: f64) {
        for b in w.to_bits().to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot [`BlockChecksum`] over a word slice.
pub fn block_checksum(words: &[f64]) -> u64 {
    let mut h = BlockChecksum::new();
    for &w in words {
        h.write_f64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_rates() -> FaultRates {
        FaultRates {
            straggle: 0.3,
            drop: 0.3,
            corrupt: 0.3,
            crash: 0.05,
            max_crashes: u32::MAX,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 50, 8, &dense_rates());
        let b = FaultPlan::generate(42, 50, 8, &dense_rates());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "dense rates over 400 cells must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 50, 8, &dense_rates());
        let b = FaultPlan::generate(2, 50, 8, &dense_rates());
        assert_ne!(a, b, "seeds must steer the plan");
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::generate(7, 100, 16, &FaultRates::none());
        assert!(plan.is_empty());
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn events_are_sorted_and_lookup_finds_them() {
        let plan = FaultPlan::generate(9, 30, 6, &dense_rates());
        assert!(plan
            .events()
            .windows(2)
            .all(|w| (w[0].step, w[0].pe) <= (w[1].step, w[1].pe)));
        // Every event is found by its cell lookup, and only there.
        let mut seen = 0;
        for step in 0..30 {
            for pe in 0..6 {
                for i in plan.at(step, pe) {
                    let e = plan.events()[i];
                    assert_eq!((e.step, e.pe), (step, pe));
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, plan.len());
        assert!(plan.at(1000, 0).is_empty());
    }

    #[test]
    fn rates_scale_event_volume() {
        let sparse = FaultPlan::generate(3, 200, 8, &FaultRates::uniform(0.01));
        let dense = FaultPlan::generate(3, 200, 8, &FaultRates::uniform(0.3));
        assert!(
            dense.len() > sparse.len(),
            "30x the rate must fire more events ({} vs {})",
            dense.len(),
            sparse.len()
        );
    }

    #[test]
    fn crash_cap_is_honored() {
        let mut rates = dense_rates();
        rates.crash = 1.0;
        rates.max_crashes = 3;
        let plan = FaultPlan::generate(5, 100, 4, &rates);
        assert_eq!(plan.counts().crash, 3);
        // uniform() caps at one crash.
        let plan = FaultPlan::generate(5, 400, 4, &FaultRates::uniform(0.5));
        assert!(plan.counts().crash <= 1);
    }

    #[test]
    fn from_events_sorts() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                step: 5,
                pe: 1,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                step: 0,
                pe: 3,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                step: 5,
                pe: 0,
                kind: FaultKind::Corrupt { salt: 1 },
            },
        ]);
        assert_eq!(plan.events()[0].step, 0);
        assert_eq!(plan.events()[1].pe, 0);
        assert_eq!(plan.at(5, 1), 2..3);
    }

    #[test]
    fn counts_and_balance() {
        let mut report = FaultReport::default();
        let kinds = [
            FaultKind::Straggle { delay_us: 10 },
            FaultKind::Drop,
            FaultKind::Corrupt { salt: 0 },
            FaultKind::Crash,
        ];
        for k in &kinds {
            report.injected.add(k, 2);
            report.detected.add(k, 2);
            report.recovered.add(k, 2);
        }
        assert_eq!(report.injected.total(), 8);
        assert!(report.balanced());
        report.recovered.drop -= 1;
        assert!(!report.balanced());
    }

    #[test]
    fn report_json_is_parsable_shape() {
        let report = FaultReport::default();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"injected\":",
            "\"detected\":",
            "\"recovered\":",
            "\"retries\":",
            "\"replayed_steps\":",
            "\"balanced\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn recovery_policy_round_trips() {
        for p in [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::Degrade,
            RecoveryPolicy::Restart,
        ] {
            assert_eq!(p.to_string().parse::<RecoveryPolicy>().unwrap(), p);
        }
        assert!("chaos".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn wire_plan_sampling_is_deterministic_and_rate_scaled() {
        let plan = WireFaultPlan::uniform(0x5eed, 0.3);
        let a: Vec<_> = (0..200).map(|s| plan.sample(0, 1, s)).collect();
        let b: Vec<_> = (0..200).map(|s| plan.sample(0, 1, s)).collect();
        assert_eq!(a, b, "sampling must be a pure function");
        let fired = a.iter().flatten().count();
        assert!(fired > 10, "rate 0.3 over 200 frames fired only {fired}");
        // Direction matters: a → b and b → a are independent streams.
        let rev: Vec<_> = (0..200).map(|s| plan.sample(1, 0, s)).collect();
        assert_ne!(a, rev);
        // Other seeds steer the schedule.
        let other = WireFaultPlan::uniform(0x0ddba11, 0.3);
        assert_ne!(
            a,
            (0..200).map(|s| other.sample(0, 1, s)).collect::<Vec<_>>()
        );
        // Disarmed plans never fire.
        assert!((0..500).all(|s| WireFaultPlan::none().sample(0, 1, s).is_none()));
    }

    #[test]
    fn wire_plan_covers_every_kind() {
        let plan = WireFaultPlan::uniform(7, 0.5);
        let mut counts = WireFaultCounts::default();
        for from in 0..4usize {
            for to in 0..4usize {
                if from == to {
                    continue;
                }
                for seq in 0..400 {
                    if let Some(k) = plan.sample(from, to, seq) {
                        counts.add(&k, 1);
                    }
                }
            }
        }
        assert!(counts.corrupt > 0, "{counts}");
        assert!(counts.truncate > 0, "{counts}");
        assert!(counts.delay > 0, "{counts}");
        assert!(counts.reset > 0, "{counts}");
        assert!(counts.stall > 0, "{counts}");
        // Disruptive kinds stay rarer than transients.
        assert!(counts.reset < counts.corrupt, "{counts}");
        assert!(counts.stall < counts.reset, "{counts}");
    }

    #[test]
    fn backoff_schedule_is_seed_reproducible_and_bounded() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = RetryBackoff::with_bounds(seed, 5, 4000);
            (0..64).map(|_| b.next_delay().as_micros() as u64).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(schedule(42), schedule(43), "seeds must decorrelate");
        for d in schedule(42) {
            assert!((5..=4000).contains(&d), "delay {d}µs escaped [base, cap]");
        }
        // The default bounds match the historical 2..64µs re-fetch window.
        let mut b = RetryBackoff::new(1);
        for _ in 0..32 {
            let d = b.next_delay().as_micros() as u64;
            assert!((2..=64).contains(&d));
        }
    }

    #[test]
    fn wire_ledger_balance_and_merge() {
        let mut report = FaultReport::default();
        report
            .wire_injected
            .add(&WireFaultKind::Corrupt { salt: 0 }, 2);
        assert!(!report.balanced(), "injected without detection is a leak");
        report
            .wire_detected
            .add(&WireFaultKind::Corrupt { salt: 0 }, 2);
        report
            .wire_recovered
            .add(&WireFaultKind::Corrupt { salt: 0 }, 2);
        assert!(report.balanced());

        let mut other = FaultReport::default();
        other.wire_injected.add(&WireFaultKind::Reset, 1);
        other.wire_detected.add(&WireFaultKind::Reset, 1);
        other.wire_recovered.add(&WireFaultKind::Reset, 1);
        other.reconnects = 1;
        other.respawned_shards = 2;
        record_delay_us(&mut other, 300);
        report.merge(&other);
        assert_eq!(report.wire_injected.total(), 3);
        assert_eq!(report.reconnects, 1);
        assert_eq!(report.respawned_shards, 2);
        assert_eq!(report.wire_delay_us_hist[8], 1, "300µs lands in [256,512)");
        assert_eq!(report.wire_delay_us_sum, 300, "merge carries the exact sum");
        assert!(report.balanced());

        let json = report.to_json();
        for key in [
            "\"wire_injected\":3",
            "\"wire_resends\":0",
            "\"respawned_shards\":2",
            "\"reconnects\":1",
            "\"balanced\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let shown = report.to_string();
        assert!(shown.contains("wire injected"), "{shown}");
        assert!(shown.contains("shard respawns"), "{shown}");
    }

    #[test]
    fn delay_histogram_buckets_are_log2() {
        let mut fr = FaultReport::default();
        record_delay_us(&mut fr, 0);
        record_delay_us(&mut fr, 1);
        record_delay_us(&mut fr, 2);
        record_delay_us(&mut fr, 3);
        record_delay_us(&mut fr, 1 << 20); // beyond the last bucket
        assert_eq!(fr.wire_delay_us_hist[0], 2);
        assert_eq!(fr.wire_delay_us_hist[1], 2);
        assert_eq!(fr.wire_delay_us_hist[15], 1);
        assert_eq!(fr.wire_delay_us_sum, 6 + (1 << 20));
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let words = [1.5f64, -2.25, 1e-300, 0.0, 6000.0];
        let clean = block_checksum(&words);
        for i in 0..words.len() {
            for bit in [0u32, 17, 31, 52, 63] {
                let mut corrupted = words;
                corrupted[i] = f64::from_bits(corrupted[i].to_bits() ^ (1u64 << bit));
                assert_ne!(
                    block_checksum(&corrupted),
                    clean,
                    "flip of word {i} bit {bit} must change the checksum"
                );
            }
        }
        assert_eq!(block_checksum(&words), clean, "checksum is pure");
    }
}
