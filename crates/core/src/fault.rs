//! Deterministic fault injection for the bulk-synchronous SMVP.
//!
//! The paper's central claim is that the BSP SMVP is *latency-bound*: every
//! barrier waits for the worst-case PE, so one straggling, silent, or dead
//! PE defines `T_comm` (Eq. 1/2 and the β bound of §3.4). A perfect-machine
//! executor can only ever measure the best case. This module supplies the
//! other half: a seeded, fully deterministic **fault plan** — per-step,
//! per-PE events — that an executor injects at precise points in the
//! assemble→compute→exchange→fold cycle and then *recovers from*, so the
//! realized efficiency under faults can be compared against the clean
//! Eq. (1) prediction.
//!
//! Determinism is the load-bearing property. A [`FaultPlan`] is a pure
//! function of `(seed, steps, pes, rates)`: the same plan replays the same
//! chaos every run, which is what makes "every recovered run is bitwise
//! equal to a fault-free run" a testable statement rather than a hope.
//!
//! Four fault kinds model the failure modes of the paper's machine:
//!
//! * [`FaultKind::Straggle`] — one PE's compute phase is delayed (per-PE
//!   jitter; the barrier absorbs it, and barrier-wait accounting sees it);
//! * [`FaultKind::Drop`] — an exchange block is lost in flight and must be
//!   re-fetched after a timeout (bounded retry with exponential backoff);
//! * [`FaultKind::Corrupt`] — ghost words arrive bit-flipped; per-block
//!   checksums detect the damage and force a clean re-fetch;
//! * [`FaultKind::Crash`] — the PE dies mid-step; recovery is re-execution
//!   of its shard ([`RecoveryPolicy::Degrade`]) or checkpoint/restart
//!   ([`RecoveryPolicy::Restart`]).
//!
//! [`FaultReport`] accounts for every event three ways — injected,
//! detected, recovered — plus the recovery work performed (retries,
//! re-fetches, replayed steps, restores). Under a healing policy the three
//! counts must balance; [`FaultReport::balanced`] is the invariant the
//! chaos tests assert.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PE's compute phase is delayed by `delay_us` microseconds —
    /// per-PE jitter that every barrier in the step must absorb.
    Straggle {
        /// Injected delay in microseconds.
        delay_us: u32,
    },
    /// One of the PE's inbound exchange blocks is dropped in flight; the
    /// first fetch attempt fails and must be retried.
    Drop,
    /// The PE's inbound ghost words arrive corrupted; `salt` selects which
    /// word and which bit the executor flips (derived, so the plan stays
    /// topology-independent).
    Corrupt {
        /// Deterministic selector for the corrupted word/bit.
        salt: u64,
    },
    /// The PE crashes mid-step (modeled as a worker panic while executing
    /// the PE's compute shard).
    Crash,
}

impl FaultKind {
    /// Short lower-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Straggle { .. } => "straggle",
            FaultKind::Drop => "drop",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::Crash => "crash",
        }
    }
}

/// One scheduled fault: a kind firing at `(step, pe)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based SMVP step at which the fault fires.
    pub step: u64,
    /// The victim PE.
    pub pe: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// Per-kind injection probabilities, sampled once per `(step, pe, kind)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a PE straggles in a given step.
    pub straggle: f64,
    /// Probability one of a PE's inbound blocks is dropped in a given step.
    pub drop: f64,
    /// Probability a PE's inbound ghost words are corrupted in a given step.
    pub corrupt: f64,
    /// Probability a PE crashes in a given step (usually much smaller than
    /// the transient rates).
    pub crash: f64,
    /// Hard cap on generated crash events across the whole plan (crashes
    /// are the expensive faults to recover from; `u32::MAX` means no cap).
    pub max_crashes: u32,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates {
            straggle: 0.0,
            drop: 0.0,
            corrupt: 0.0,
            crash: 0.0,
            max_crashes: 0,
        }
    }

    /// The CLI's one-knob preset: transient faults (straggle, drop,
    /// corrupt) at `rate`, crashes at a tenth of it capped to one — the
    /// paper's "one bad PE" scenario.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn uniform(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        FaultRates {
            straggle: rate,
            drop: rate,
            corrupt: rate,
            crash: rate / 10.0,
            max_crashes: 1,
        }
    }

    /// True if every rate is zero (the plan will be empty).
    pub fn is_zero(&self) -> bool {
        self.straggle == 0.0 && self.drop == 0.0 && self.corrupt == 0.0 && self.crash == 0.0
    }
}

/// A seeded, deterministic schedule of faults: the chaos layer's script.
///
/// Events are stored sorted by `(step, pe)` so an executor can look up the
/// faults for the cell it is about to execute in `O(log n)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan (no faults; executors treat it as "chaos disabled").
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events (tests and targeted experiments);
    /// events are sorted into canonical `(step, pe)` order.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.step, e.pe));
        FaultPlan { events }
    }

    /// Generates the deterministic plan for `steps × pes` cells: for each
    /// cell, each fault kind fires independently with its
    /// [`FaultRates`] probability. Identical `(seed, steps, pes, rates)`
    /// always yield the identical plan.
    pub fn generate(seed: u64, steps: u64, pes: usize, rates: &FaultRates) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut crashes = 0u32;
        for step in 0..steps {
            for pe in 0..pes {
                if rates.straggle > 0.0 && rng.gen_bool(rates.straggle) {
                    let delay_us = rng.gen_range(30u32..=300);
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Straggle { delay_us },
                    });
                }
                if rates.drop > 0.0 && rng.gen_bool(rates.drop) {
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Drop,
                    });
                }
                if rates.corrupt > 0.0 && rng.gen_bool(rates.corrupt) {
                    let salt = rng.gen::<u64>();
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Corrupt { salt },
                    });
                }
                if rates.crash > 0.0 && crashes < rates.max_crashes && rng.gen_bool(rates.crash) {
                    crashes += 1;
                    events.push(FaultEvent {
                        step,
                        pe,
                        kind: FaultKind::Crash,
                    });
                }
            }
        }
        // Generation order is already (step, pe)-sorted.
        FaultPlan { events }
    }

    /// All scheduled events, sorted by `(step, pe)`.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Global indices of the events scheduled for `(step, pe)` — the
    /// contiguous sorted range, so the executor can pair each event with
    /// its own consumed-flag.
    pub fn at(&self, step: u64, pe: usize) -> std::ops::Range<usize> {
        let lo = self.events.partition_point(|e| (e.step, e.pe) < (step, pe));
        let hi = self
            .events
            .partition_point(|e| (e.step, e.pe) <= (step, pe));
        lo..hi
    }

    /// Count of scheduled events per kind.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for e in &self.events {
            c.add(&e.kind, 1);
        }
        c
    }
}

/// What an executor does when a PE crashes (and how a supervising worker
/// pool treats a panicking worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Re-raise the failure and abort the run (the pre-chaos behaviour).
    FailFast,
    /// Keep going on the survivors: the dead PE's shard is re-executed on a
    /// surviving thread, the run continues degraded.
    Degrade,
    /// Heal fully: replace the dead worker, restore the last checkpoint,
    /// and replay the lost steps.
    #[default]
    Restart,
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::FailFast => "failfast",
            RecoveryPolicy::Degrade => "degrade",
            RecoveryPolicy::Restart => "restart",
        })
    }
}

impl FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failfast" => Ok(RecoveryPolicy::FailFast),
            "degrade" => Ok(RecoveryPolicy::Degrade),
            "restart" => Ok(RecoveryPolicy::Restart),
            other => Err(format!(
                "unknown recovery policy '{other}' (expected failfast|degrade|restart)"
            )),
        }
    }
}

/// Per-kind event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Straggler delays.
    pub straggle: u64,
    /// Dropped exchange blocks.
    pub drop: u64,
    /// Corrupted ghost-word blocks.
    pub corrupt: u64,
    /// PE crashes.
    pub crash: u64,
}

impl FaultCounts {
    /// Adds `n` events of `kind`.
    pub fn add(&mut self, kind: &FaultKind, n: u64) {
        match kind {
            FaultKind::Straggle { .. } => self.straggle += n,
            FaultKind::Drop => self.drop += n,
            FaultKind::Corrupt { .. } => self.corrupt += n,
            FaultKind::Crash => self.crash += n,
        }
    }

    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.straggle + self.drop + self.corrupt + self.crash
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (straggle {}, drop {}, corrupt {}, crash {})",
            self.total(),
            self.straggle,
            self.drop,
            self.corrupt,
            self.crash
        )
    }
}

/// The chaos layer's ledger: every fault accounted for three ways, plus
/// the recovery work it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Events the plan actually fired during executed steps.
    pub injected: FaultCounts,
    /// Events the recovery machinery noticed (timeout, checksum mismatch,
    /// caught panic, observed delay).
    pub detected: FaultCounts,
    /// Events fully recovered from (output provably unaffected).
    pub recovered: FaultCounts,
    /// Exchange fetch attempts beyond the first (drop recovery).
    pub retries: u64,
    /// Clean re-fetches after a checksum mismatch (corruption recovery).
    pub refetches: u64,
    /// Steps re-executed after a checkpoint restore.
    pub replayed_steps: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Checkpoint restores performed.
    pub restores: u64,
    /// Crashed shards re-executed on a surviving thread (Degrade policy).
    pub degraded_shards: u64,
    /// Worker threads replaced after a crash (Restart policy).
    pub respawned_workers: u64,
}

impl FaultReport {
    /// The healing invariant: every injected fault was detected, and every
    /// detected fault was recovered. Holds for any run that completes under
    /// [`RecoveryPolicy::Restart`] or [`RecoveryPolicy::Degrade`].
    pub fn balanced(&self) -> bool {
        self.injected == self.detected && self.detected == self.recovered
    }

    /// Compact single-line JSON for machine consumption (CI assertions,
    /// sweep tooling). Hand-rolled: the counts are all integers, so no
    /// escaping is needed.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"injected\":{},\"detected\":{},\"recovered\":{},",
                "\"injected_by_kind\":{{\"straggle\":{},\"drop\":{},\"corrupt\":{},\"crash\":{}}},",
                "\"retries\":{},\"refetches\":{},\"replayed_steps\":{},",
                "\"checkpoints\":{},\"restores\":{},\"degraded_shards\":{},",
                "\"respawned_workers\":{},\"balanced\":{}}}"
            ),
            self.injected.total(),
            self.detected.total(),
            self.recovered.total(),
            self.injected.straggle,
            self.injected.drop,
            self.injected.corrupt,
            self.injected.crash,
            self.retries,
            self.refetches,
            self.replayed_steps,
            self.checkpoints,
            self.restores,
            self.degraded_shards,
            self.respawned_workers,
            self.balanced(),
        )
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault report:")?;
        writeln!(f, "  injected:  {}", self.injected)?;
        writeln!(f, "  detected:  {}", self.detected)?;
        writeln!(f, "  recovered: {}", self.recovered)?;
        writeln!(
            f,
            "  recovery work: {} retries, {} re-fetches, {} replayed steps, \
             {} restores ({} checkpoints), {} degraded shards, {} respawned workers",
            self.retries,
            self.refetches,
            self.replayed_steps,
            self.restores,
            self.checkpoints,
            self.degraded_shards,
            self.respawned_workers
        )?;
        write!(
            f,
            "  balance: {}",
            if self.balanced() {
                "injected == detected == recovered"
            } else {
                "UNBALANCED"
            }
        )
    }
}

/// Incremental FNV-1a over `f64` bit patterns — the per-block checksum used
/// to detect corrupted ghost words. Bit-exact: any single flipped mantissa
/// or exponent bit changes the sum.
#[derive(Debug, Clone, Copy)]
pub struct BlockChecksum(u64);

impl Default for BlockChecksum {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockChecksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh (empty-input) checksum state.
    pub fn new() -> Self {
        BlockChecksum(Self::OFFSET)
    }

    /// Feeds one word's bit pattern.
    pub fn write_f64(&mut self, w: f64) {
        for b in w.to_bits().to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot [`BlockChecksum`] over a word slice.
pub fn block_checksum(words: &[f64]) -> u64 {
    let mut h = BlockChecksum::new();
    for &w in words {
        h.write_f64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_rates() -> FaultRates {
        FaultRates {
            straggle: 0.3,
            drop: 0.3,
            corrupt: 0.3,
            crash: 0.05,
            max_crashes: u32::MAX,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(42, 50, 8, &dense_rates());
        let b = FaultPlan::generate(42, 50, 8, &dense_rates());
        assert_eq!(a, b);
        assert!(!a.is_empty(), "dense rates over 400 cells must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, 50, 8, &dense_rates());
        let b = FaultPlan::generate(2, 50, 8, &dense_rates());
        assert_ne!(a, b, "seeds must steer the plan");
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::generate(7, 100, 16, &FaultRates::none());
        assert!(plan.is_empty());
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn events_are_sorted_and_lookup_finds_them() {
        let plan = FaultPlan::generate(9, 30, 6, &dense_rates());
        assert!(plan
            .events()
            .windows(2)
            .all(|w| (w[0].step, w[0].pe) <= (w[1].step, w[1].pe)));
        // Every event is found by its cell lookup, and only there.
        let mut seen = 0;
        for step in 0..30 {
            for pe in 0..6 {
                for i in plan.at(step, pe) {
                    let e = plan.events()[i];
                    assert_eq!((e.step, e.pe), (step, pe));
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, plan.len());
        assert!(plan.at(1000, 0).is_empty());
    }

    #[test]
    fn rates_scale_event_volume() {
        let sparse = FaultPlan::generate(3, 200, 8, &FaultRates::uniform(0.01));
        let dense = FaultPlan::generate(3, 200, 8, &FaultRates::uniform(0.3));
        assert!(
            dense.len() > sparse.len(),
            "30x the rate must fire more events ({} vs {})",
            dense.len(),
            sparse.len()
        );
    }

    #[test]
    fn crash_cap_is_honored() {
        let mut rates = dense_rates();
        rates.crash = 1.0;
        rates.max_crashes = 3;
        let plan = FaultPlan::generate(5, 100, 4, &rates);
        assert_eq!(plan.counts().crash, 3);
        // uniform() caps at one crash.
        let plan = FaultPlan::generate(5, 400, 4, &FaultRates::uniform(0.5));
        assert!(plan.counts().crash <= 1);
    }

    #[test]
    fn from_events_sorts() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                step: 5,
                pe: 1,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                step: 0,
                pe: 3,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                step: 5,
                pe: 0,
                kind: FaultKind::Corrupt { salt: 1 },
            },
        ]);
        assert_eq!(plan.events()[0].step, 0);
        assert_eq!(plan.events()[1].pe, 0);
        assert_eq!(plan.at(5, 1), 2..3);
    }

    #[test]
    fn counts_and_balance() {
        let mut report = FaultReport::default();
        let kinds = [
            FaultKind::Straggle { delay_us: 10 },
            FaultKind::Drop,
            FaultKind::Corrupt { salt: 0 },
            FaultKind::Crash,
        ];
        for k in &kinds {
            report.injected.add(k, 2);
            report.detected.add(k, 2);
            report.recovered.add(k, 2);
        }
        assert_eq!(report.injected.total(), 8);
        assert!(report.balanced());
        report.recovered.drop -= 1;
        assert!(!report.balanced());
    }

    #[test]
    fn report_json_is_parsable_shape() {
        let report = FaultReport::default();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"injected\":",
            "\"detected\":",
            "\"recovered\":",
            "\"retries\":",
            "\"replayed_steps\":",
            "\"balanced\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn recovery_policy_round_trips() {
        for p in [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::Degrade,
            RecoveryPolicy::Restart,
        ] {
            assert_eq!(p.to_string().parse::<RecoveryPolicy>().unwrap(), p);
        }
        assert!("chaos".parse::<RecoveryPolicy>().is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let words = [1.5f64, -2.25, 1e-300, 0.0, 6000.0];
        let clean = block_checksum(&words);
        for i in 0..words.len() {
            for bit in [0u32, 17, 31, 52, 63] {
                let mut corrupted = words;
                corrupted[i] = f64::from_bits(corrupted[i].to_bits() ^ (1u64 << bit));
                assert_ne!(
                    block_checksum(&corrupted),
                    clean,
                    "flip of word {i} bit {bit} must change the checksum"
                );
            }
        }
        assert_eq!(block_checksum(&words), clean, "checksum is pure");
    }
}
