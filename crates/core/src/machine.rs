//! Machine and network parameter sets: the `T_f`, `T_l`, `T_w` constants of
//! the paper's models, with the measured values the paper reports.

use serde::{Deserialize, Serialize};

/// Bytes per communication word (the paper uses 64-bit floating-point
/// values throughout).
pub const WORD_BYTES: f64 = 8.0;

/// A processing element's sustained computational rate, expressed as the
/// amortized time per flop `T_f` (seconds). `T_f` includes *all* hardware
/// and software overheads — loads, stores, miss penalties, pipeline stalls —
/// which is why sustained rates are far below peak for irregular codes.
///
/// # Examples
///
/// ```
/// use quake_core::machine::Processor;
/// let pe = Processor::hypothetical_200mflops();
/// assert_eq!(pe.mflops(), 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Short name for reports.
    pub name: &'static str,
    /// Amortized seconds per flop (inverse of sustained flop rate).
    pub t_f: f64,
}

impl Processor {
    /// Creates a processor from a sustained MFLOPS rate.
    ///
    /// # Panics
    ///
    /// Panics if `mflops` is not positive.
    pub fn from_mflops(name: &'static str, mflops: f64) -> Self {
        assert!(mflops > 0.0, "sustained rate must be positive");
        Processor {
            name,
            t_f: 1e-6 / mflops,
        }
    }

    /// Sustained rate in MFLOPS (`T_f⁻¹ / 10⁶`).
    pub fn mflops(&self) -> f64 {
        1e-6 / self.t_f
    }

    /// The Cray T3D measurement from the paper: local Quake SMVP at a steady
    /// `T_f = 30 ns` (150 MHz Alpha 21064, `cc -O3`).
    pub fn cray_t3d() -> Self {
        Processor {
            name: "Cray T3D",
            t_f: 30e-9,
        }
    }

    /// The Cray T3E measurement from the paper: `T_f = 14 ns`
    /// (300 MHz Alpha 21164, `cc -O3`) — about 70 sustained MFLOPS, only
    /// 12% of the 600 MFLOPS peak.
    pub fn cray_t3e() -> Self {
        Processor {
            name: "Cray T3E",
            t_f: 14e-9,
        }
    }

    /// The paper's "current machine": 100 sustained MFLOPS (`T_f = 10 ns`).
    pub fn hypothetical_100mflops() -> Self {
        Processor {
            name: "100-MFLOP PE",
            t_f: 10e-9,
        }
    }

    /// The paper's "future machine": 200 sustained MFLOPS (`T_f = 5 ns`).
    pub fn hypothetical_200mflops() -> Self {
        Processor {
            name: "200-MFLOP PE",
            t_f: 5e-9,
        }
    }
}

/// A communication system's low-level block-transfer parameters: block
/// latency `T_l` and per-word time `T_w` (inverse burst bandwidth). The
/// block latency covers only the PE-local transfer overhead between network
/// interface and memory; the interconnect itself is modeled as having
/// infinite capacity and constant latency (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// Short name for reports.
    pub name: &'static str,
    /// Block latency `T_l` (seconds per block).
    pub t_l: f64,
    /// Per-word time `T_w` (seconds per 64-bit word).
    pub t_w: f64,
}

impl Network {
    /// Creates a network from latency (seconds) and burst bandwidth
    /// (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if `burst_bytes_per_sec` is not positive or `t_l` is negative.
    pub fn from_burst_bandwidth(name: &'static str, t_l: f64, burst_bytes_per_sec: f64) -> Self {
        assert!(t_l >= 0.0, "latency must be non-negative");
        assert!(
            burst_bytes_per_sec > 0.0,
            "burst bandwidth must be positive"
        );
        Network {
            name,
            t_l,
            t_w: WORD_BYTES / burst_bytes_per_sec,
        }
    }

    /// Burst bandwidth `T_w⁻¹` in bytes/second.
    pub fn burst_bandwidth_bytes(&self) -> f64 {
        WORD_BYTES / self.t_w
    }

    /// The Cray T3E measurement from the paper: `T_l = 22 µs`, `T_w = 55 ns`
    /// (≈ 145 MB/s burst).
    pub fn cray_t3e() -> Self {
        Network {
            name: "Cray T3E",
            t_l: 22e-6,
            t_w: 55e-9,
        }
    }

    /// The fast intra-node leg of a two-level (node-aware) exchange:
    /// shared-memory-class transfers an order of magnitude quicker than
    /// the [`Network::cray_t3e`] inter-node link on both axes. The
    /// canonical preset every node-aware backend and model prices the
    /// local gather with.
    pub fn node_local() -> Self {
        Network {
            name: "intra-node",
            t_l: 2.2e-6,
            t_w: 5.5e-9,
        }
    }

    /// Transfer time of a block of `words` 64-bit words: `T_l + words·T_w`.
    pub fn block_transfer_time(&self, words: u64) -> f64 {
        self.t_l + words as f64 * self.t_w
    }
}

/// How data is aggregated into blocks for transfer (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockRegime {
    /// Blocks as large as possible: each PE sends at most one block to each
    /// neighbor (message-passing systems, aggregating DSMs).
    Maximal,
    /// Fixed-size blocks of this many 64-bit words (e.g. 4-word cache lines
    /// on fine-grained shared-memory machines).
    FixedWords(u64),
}

impl BlockRegime {
    /// The paper's fixed regime: four-word (32-byte) cache-line blocks.
    pub const CACHE_LINE: BlockRegime = BlockRegime::FixedWords(4);

    /// The effective `B_max` under this regime, given the maximal-block
    /// `b_max` and `c_max` of an instance. For fixed blocks the paper sets
    /// `B_max = C_max / w`.
    ///
    /// # Panics
    ///
    /// Panics if a fixed block size is zero.
    pub fn effective_b_max(&self, b_max: u64, c_max: u64) -> u64 {
        match *self {
            BlockRegime::Maximal => b_max,
            BlockRegime::FixedWords(w) => {
                assert!(w > 0, "block size must be positive");
                c_max.div_ceil(w)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mflops_round_trip() {
        let pe = Processor::from_mflops("x", 250.0);
        assert!((pe.mflops() - 250.0).abs() < 1e-9);
        assert!((pe.t_f - 4e-9).abs() < 1e-18);
    }

    #[test]
    fn paper_presets() {
        assert_eq!(Processor::cray_t3d().t_f, 30e-9);
        assert_eq!(Processor::cray_t3e().t_f, 14e-9);
        assert_eq!(Processor::hypothetical_100mflops().mflops(), 100.0);
        assert_eq!(Processor::hypothetical_200mflops().mflops(), 200.0);
        let net = Network::cray_t3e();
        assert_eq!(net.t_l, 22e-6);
        assert_eq!(net.t_w, 55e-9);
        // ≈ 145 MB/s burst.
        assert!((net.burst_bandwidth_bytes() / 1e6 - 145.45).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mflops_panics() {
        let _ = Processor::from_mflops("bad", 0.0);
    }

    #[test]
    fn network_from_burst() {
        let net = Network::from_burst_bandwidth("n", 1e-6, 800e6);
        assert!((net.t_w - 10e-9).abs() < 1e-15);
        assert!((net.burst_bandwidth_bytes() - 800e6).abs() < 1.0);
    }

    #[test]
    fn block_transfer_time_is_affine() {
        let net = Network {
            name: "n",
            t_l: 1e-6,
            t_w: 10e-9,
        };
        assert!((net.block_transfer_time(0) - 1e-6).abs() < 1e-18);
        assert!((net.block_transfer_time(100) - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn block_regimes() {
        assert_eq!(BlockRegime::Maximal.effective_b_max(50, 16260), 50);
        assert_eq!(BlockRegime::CACHE_LINE.effective_b_max(50, 16260), 4065);
        assert_eq!(BlockRegime::FixedWords(4).effective_b_max(50, 10), 3);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        let _ = BlockRegime::FixedWords(0).effective_b_max(1, 1);
    }
}
