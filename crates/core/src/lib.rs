//! The paper's contribution, reimplemented as a library: workload
//! characterization types and analytic performance models for the parallel
//! sparse matrix-vector product (SMVP) at the heart of the Quake family of
//! unstructured finite-element earthquake simulations.
//!
//! From O'Hallaron, Shewchuk & Gross, *Architectural Implications of a
//! Family of Irregular Applications*, HPCA 1998:
//!
//! * [`characterize::SmvpInstance`] — one row of the paper's Figure 7: the
//!   per-PE flop count `F`, communication maxima `C_max`/`B_max`, and mean
//!   message size of a partitioned SMVP;
//! * [`model::eq1`] / [`model::eq2`] — Equations (1) and (2);
//! * [`model::beta`] — the β bound of §3.4;
//! * [`model::bisection`] — §4.2's bisection-bandwidth requirement;
//! * [`requirements`] — the sweeps behind Figures 8–11;
//! * [`machine`] — `T_f`/`T_l`/`T_w` presets including the paper's Cray
//!   T3D/T3E measurements;
//! * [`fault`] — the deterministic chaos layer: seeded per-step/per-PE
//!   fault plans (stragglers, drops, corruption, crashes), recovery
//!   policies, and the injected/detected/recovered ledger;
//! * [`telemetry`] — the observability layer: per-phase span tracing,
//!   log2-bucketed latency/size histograms, live Eq. (2) drift detection,
//!   and Chrome-trace/Prometheus exporters;
//! * [`paperdata`] — the published Figure 2/6/7 tables, embedded so Figures
//!   8–11 can be regenerated exactly.
//!
//! # Examples
//!
//! How much sustained bandwidth does sf2/128 need at 90% efficiency on a
//! 200-MFLOP PE? (The paper's headline ≈ 300 MB/s.)
//!
//! ```
//! use quake_core::machine::Processor;
//! use quake_core::model::eq1::required_sustained_bandwidth;
//! use quake_core::paperdata::figure7_instance;
//!
//! let inst = figure7_instance("sf2", 128).expect("row exists");
//! let bw = required_sustained_bandwidth(&inst, 0.9, &Processor::hypothetical_200mflops());
//! assert!((bw / 1e6) > 250.0 && (bw / 1e6) < 320.0);
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod characterize;
pub mod fault;
pub mod machine;
pub mod model;
pub mod paperdata;
pub mod requirements;
pub mod telemetry;

pub use characterize::{AppCommSummary, SmvpInstance};
pub use machine::{BlockRegime, Network, Processor, WORD_BYTES};
