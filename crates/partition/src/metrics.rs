//! Partition-quality metrics used by the partitioner ablation benches.

use crate::comm::CommAnalysis;
use crate::partition::Partition;
use quake_mesh::mesh::TetMesh;
use std::fmt;

/// Summary quality metrics of one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub parts: usize,
    /// Element imbalance (1.0 = perfect).
    pub imbalance: f64,
    /// Nodes residing on more than one PE.
    pub shared_nodes: usize,
    /// Total node residencies / node count.
    pub replication_factor: f64,
    /// Mesh edges whose endpoints reside on disjoint PE sets — a
    /// graph-cut-style proxy (0 for one part).
    pub edge_cut: usize,
    /// Maximum words on any PE (`C_max`).
    pub c_max: u64,
    /// Maximum blocks on any PE (`B_max`).
    pub b_max: u64,
    /// Computation/communication ratio `F/C_max`.
    pub comp_comm_ratio: f64,
}

impl PartitionQuality {
    /// Measures `partition` against `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not match the mesh.
    pub fn measure(mesh: &TetMesh, partition: &Partition) -> Self {
        let analysis = CommAnalysis::new(mesh, partition);
        let mut edge_cut = 0usize;
        for (a, b) in mesh.edges() {
            let pa = partition.node_pes(a);
            let pb = partition.node_pes(b);
            // The edge is cut if no PE holds both endpoints.
            let joint = pa.iter().any(|q| pb.binary_search(q).is_ok());
            if !joint {
                edge_cut += 1;
            }
        }
        PartitionQuality {
            parts: partition.parts(),
            imbalance: partition.imbalance(),
            shared_nodes: partition.shared_node_count(),
            replication_factor: partition.replication_factor(),
            edge_cut,
            c_max: analysis.c_max(),
            b_max: analysis.b_max(),
            comp_comm_ratio: analysis.comp_comm_ratio(),
        }
    }
}

impl fmt::Display for PartitionQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p={} imbalance={:.3} shared={} repl={:.3} cut={} C_max={} B_max={} F/C_max={:.1}",
            self.parts,
            self.imbalance,
            self.shared_nodes,
            self.replication_factor,
            self.edge_cut,
            self.c_max,
            self.b_max,
            self.comp_comm_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{Partitioner, RandomPartition, RecursiveBisection};
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(5.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    #[test]
    fn single_part_quality_is_trivial() {
        let m = mesh();
        let part = RecursiveBisection::coordinate().partition(&m, 1).unwrap();
        let q = PartitionQuality::measure(&m, &part);
        assert_eq!(q.shared_nodes, 0);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.c_max, 0);
        assert_eq!(q.replication_factor, 1.0);
    }

    #[test]
    fn geometric_dominates_random() {
        let m = mesh();
        let good = PartitionQuality::measure(
            &m,
            &RecursiveBisection::inertial().partition(&m, 8).unwrap(),
        );
        let bad =
            PartitionQuality::measure(&m, &RandomPartition { seed: 3 }.partition(&m, 8).unwrap());
        assert!(good.shared_nodes < bad.shared_nodes);
        assert!(good.c_max < bad.c_max);
        assert!(good.replication_factor < bad.replication_factor);
        assert!(good.comp_comm_ratio > bad.comp_comm_ratio);
    }

    #[test]
    fn display_formats() {
        let m = mesh();
        let q = PartitionQuality::measure(
            &m,
            &RecursiveBisection::coordinate().partition(&m, 4).unwrap(),
        );
        let text = q.to_string();
        assert!(text.contains("p=4"));
        assert!(text.contains("C_max="));
    }

    #[test]
    fn edge_cut_zero_when_geometrically_separated() {
        // Two tets far apart in different parts: no cut edges (no shared
        // nodes at all).
        let m = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(10.0, 0.0, 0.0),
                Vec3::new(11.0, 0.0, 0.0),
                Vec3::new(10.0, 1.0, 0.0),
                Vec3::new(10.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [4, 5, 6, 7]],
        )
        .unwrap();
        let part = crate::partition::Partition::new(&m, 2, vec![0, 1]).unwrap();
        let q = PartitionQuality::measure(&m, &part);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.shared_nodes, 0);
        assert_eq!(q.c_max, 0);
    }
}
