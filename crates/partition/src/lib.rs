//! Mesh partitioning substrate: recursive geometric bisection and the
//! communication analysis behind the paper's workload characterization.
//!
//! The Quake applications are parallelized by partitioning each mesh into
//! `p` disjoint element sets (*subdomains*), one per PE, using recursive
//! geometric bisection. This crate reproduces that pipeline and derives the
//! architectural quantities the paper reports per instance (Fig. 7): flops
//! per PE `F`, maximum communication words `C_max`, maximum blocks `B_max`,
//! mean message size `M_avg`, and the β error bound (Fig. 6).
//!
//! # Examples
//!
//! ```
//! use quake_mesh::generator::{generate_mesh, GeneratorOptions};
//! use quake_mesh::geometry::Aabb;
//! use quake_mesh::ground::UniformSizing;
//! use quake_partition::geometric::{Partitioner, RecursiveBisection};
//! use quake_partition::comm::CommAnalysis;
//! use quake_sparse::dense::Vec3;
//!
//! let domain = Aabb::new(Vec3::ZERO, Vec3::splat(4.0));
//! let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default())?;
//! let part = RecursiveBisection::inertial().partition(&mesh, 4).unwrap();
//! let comm = CommAnalysis::new(&mesh, &part);
//! assert!(comm.c_max() > 0);
//! assert!(comm.beta() >= 1.0 && comm.beta() <= 2.0);
//! # Ok::<(), quake_mesh::generator::GenerateError>(())
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod comm;
pub mod geometric;
pub mod metrics;
pub mod partition;
pub mod refine;
pub mod sfc;
pub mod spectral;

pub use comm::{CommAnalysis, PeLoad};
pub use geometric::{CutAxis, LinearPartition, Partitioner, RandomPartition, RecursiveBisection};
pub use metrics::PartitionQuality;
pub use partition::{Partition, PartitionError};
pub use refine::{refine, RefineOptions, RefineStats};
pub use sfc::MortonPartition;
pub use spectral::SpectralBisection;
