//! The element partition type: the mapping of mesh elements to processing
//! elements (PEs) and the node replication it induces.
//!
//! Terminology follows the paper: the mesh is divided into `p` disjoint sets
//! of *elements* called *subdomains*, one per PE. A node incident to
//! elements in several subdomains *resides on* (is replicated across) all of
//! those PEs, and its `x`/`y` values are exchanged and summed during the
//! communication phase of every SMVP.

use quake_mesh::mesh::TetMesh;
use std::error::Error;
use std::fmt;

/// Error produced by [`Partition::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment length does not match the mesh element count.
    LengthMismatch {
        /// Number of elements in the mesh.
        elements: usize,
        /// Length of the assignment vector.
        assignments: usize,
    },
    /// An assignment references a part `>= parts`.
    PartOutOfRange {
        /// The offending element.
        element: usize,
        /// The out-of-range part id.
        part: usize,
        /// The number of parts.
        parts: usize,
    },
    /// `parts` was zero.
    ZeroParts,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::LengthMismatch {
                elements,
                assignments,
            } => write!(
                f,
                "assignment length {assignments} does not match element count {elements}"
            ),
            PartitionError::PartOutOfRange {
                element,
                part,
                parts,
            } => {
                write!(f, "element {element} assigned to part {part} of {parts}")
            }
            PartitionError::ZeroParts => write!(f, "partition must have at least one part"),
        }
    }
}

impl Error for PartitionError {}

/// A partition of mesh elements into `p` subdomains.
///
/// # Examples
///
/// ```
/// use quake_mesh::mesh::TetMesh;
/// use quake_partition::partition::Partition;
/// use quake_sparse::dense::Vec3;
/// let mesh = TetMesh::new(
///     vec![
///         Vec3::new(0.0, 0.0, 0.0),
///         Vec3::new(1.0, 0.0, 0.0),
///         Vec3::new(0.0, 1.0, 0.0),
///         Vec3::new(0.0, 0.0, 1.0),
///         Vec3::new(1.0, 1.0, 1.0),
///     ],
///     vec![[0, 1, 2, 3], [1, 2, 3, 4]],
/// ).unwrap();
/// let part = Partition::new(&mesh, 2, vec![0, 1])?;
/// // Nodes 1, 2, 3 are on the shared face: replicated on both PEs.
/// assert_eq!(part.node_pes(1), &[0, 1]);
/// # Ok::<(), quake_partition::partition::PartitionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: usize,
    elem_part: Vec<usize>,
    /// For each node, the sorted list of PEs it resides on.
    node_pes: Vec<Vec<usize>>,
}

impl Partition {
    /// Creates a partition from an element → part assignment and derives the
    /// node-residency map.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] if the assignment is inconsistent with
    /// the mesh or `parts == 0`.
    pub fn new(
        mesh: &TetMesh,
        parts: usize,
        elem_part: Vec<usize>,
    ) -> Result<Self, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        if elem_part.len() != mesh.element_count() {
            return Err(PartitionError::LengthMismatch {
                elements: mesh.element_count(),
                assignments: elem_part.len(),
            });
        }
        if let Some((e, &p)) = elem_part.iter().enumerate().find(|&(_, &p)| p >= parts) {
            return Err(PartitionError::PartOutOfRange {
                element: e,
                part: p,
                parts,
            });
        }
        let mut node_pes: Vec<Vec<usize>> = vec![Vec::new(); mesh.node_count()];
        for (e, &p) in elem_part.iter().enumerate() {
            for &v in &mesh.elements()[e] {
                if !node_pes[v].contains(&p) {
                    node_pes[v].push(p);
                }
            }
        }
        for pes in node_pes.iter_mut() {
            pes.sort_unstable();
        }
        Ok(Partition {
            parts,
            elem_part,
            node_pes,
        })
    }

    /// Number of parts (PEs / subdomains).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The element → part assignment.
    pub fn assignments(&self) -> &[usize] {
        &self.elem_part
    }

    /// The part of element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn part_of(&self, e: usize) -> usize {
        self.elem_part[e]
    }

    /// The sorted PEs on which node `v` resides.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node_pes(&self, v: usize) -> &[usize] {
        &self.node_pes[v]
    }

    /// Number of elements assigned to each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.elem_part {
            sizes[p] += 1;
        }
        sizes
    }

    /// Element imbalance: `max part size / ideal part size` (1.0 = perfect).
    /// Returns 0.0 for an empty mesh.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let ideal = total as f64 / self.parts as f64;
        *sizes.iter().max().expect("non-empty") as f64 / ideal
    }

    /// Number of nodes residing on more than one PE (the quantity the
    /// geometric partitioner minimizes; the paper's "shared nodes").
    pub fn shared_node_count(&self) -> usize {
        self.node_pes.iter().filter(|pes| pes.len() > 1).count()
    }

    /// Node replication factor: total residency count / node count
    /// (1.0 means no replication).
    pub fn replication_factor(&self) -> f64 {
        if self.node_pes.is_empty() {
            return 1.0;
        }
        let total: usize = self.node_pes.iter().map(|p| p.len()).sum();
        total as f64 / self.node_pes.len() as f64
    }

    /// The elements of part `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= parts()`.
    pub fn elements_of(&self, q: usize) -> Vec<usize> {
        assert!(q < self.parts, "part {q} out of range");
        self.elem_part
            .iter()
            .enumerate()
            .filter_map(|(e, &p)| (p == q).then_some(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_sparse::dense::Vec3;

    fn two_tets() -> TetMesh {
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let mesh = two_tets();
        assert!(matches!(
            Partition::new(&mesh, 0, vec![]),
            Err(PartitionError::ZeroParts)
        ));
        assert!(matches!(
            Partition::new(&mesh, 2, vec![0]),
            Err(PartitionError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Partition::new(&mesh, 2, vec![0, 5]),
            Err(PartitionError::PartOutOfRange { part: 5, .. })
        ));
    }

    #[test]
    fn node_residency() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 2, vec![0, 1]).unwrap();
        assert_eq!(part.node_pes(0), &[0]);
        assert_eq!(part.node_pes(4), &[1]);
        for v in 1..=3 {
            assert_eq!(part.node_pes(v), &[0, 1]);
        }
        assert_eq!(part.shared_node_count(), 3);
        assert!((part.replication_factor() - 8.0 / 5.0).abs() < 1e-15);
    }

    #[test]
    fn part_sizes_and_imbalance() {
        let mesh = two_tets();
        let balanced = Partition::new(&mesh, 2, vec![0, 1]).unwrap();
        assert_eq!(balanced.part_sizes(), vec![1, 1]);
        assert_eq!(balanced.imbalance(), 1.0);
        let skewed = Partition::new(&mesh, 2, vec![0, 0]).unwrap();
        assert_eq!(skewed.imbalance(), 2.0);
        assert_eq!(skewed.shared_node_count(), 0);
    }

    #[test]
    fn elements_of_part() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 2, vec![1, 0]).unwrap();
        assert_eq!(part.elements_of(0), vec![1]);
        assert_eq!(part.elements_of(1), vec![0]);
        assert_eq!(part.part_of(0), 1);
    }

    #[test]
    fn single_part_has_no_sharing() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 1, vec![0, 0]).unwrap();
        assert_eq!(part.shared_node_count(), 0);
        assert_eq!(part.replication_factor(), 1.0);
    }

    #[test]
    fn error_display() {
        let e = PartitionError::PartOutOfRange {
            element: 1,
            part: 9,
            parts: 4,
        };
        assert!(e.to_string().contains("part 9 of 4"));
        assert!(PartitionError::ZeroParts
            .to_string()
            .contains("at least one"));
    }
}
