//! Greedy boundary refinement: a Kernighan–Lin-flavored local improvement
//! pass over an element partition.
//!
//! The geometric bisection's cuts are planes; refinement lets boundary
//! elements migrate to whichever neighboring subdomain reduces the number of
//! shared nodes, subject to an element-balance constraint. The paper's
//! partitioner family ("competitive with those produced by other modern
//! partitioning algorithms") uses exactly this structure: a global geometric
//! split plus local cleanup.

use crate::partition::{Partition, PartitionError};
use quake_mesh::mesh::TetMesh;
use std::collections::HashMap;

/// Options for [`refine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Maximum allowed element imbalance (max part / ideal part); moves
    /// that would push a part above this are rejected. 1.05 = 5% slack.
    pub max_imbalance: f64,
    /// Number of full sweeps over boundary elements.
    pub sweeps: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_imbalance: 1.05,
            sweeps: 4,
        }
    }
}

/// The outcome of a refinement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Elements moved across subdomain boundaries.
    pub moves: usize,
    /// Shared-node count before refinement.
    pub shared_before: usize,
    /// Shared-node count after refinement.
    pub shared_after: usize,
}

/// Computes, for one node, the set of parts among `elem_part` of its
/// incident elements.
fn node_parts(incident: &[usize], elem_part: &[usize]) -> Vec<usize> {
    let mut parts: Vec<usize> = incident.iter().map(|&e| elem_part[e]).collect();
    parts.sort_unstable();
    parts.dedup();
    parts
}

/// Greedily refines `partition`, returning the improved partition and move
/// statistics. The objective is the total number of shared nodes (nodes
/// whose incident elements span more than one part).
///
/// # Errors
///
/// Returns [`PartitionError`] only if reconstructing the partition fails
/// (cannot happen for a valid input partition).
///
/// # Panics
///
/// Panics if `partition` does not match `mesh`.
pub fn refine(
    mesh: &TetMesh,
    partition: &Partition,
    options: RefineOptions,
) -> Result<(Partition, RefineStats), PartitionError> {
    assert_eq!(
        partition.assignments().len(),
        mesh.element_count(),
        "partition does not match mesh"
    );
    let p = partition.parts();
    let mut elem_part: Vec<usize> = partition.assignments().to_vec();
    // Node → incident elements.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); mesh.node_count()];
    for (e, conn) in mesh.elements().iter().enumerate() {
        for &v in conn {
            incident[v].push(e);
        }
    }
    let shared_count = |elem_part: &[usize]| -> usize {
        incident
            .iter()
            .filter(|inc| !inc.is_empty() && node_parts(inc, elem_part).len() > 1)
            .count()
    };
    let shared_before = shared_count(&elem_part);
    let mut sizes = vec![0usize; p];
    for &q in &elem_part {
        sizes[q] += 1;
    }
    let ideal = mesh.element_count() as f64 / p as f64;
    let cap = (ideal * options.max_imbalance).ceil() as usize;
    let mut moves = 0usize;
    for _ in 0..options.sweeps {
        let mut moved_this_sweep = 0usize;
        for e in 0..mesh.element_count() {
            let home = elem_part[e];
            // Candidate destinations: parts of neighboring elements through
            // shared nodes.
            let mut candidates: HashMap<usize, ()> = HashMap::new();
            for &v in &mesh.elements()[e] {
                for &ne in &incident[v] {
                    let q = elem_part[ne];
                    if q != home {
                        candidates.insert(q, ());
                    }
                }
            }
            if candidates.is_empty() {
                continue;
            }
            // Local objective: shared-node delta restricted to e's nodes and
            // their incident elements (the only nodes a move can affect).
            let local_shared = |elem_part: &[usize]| -> usize {
                mesh.elements()[e]
                    .iter()
                    .flat_map(|&v| incident[v].iter())
                    .flat_map(|&ne| mesh.elements()[ne].iter())
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .filter(|&&v| node_parts(&incident[v], elem_part).len() > 1)
                    .count()
            };
            let before = local_shared(&elem_part);
            let mut best: Option<(usize, usize)> = None;
            for &dest in candidates.keys() {
                if sizes[dest] + 1 > cap || sizes[home] == 1 {
                    continue;
                }
                elem_part[e] = dest;
                let after = local_shared(&elem_part);
                elem_part[e] = home;
                if after < before && best.map(|(_, b)| after < b).unwrap_or(true) {
                    best = Some((dest, after));
                }
            }
            if let Some((dest, _)) = best {
                elem_part[e] = dest;
                sizes[home] -= 1;
                sizes[dest] += 1;
                moves += 1;
                moved_this_sweep += 1;
            }
        }
        if moved_this_sweep == 0 {
            break;
        }
    }
    let shared_after = shared_count(&elem_part);
    let refined = Partition::new(mesh, p, elem_part)?;
    Ok((
        refined,
        RefineStats {
            moves,
            shared_before,
            shared_after,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{Partitioner, RandomPartition, RecursiveBisection};
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(5.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    #[test]
    fn refinement_never_increases_shared_nodes() {
        let m = mesh();
        for parts in [2usize, 4, 8] {
            let base = RecursiveBisection::coordinate()
                .partition(&m, parts)
                .unwrap();
            let (refined, stats) = refine(&m, &base, RefineOptions::default()).unwrap();
            assert!(
                stats.shared_after <= stats.shared_before,
                "p={parts}: {} -> {}",
                stats.shared_before,
                stats.shared_after
            );
            assert_eq!(refined.shared_node_count(), stats.shared_after);
        }
    }

    #[test]
    fn refinement_respects_balance_cap() {
        let m = mesh();
        let base = RecursiveBisection::inertial().partition(&m, 4).unwrap();
        let options = RefineOptions {
            max_imbalance: 1.05,
            sweeps: 6,
        };
        let (refined, _) = refine(&m, &base, options).unwrap();
        assert!(
            refined.imbalance() <= 1.05 + 4.0 / (m.element_count() as f64 / 4.0),
            "imbalance {} exceeds cap",
            refined.imbalance()
        );
    }

    #[test]
    fn refinement_repairs_a_perturbed_geometric_partition() {
        // A fully random partition is beyond local repair (every node is
        // already shared, so no single move helps). The realistic workload
        // is fixing a *mostly good* partition: take the geometric one and
        // scramble 10% of elements, then refine.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let m = mesh();
        let base = RecursiveBisection::inertial().partition(&m, 4).unwrap();
        let mut assign = base.assignments().to_vec();
        let mut rng = StdRng::seed_from_u64(9);
        for a in assign.iter_mut() {
            if rng.gen::<f64>() < 0.10 {
                *a = rng.gen_range(0..4);
            }
        }
        let perturbed = Partition::new(&m, 4, assign).unwrap();
        assert!(perturbed.shared_node_count() > base.shared_node_count());
        let options = RefineOptions {
            max_imbalance: 1.10,
            sweeps: 8,
        };
        let (_, stats) = refine(&m, &perturbed, options).unwrap();
        assert!(stats.moves > 0);
        assert!(
            (stats.shared_after as f64) < 0.8 * stats.shared_before as f64,
            "perturbed partition should recover: {} -> {}",
            stats.shared_before,
            stats.shared_after
        );
    }

    #[test]
    fn refinement_leaves_random_partitions_valid() {
        // Even when it cannot help, refinement must preserve validity and
        // never make things worse.
        let m = mesh();
        let base = RandomPartition { seed: 3 }.partition(&m, 4).unwrap();
        let options = RefineOptions {
            max_imbalance: 1.10,
            sweeps: 2,
        };
        let (refined, stats) = refine(&m, &base, options).unwrap();
        assert!(stats.shared_after <= stats.shared_before);
        assert_eq!(refined.parts(), 4);
        assert_eq!(
            refined.part_sizes().iter().sum::<usize>(),
            m.element_count()
        );
    }

    #[test]
    fn single_part_is_a_fixed_point() {
        let m = mesh();
        let base = RecursiveBisection::coordinate().partition(&m, 1).unwrap();
        let (refined, stats) = refine(&m, &base, RefineOptions::default()).unwrap();
        assert_eq!(stats.moves, 0);
        assert_eq!(refined, base);
    }

    #[test]
    fn zero_sweeps_is_identity() {
        let m = mesh();
        let base = RecursiveBisection::inertial().partition(&m, 4).unwrap();
        let options = RefineOptions {
            max_imbalance: 1.05,
            sweeps: 0,
        };
        let (refined, stats) = refine(&m, &base, options).unwrap();
        assert_eq!(stats.moves, 0);
        assert_eq!(refined, base);
    }
}
