//! Geometric partitioners: recursive coordinate and inertial bisection,
//! plus random and linear baselines.
//!
//! The Quake meshes were partitioned by a recursive geometric bisection
//! algorithm (Miller–Teng–Thurston–Vavasis) that "divides the elements
//! equally among the subdomains while attempting to minimize the total
//! number of nodes that are shared by multiple subdomains". Recursive
//! inertial bisection is the classic practical member of this family: each
//! cut is a plane perpendicular to the principal axis of the subdomain's
//! element centroids, placed at the weighted median so element counts split
//! exactly. Baselines (random, linear) exist so the benches can show what a
//! *bad* partitioner does to `C_max` and `B_max`.

use crate::partition::{Partition, PartitionError};
use quake_mesh::mesh::TetMesh;
use quake_sparse::dense::{Mat3, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A strategy for dividing mesh elements among `p` PEs.
pub trait Partitioner {
    /// Short name used in reports and benches.
    fn name(&self) -> &'static str;

    /// Partitions `mesh` into `parts` subdomains with near-equal element
    /// counts (sizes differ by at most one for the geometric methods).
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroParts`] if `parts == 0`.
    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError>;
}

/// How a recursive bisection chooses its cut direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutAxis {
    /// Cut perpendicular to the longest side of the subdomain bounding box.
    LongestSide,
    /// Cut perpendicular to the principal (largest-spread) inertial axis of
    /// the subdomain's element centroids.
    Inertial,
}

/// Recursive geometric bisection over element centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveBisection {
    /// Cut-direction policy.
    pub axis: CutAxis,
}

impl RecursiveBisection {
    /// Coordinate (longest-side) bisection.
    pub fn coordinate() -> Self {
        RecursiveBisection {
            axis: CutAxis::LongestSide,
        }
    }

    /// Inertial (principal-axis) bisection.
    pub fn inertial() -> Self {
        RecursiveBisection {
            axis: CutAxis::Inertial,
        }
    }

    fn cut_direction(&self, centroids: &[Vec3], items: &[usize]) -> Vec3 {
        match self.axis {
            CutAxis::LongestSide => {
                let pts: Vec<Vec3> = items.iter().map(|&e| centroids[e]).collect();
                let bbox =
                    quake_mesh::geometry::Aabb::from_points(&pts).expect("non-empty subdomain");
                let ext = bbox.extent();
                if ext.x >= ext.y && ext.x >= ext.z {
                    Vec3::new(1.0, 0.0, 0.0)
                } else if ext.y >= ext.z {
                    Vec3::new(0.0, 1.0, 0.0)
                } else {
                    Vec3::new(0.0, 0.0, 1.0)
                }
            }
            CutAxis::Inertial => {
                let n = items.len() as f64;
                let mean = items.iter().fold(Vec3::ZERO, |acc, &e| acc + centroids[e]) * (1.0 / n);
                let mut cov = Mat3::ZERO;
                for &e in items {
                    let d = centroids[e] - mean;
                    cov += Mat3::outer(d, d);
                }
                cov = cov * (1.0 / n);
                if cov.frobenius_norm() < 1e-30 {
                    // All centroids coincide; any direction works.
                    return Vec3::new(1.0, 0.0, 0.0);
                }
                let (_, vecs) = cov.symmetric_eigen();
                vecs[0]
            }
        }
    }

    fn recurse(
        &self,
        centroids: &[Vec3],
        items: &mut [usize],
        lo_part: usize,
        hi_part: usize,
        out: &mut [usize],
    ) {
        let parts = hi_part - lo_part;
        if items.is_empty() {
            return;
        }
        if parts == 1 {
            for &e in items.iter() {
                out[e] = lo_part;
            }
            return;
        }
        let left_parts = parts / 2;
        // Split element counts proportionally to part counts so uneven part
        // totals (e.g. 3 parts) still balance.
        let split = items.len() * left_parts / parts;
        let dir = self.cut_direction(centroids, items);
        items.select_nth_unstable_by(split.max(1) - 1, |&a, &b| {
            centroids[a]
                .dot(dir)
                .partial_cmp(&centroids[b].dot(dir))
                .expect("finite centroids")
        });
        let (left, right) = items.split_at_mut(split);
        self.recurse(centroids, left, lo_part, lo_part + left_parts, out);
        self.recurse(centroids, right, lo_part + left_parts, hi_part, out);
    }
}

impl Partitioner for RecursiveBisection {
    fn name(&self) -> &'static str {
        match self.axis {
            CutAxis::LongestSide => "rcb",
            CutAxis::Inertial => "rib",
        }
    }

    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let m = mesh.element_count();
        let centroids: Vec<Vec3> = (0..m).map(|e| mesh.tetra(e).centroid()).collect();
        let mut items: Vec<usize> = (0..m).collect();
        let mut out = vec![0usize; m];
        if m > 0 {
            let effective = parts.min(m.max(1));
            self.recurse(&centroids, &mut items, 0, effective, &mut out);
        }
        Partition::new(mesh, parts, out)
    }
}

/// Baseline: uniformly random assignment (what the geometric partitioner is
/// being compared against in the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPartition {
    /// RNG seed (assignments are reproducible per seed).
    pub seed: u64,
}

impl Partitioner for RandomPartition {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let assign = (0..mesh.element_count())
            .map(|_| rng.gen_range(0..parts))
            .collect();
        Partition::new(mesh, parts, assign)
    }
}

/// Baseline: contiguous blocks of element indices. Better than random when
/// element order has spatial locality (our Delaunay emits Morton-ordered
/// points), far worse than geometric bisection otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinearPartition;

impl Partitioner for LinearPartition {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let m = mesh.element_count();
        let assign = (0..m)
            .map(|e| (e * parts / m.max(1)).min(parts - 1))
            .collect();
        Partition::new(mesh, parts, assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;

    fn cube_mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    fn check_balance(part: &Partition) {
        let sizes = part.part_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Geometric bisection with proportional splits keeps parts within a
        // few elements of each other.
        assert!(max - min <= part.parts(), "imbalanced: {sizes:?}");
    }

    #[test]
    fn rcb_partitions_evenly() {
        let mesh = cube_mesh();
        for &p in &[2usize, 4, 8, 16] {
            let part = RecursiveBisection::coordinate()
                .partition(&mesh, p)
                .unwrap();
            assert_eq!(part.parts(), p);
            check_balance(&part);
        }
    }

    #[test]
    fn rib_partitions_evenly() {
        let mesh = cube_mesh();
        for &p in &[2usize, 3, 4, 8] {
            let part = RecursiveBisection::inertial().partition(&mesh, p).unwrap();
            check_balance(&part);
        }
    }

    #[test]
    fn geometric_beats_random_on_shared_nodes() {
        let mesh = cube_mesh();
        let rib = RecursiveBisection::inertial().partition(&mesh, 8).unwrap();
        let rnd = RandomPartition { seed: 1 }.partition(&mesh, 8).unwrap();
        // On this small mesh (8³ leaf cells) surface-to-volume is large, so
        // demand a 25% margin rather than the asymptotic factor.
        assert!(
            (rib.shared_node_count() as f64) < 0.75 * rnd.shared_node_count() as f64,
            "rib = {}, random = {}",
            rib.shared_node_count(),
            rnd.shared_node_count()
        );
    }

    #[test]
    fn rcb_cuts_are_spatial() {
        let mesh = cube_mesh();
        let part = RecursiveBisection::coordinate()
            .partition(&mesh, 2)
            .unwrap();
        // The two halves should separate along some axis: centroids of parts
        // must differ substantially in at least one coordinate.
        let mut sums = [Vec3::ZERO; 2];
        let mut counts = [0usize; 2];
        for e in 0..mesh.element_count() {
            let q = part.part_of(e);
            sums[q] += mesh.tetra(e).centroid();
            counts[q] += 1;
        }
        let c0 = sums[0] * (1.0 / counts[0] as f64);
        let c1 = sums[1] * (1.0 / counts[1] as f64);
        assert!((c0 - c1).norm() > 1.0, "parts not spatially separated");
    }

    #[test]
    fn single_part_is_trivial() {
        let mesh = cube_mesh();
        for strat in [
            RecursiveBisection::coordinate(),
            RecursiveBisection::inertial(),
        ] {
            let part = strat.partition(&mesh, 1).unwrap();
            assert_eq!(part.shared_node_count(), 0);
        }
    }

    #[test]
    fn zero_parts_rejected_everywhere() {
        let mesh = cube_mesh();
        assert!(RecursiveBisection::coordinate()
            .partition(&mesh, 0)
            .is_err());
        assert!(RandomPartition { seed: 0 }.partition(&mesh, 0).is_err());
        assert!(LinearPartition.partition(&mesh, 0).is_err());
    }

    #[test]
    fn linear_partition_is_contiguous() {
        let mesh = cube_mesh();
        let part = LinearPartition.partition(&mesh, 4).unwrap();
        let a = part.assignments();
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "assignments must be monotone"
        );
        check_balance(&part);
    }

    #[test]
    fn names() {
        assert_eq!(RecursiveBisection::coordinate().name(), "rcb");
        assert_eq!(RecursiveBisection::inertial().name(), "rib");
        assert_eq!(RandomPartition { seed: 0 }.name(), "random");
        assert_eq!(LinearPartition.name(), "linear");
    }

    #[test]
    fn random_is_reproducible() {
        let mesh = cube_mesh();
        let a = RandomPartition { seed: 7 }.partition(&mesh, 4).unwrap();
        let b = RandomPartition { seed: 7 }.partition(&mesh, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_parts_than_elements() {
        // Degenerate but must not panic: 1 element, 4 parts.
        let mesh = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap();
        let part = RecursiveBisection::coordinate()
            .partition(&mesh, 4)
            .unwrap();
        assert_eq!(part.parts(), 4);
        assert_eq!(part.part_sizes().iter().sum::<usize>(), 1);
    }
}
