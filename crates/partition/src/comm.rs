//! Communication analysis of a partitioned mesh: the quantities of paper
//! Figure 7 (`F`, `C_max`, `B_max`, `M_avg`, `F/C_max`), the traffic matrix
//! behind Figure 8's bisection bandwidth, and the inputs to the β bound of
//! Figure 6.
//!
//! Counting rules follow Section 2.3 and 4.1 of the paper:
//!
//! * A node residing on several PEs is *shared*; during the communication
//!   phase every pair of PEs sharing a node exchanges that node's three
//!   64-bit values (3 degrees of freedom), once in each direction, so each
//!   message from PE i to PE j is matched by one from j to i of equal
//!   length — which is why `C_i` is even and divisible by 3.
//! * `B_i` counts *blocks* (messages) assuming maximal aggregation: one
//!   block to each neighbor and one from each neighbor.
//! * `F_i = 2·m_i` where `m_i` is the number of scalar nonzeros of PE i's
//!   local stiffness matrix (9 per locally present node pair, including
//!   replicated boundary pairs, exactly as the distributed data structure
//!   stores them).

use crate::partition::Partition;
use quake_mesh::mesh::TetMesh;
use std::collections::HashMap;

/// Degrees of freedom per mesh node (x, y, z displacements).
pub const DOF_PER_NODE: usize = 3;

/// Per-PE communication/computation load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeLoad {
    /// Flops per SMVP on this PE (`F_i = 2·m_i`).
    pub flops: u64,
    /// 64-bit words sent + received per SMVP (`C_i`).
    pub words: u64,
    /// Blocks sent + received per SMVP under maximal aggregation (`B_i`).
    pub blocks: u64,
}

/// Full communication analysis of one `(mesh, partition)` instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CommAnalysis {
    parts: usize,
    per_pe: Vec<PeLoad>,
    /// `traffic[i][j]`: words sent from PE i to PE j per SMVP (symmetric).
    traffic: Vec<Vec<u64>>,
}

impl CommAnalysis {
    /// Analyzes a partitioned mesh.
    ///
    /// # Panics
    ///
    /// Panics if `partition` was built for a different mesh (element counts
    /// disagree).
    pub fn new(mesh: &TetMesh, partition: &Partition) -> Self {
        assert_eq!(
            partition.assignments().len(),
            mesh.element_count(),
            "partition does not match mesh"
        );
        let p = partition.parts();
        // --- Communication: pairwise shared-node counts. ---
        let mut shared: HashMap<(usize, usize), u64> = HashMap::new();
        for v in 0..mesh.node_count() {
            let pes = partition.node_pes(v);
            for (a_idx, &a) in pes.iter().enumerate() {
                for &b in &pes[a_idx + 1..] {
                    *shared.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut traffic = vec![vec![0u64; p]; p];
        for (&(a, b), &s) in &shared {
            let words = (DOF_PER_NODE as u64) * s;
            traffic[a][b] = words;
            traffic[b][a] = words;
        }
        // --- Computation: local stiffness-block counts per PE. ---
        // Local blocks of PE q: unique node pairs co-occurring in q's
        // elements, plus one self block per local node.
        let mut local_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
        for (e, &q) in partition.assignments().iter().enumerate() {
            let el = mesh.elements()[e];
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let (a, b) = (el[i].min(el[j]) as u32, el[i].max(el[j]) as u32);
                    local_pairs[q].push((a, b));
                }
            }
        }
        let mut local_node_counts = vec![0u64; p];
        for v in 0..mesh.node_count() {
            for &q in partition.node_pes(v) {
                local_node_counts[q] += 1;
            }
        }
        let mut per_pe = vec![PeLoad::default(); p];
        for q in 0..p {
            let pairs = &mut local_pairs[q];
            pairs.sort_unstable();
            pairs.dedup();
            let local_edges = pairs.len() as u64;
            let local_nodes = local_node_counts[q];
            // Block nnz: 2 per edge (both (i,j) and (j,i)) + 1 per node.
            let block_nnz = 2 * local_edges + local_nodes;
            per_pe[q].flops = 2 * 9 * block_nnz;
            let words: u64 = traffic[q].iter().sum();
            let neighbors = traffic[q].iter().filter(|&&w| w > 0).count() as u64;
            // Sent + received: double the one-directional volume/counts.
            per_pe[q].words = 2 * words;
            per_pe[q].blocks = 2 * neighbors;
        }
        CommAnalysis {
            parts: p,
            per_pe,
            traffic,
        }
    }

    /// Number of PEs.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Per-PE loads.
    pub fn per_pe(&self) -> &[PeLoad] {
        &self.per_pe
    }

    /// Words sent from PE `i` to PE `j` per SMVP.
    pub fn traffic(&self, i: usize, j: usize) -> u64 {
        self.traffic[i][j]
    }

    /// Maximum flops on any PE (the paper's `F`).
    pub fn f_max(&self) -> u64 {
        self.per_pe.iter().map(|l| l.flops).max().unwrap_or(0)
    }

    /// Mean flops per PE.
    pub fn f_avg(&self) -> f64 {
        if self.per_pe.is_empty() {
            return 0.0;
        }
        self.per_pe.iter().map(|l| l.flops).sum::<u64>() as f64 / self.parts as f64
    }

    /// Maximum words communicated by any PE (`C_max`).
    pub fn c_max(&self) -> u64 {
        self.per_pe.iter().map(|l| l.words).max().unwrap_or(0)
    }

    /// Maximum blocks transferred by any PE (`B_max`).
    pub fn b_max(&self) -> u64 {
        self.per_pe.iter().map(|l| l.blocks).max().unwrap_or(0)
    }

    /// Mean message (block) size in words under maximal aggregation:
    /// total directed words / total directed messages (`M_avg`).
    pub fn m_avg(&self) -> f64 {
        let mut words = 0u64;
        let mut msgs = 0u64;
        for i in 0..self.parts {
            for j in 0..self.parts {
                if self.traffic[i][j] > 0 {
                    words += self.traffic[i][j];
                    msgs += 1;
                }
            }
        }
        if msgs == 0 {
            0.0
        } else {
            words as f64 / msgs as f64
        }
    }

    /// Computation/communication ratio `F / C_max`, or infinity with no
    /// communication.
    pub fn comp_comm_ratio(&self) -> f64 {
        let c = self.c_max();
        if c == 0 {
            f64::INFINITY
        } else {
            self.f_max() as f64 / c as f64
        }
    }

    /// The paper's β bound (Section 3.4) on the overestimate of `T_comm`
    /// caused by assuming the word-maximal PE is also block-maximal.
    /// Delegates to [`quake_core::model::beta::beta_bound`].
    ///
    /// Always in `[1, 2]`; exactly 1 when some PE attains both maxima.
    pub fn beta(&self) -> f64 {
        let loads: Vec<(u64, u64)> = self.per_pe.iter().map(|l| (l.words, l.blocks)).collect();
        quake_core::model::beta::beta_bound(&loads)
    }

    /// Words crossing the bisection `{0…p/2−1} | {p/2…p−1}` per SMVP, both
    /// directions (the paper's `V` in Section 4.2).
    pub fn bisection_words(&self) -> u64 {
        let half = self.parts / 2;
        let mut v = 0u64;
        for i in 0..half {
            for j in half..self.parts {
                v += self.traffic[i][j] + self.traffic[j][i];
            }
        }
        v
    }

    /// Total words exchanged per SMVP, summed over all directed messages.
    pub fn total_words(&self) -> u64 {
        self.traffic.iter().flatten().sum()
    }

    /// Total directed messages per SMVP.
    pub fn total_messages(&self) -> u64 {
        self.traffic.iter().flatten().filter(|&&w| w > 0).count() as u64
    }

    /// Maximum number of distinct neighbor PEs of any PE.
    pub fn max_neighbors(&self) -> usize {
        (self.b_max() / 2) as usize
    }
}

/// Per-PE interior/boundary split of the local rows, the input to the
/// latency-hiding executor's schedule.
///
/// A local row is *boundary* when its node resides on more than one PE —
/// its partial result participates in the exchange (sent to and summed with
/// every co-resident PE's contribution). Every other row is *interior*:
/// its result is complete after the local SMVP and nothing remote ever
/// touches it, so it can be computed while the exchange is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapPe {
    /// Local rows (nodes resident on this PE, counting replicas).
    pub rows: u64,
    /// Rows whose node is shared with at least one other PE.
    pub boundary_rows: u64,
    /// Flops in interior rows per SMVP (18 per traversed 3×3 block).
    pub interior_flops: u64,
    /// Flops in boundary rows per SMVP.
    pub boundary_flops: u64,
    /// Words sent + received per SMVP (`C_i`, same as [`PeLoad::words`]).
    pub words: u64,
    /// Blocks sent + received per SMVP (`B_i`, same as [`PeLoad::blocks`]).
    pub blocks: u64,
}

impl OverlapPe {
    /// Rows with no remote coupling; always `rows - boundary_rows`.
    pub fn interior_rows(&self) -> u64 {
        self.rows - self.boundary_rows
    }

    /// Total flops per SMVP; equals the matching [`PeLoad::flops`].
    pub fn flops(&self) -> u64 {
        self.interior_flops + self.boundary_flops
    }
}

/// [`CommAnalysis`] extended with the interior/boundary row split, so the
/// hidden-latency step time of the overlapped executor can be predicted
/// the same way Eq. (2) predicts the barrier step:
///
/// * barrier step (per PE): `T = (T_boundary + T_interior) + T_exchange`
/// * overlapped step (per PE): `T = max(T_interior, T_exchange) + T_boundary`
///
/// with `T_exchange = B_i·t_l + C_i·t_w`. Whatever part of the exchange
/// fits under the interior-compute window is hidden; only the boundary
/// work (which must wait for inbound blocks) stays on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapAnalysis {
    comm: CommAnalysis,
    per_pe: Vec<OverlapPe>,
}

impl OverlapAnalysis {
    /// Analyzes a partitioned mesh, classifying every PE's local rows.
    ///
    /// # Panics
    ///
    /// Panics if `partition` was built for a different mesh (via
    /// [`CommAnalysis::new`]).
    pub fn new(mesh: &TetMesh, partition: &Partition) -> Self {
        let comm = CommAnalysis::new(mesh, partition);
        let p = partition.parts();
        // A node on several PEs is shared; its row is boundary on each.
        let shared: Vec<bool> = (0..mesh.node_count())
            .map(|v| partition.node_pes(v).len() > 1)
            .collect();
        let mut per_pe = vec![OverlapPe::default(); p];
        for v in 0..mesh.node_count() {
            for &q in partition.node_pes(v) {
                per_pe[q].rows += 1;
                // The self block of row v.
                if shared[v] {
                    per_pe[q].boundary_rows += 1;
                    per_pe[q].boundary_flops += 18;
                } else {
                    per_pe[q].interior_flops += 18;
                }
            }
        }
        // Off-diagonal blocks: the pair (a, b) puts one block in row a and
        // one in row b of the local stiffness, exactly as CommAnalysis
        // counts them.
        let mut local_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
        for (e, &q) in partition.assignments().iter().enumerate() {
            let el = mesh.elements()[e];
            for i in 0..4 {
                for j in (i + 1)..4 {
                    let (a, b) = (el[i].min(el[j]) as u32, el[i].max(el[j]) as u32);
                    local_pairs[q].push((a, b));
                }
            }
        }
        for (q, pairs) in local_pairs.iter_mut().enumerate() {
            pairs.sort_unstable();
            pairs.dedup();
            for &(a, b) in pairs.iter() {
                for row in [a as usize, b as usize] {
                    if shared[row] {
                        per_pe[q].boundary_flops += 18;
                    } else {
                        per_pe[q].interior_flops += 18;
                    }
                }
            }
            per_pe[q].words = comm.per_pe()[q].words;
            per_pe[q].blocks = comm.per_pe()[q].blocks;
        }
        OverlapAnalysis { comm, per_pe }
    }

    /// The underlying communication analysis.
    pub fn comm(&self) -> &CommAnalysis {
        &self.comm
    }

    /// Per-PE interior/boundary splits.
    pub fn per_pe(&self) -> &[OverlapPe] {
        &self.per_pe
    }

    /// Predicted barrier-step seconds: `max_i[(T_b + T_i) + T_x]` with
    /// `t_f` seconds per flop, `t_l` per block, `t_w` per word.
    pub fn predicted_step_barrier(&self, t_f: f64, t_l: f64, t_w: f64) -> f64 {
        self.per_pe
            .iter()
            .map(|l| l.flops() as f64 * t_f + exchange_time(l, t_l, t_w))
            .fold(0.0, f64::max)
    }

    /// Predicted overlapped-step seconds:
    /// `max_i[max(T_interior, T_exchange) + T_boundary]`.
    pub fn predicted_step_overlapped(&self, t_f: f64, t_l: f64, t_w: f64) -> f64 {
        self.per_pe
            .iter()
            .map(|l| {
                let t_int = l.interior_flops as f64 * t_f;
                let t_bnd = l.boundary_flops as f64 * t_f;
                t_int.max(exchange_time(l, t_l, t_w)) + t_bnd
            })
            .fold(0.0, f64::max)
    }

    /// Model speedup of overlapping, `T_barrier / T_overlapped` (≥ 1 by
    /// construction; 1 when there is nothing to hide).
    pub fn predicted_hiding_gain(&self, t_f: f64, t_l: f64, t_w: f64) -> f64 {
        let over = self.predicted_step_overlapped(t_f, t_l, t_w);
        if over == 0.0 {
            return 1.0;
        }
        self.predicted_step_barrier(t_f, t_l, t_w) / over
    }
}

/// `T_exchange` for one PE under the Eq. (2) convention (`B_i·t_l + C_i·t_w`
/// with both-direction counts, matching the drift monitor).
fn exchange_time(l: &OverlapPe, t_l: f64, t_w: f64) -> f64 {
    l.blocks as f64 * t_l + l.words as f64 * t_w
}

/// [`CommAnalysis`] reinterpreted for a two-level machine: the `p` PEs are
/// packed contiguously onto `n` nodes (the executor's `pe_chunk`
/// convention), PEs on one node gather their boundary partials locally,
/// and exactly one merged block per (node, node) pair crosses the slow
/// link. The predicted phase time is the max-rate model of Bienz, Gropp &
/// Olson: the busiest node's injection port, not the busiest PE's postal
/// bill, bounds the exchange —
/// `T = max_N (B_N·t_l + C_N·t_w)` over per-node cross-traffic loads.
///
/// With `nodes == parts` every PE is its own node, nothing is gathered,
/// and the per-node loads equal [`CommAnalysis::per_pe`]'s `(words,
/// blocks)` exactly — the model degenerates to Eq. (2).
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRateAnalysis {
    comm: CommAnalysis,
    nodes: usize,
    node_of: Vec<usize>,
    /// Cross-node injection loads per node (merged blocks, both directions).
    cross: Vec<quake_core::model::maxrate::NodeLoad>,
    /// Intra-node gather loads per node (per-edge blocks, both directions).
    intra: Vec<quake_core::model::maxrate::NodeLoad>,
    /// `node_traffic[a][b]`: merged words node `a` sends node `b` per SMVP.
    node_traffic: Vec<Vec<u64>>,
}

impl MaxRateAnalysis {
    /// Analyzes a partitioned mesh under a `nodes`-node topology.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not match the mesh (via
    /// [`CommAnalysis::new`]) or `nodes` is 0 or exceeds the part count.
    pub fn new(mesh: &TetMesh, partition: &Partition, nodes: usize) -> Self {
        Self::from_comm(CommAnalysis::new(mesh, partition), nodes)
    }

    /// Reinterprets an existing flat analysis under a node topology.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0 or exceeds the part count.
    pub fn from_comm(comm: CommAnalysis, nodes: usize) -> Self {
        use quake_core::model::maxrate::{node_of, NodeLoad};
        let p = comm.parts;
        assert!(
            nodes >= 1 && nodes <= p,
            "node count {nodes} out of 1..={p}"
        );
        let node_of_pe: Vec<usize> = (0..p).map(|q| node_of(p, nodes, q)).collect();
        let mut node_traffic = vec![vec![0u64; nodes]; nodes];
        let mut intra = vec![NodeLoad::default(); nodes];
        for i in 0..p {
            for j in 0..p {
                let w = comm.traffic[i][j];
                if w == 0 {
                    continue;
                }
                let (a, b) = (node_of_pe[i], node_of_pe[j]);
                if a == b {
                    // The directed scan visits each intra pair twice (i→j
                    // and j→i), so the gather leg carries both-direction
                    // words and one block per directed edge — the same
                    // send + receive convention as `PeLoad`.
                    intra[a].words += w;
                    intra[a].blocks += 1;
                } else {
                    node_traffic[a][b] += w;
                }
            }
        }
        let mut cross = vec![NodeLoad::default(); nodes];
        for (a, row) in node_traffic.iter().enumerate() {
            for (b, &w) in row.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                // The merged block a→b is injected by a and drained by b.
                cross[a].words += w;
                cross[a].blocks += 1;
                cross[b].words += w;
                cross[b].blocks += 1;
            }
        }
        MaxRateAnalysis {
            comm,
            nodes,
            node_of: node_of_pe,
            cross,
            intra,
            node_traffic,
        }
    }

    /// The underlying flat communication analysis.
    pub fn comm(&self) -> &CommAnalysis {
        &self.comm
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node PE `q` resides on.
    pub fn node_of(&self, q: usize) -> usize {
        self.node_of[q]
    }

    /// Per-node cross-traffic injection loads (`C_N`, `B_N`).
    pub fn cross_loads(&self) -> &[quake_core::model::maxrate::NodeLoad] {
        &self.cross
    }

    /// Per-node intra-node gather loads.
    pub fn intra_loads(&self) -> &[quake_core::model::maxrate::NodeLoad] {
        &self.intra
    }

    /// Merged words node `a` sends node `b` per SMVP.
    pub fn node_traffic(&self, a: usize, b: usize) -> u64 {
        self.node_traffic[a][b]
    }

    /// Total merged (node, node) blocks crossing the slow link per SMVP.
    pub fn cross_blocks(&self) -> u64 {
        self.node_traffic
            .iter()
            .flatten()
            .filter(|&&w| w > 0)
            .count() as u64
    }

    /// The max-rate phase time `max_N (B_N·t_l + C_N·t_w)` in seconds,
    /// slow-link leg only.
    pub fn predicted(&self, t_l: f64, t_w: f64) -> f64 {
        use quake_core::machine::Network;
        let net = Network {
            name: "slow",
            t_l,
            t_w,
        };
        quake_core::model::maxrate::max_rate_time(&self.cross, &net)
    }

    /// The two-level phase time: slow-link max-rate term plus the busiest
    /// node's intra-node gather leg billed at `(t_l_local, t_w_local)`.
    pub fn predicted_with_local(&self, t_l: f64, t_w: f64, t_l_local: f64, t_w_local: f64) -> f64 {
        use quake_core::machine::Network;
        let slow = Network {
            name: "slow",
            t_l,
            t_w,
        };
        let fast = Network {
            name: "fast",
            t_l: t_l_local,
            t_w: t_w_local,
        };
        quake_core::model::maxrate::two_level_time(&self.cross, &self.intra, &slow, &fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{Partitioner, RecursiveBisection};
    use proptest::prelude::*;
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn two_tets() -> TetMesh {
        TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap()
    }

    #[test]
    fn two_pe_hand_counts() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 2, vec![0, 1]).unwrap();
        let a = CommAnalysis::new(&mesh, &part);
        // 3 shared nodes × 3 dof = 9 words each way.
        assert_eq!(a.traffic(0, 1), 9);
        assert_eq!(a.traffic(1, 0), 9);
        // Each PE sends 9 and receives 9.
        assert_eq!(a.c_max(), 18);
        // One neighbor each: 1 send + 1 receive block.
        assert_eq!(a.b_max(), 2);
        assert_eq!(a.m_avg(), 9.0);
        // Each PE: 4 local nodes, 6 local edges → 2*6+4 = 16 blocks →
        // F = 2*9*16 = 288.
        assert_eq!(a.f_max(), 288);
        assert_eq!(a.f_avg(), 288.0);
        assert_eq!(a.beta(), 1.0);
        assert_eq!(a.bisection_words(), 18);
        assert_eq!(a.total_words(), 18);
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.max_neighbors(), 1);
    }

    #[test]
    fn c_values_are_even_and_divisible_by_three() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let part = RecursiveBisection::inertial().partition(&mesh, 8).unwrap();
        let a = CommAnalysis::new(&mesh, &part);
        for l in a.per_pe() {
            assert_eq!(l.words % 6, 0, "C_i must be even and divisible by 3");
            assert_eq!(l.blocks % 2, 0, "B_i must be even (matched send/recv)");
        }
    }

    #[test]
    fn beta_in_unit_interval() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        for &p in &[2usize, 4, 8, 16] {
            let part = RecursiveBisection::coordinate()
                .partition(&mesh, p)
                .unwrap();
            let a = CommAnalysis::new(&mesh, &part);
            let beta = a.beta();
            assert!(
                (1.0..=2.0).contains(&beta),
                "β = {beta} out of [1, 2] for p = {p}"
            );
        }
    }

    #[test]
    fn single_pe_has_no_communication() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 1, vec![0, 0]).unwrap();
        let a = CommAnalysis::new(&mesh, &part);
        assert_eq!(a.c_max(), 0);
        assert_eq!(a.b_max(), 0);
        assert_eq!(a.m_avg(), 0.0);
        assert_eq!(a.beta(), 1.0);
        assert!(a.comp_comm_ratio().is_infinite());
        // The whole mesh on one PE: 5 nodes, 9 edges → 2*9+5 = 23 blocks.
        assert_eq!(a.f_max(), 2 * 9 * 23);
    }

    #[test]
    fn flops_sum_exceeds_sequential_due_to_replication() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let sequential = mesh.pattern().smvp_flops();
        let part = RecursiveBisection::inertial().partition(&mesh, 8).unwrap();
        let a = CommAnalysis::new(&mesh, &part);
        let parallel_total: u64 = a.per_pe().iter().map(|l| l.flops).sum();
        assert!(parallel_total >= sequential);
        // ...but not by much for a good geometric partition.
        assert!(
            (parallel_total as f64) < 1.5 * sequential as f64,
            "replication overhead too high: {parallel_total} vs {sequential}"
        );
    }

    #[test]
    fn ratio_grows_with_fewer_parts() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let r4 = {
            let part = RecursiveBisection::inertial().partition(&mesh, 4).unwrap();
            CommAnalysis::new(&mesh, &part).comp_comm_ratio()
        };
        let r16 = {
            let part = RecursiveBisection::inertial().partition(&mesh, 16).unwrap();
            CommAnalysis::new(&mesh, &part).comp_comm_ratio()
        };
        assert!(
            r4 > r16,
            "F/C_max should fall as p grows: r4 = {r4}, r16 = {r16}"
        );
    }

    #[test]
    fn traffic_is_symmetric() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(5.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let part = RecursiveBisection::coordinate()
            .partition(&mesh, 8)
            .unwrap();
        let a = CommAnalysis::new(&mesh, &part);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a.traffic(i, j), a.traffic(j, i));
            }
        }
    }

    // --- OverlapAnalysis ---

    #[test]
    fn overlap_split_partitions_rows_and_flops_exactly() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        for &p in &[2usize, 4, 8] {
            let part = RecursiveBisection::inertial().partition(&mesh, p).unwrap();
            let overlap = OverlapAnalysis::new(&mesh, &part);
            assert_eq!(overlap.per_pe().len(), p);
            let mut local_rows = vec![0u64; p];
            for v in 0..mesh.node_count() {
                for &q in part.node_pes(v) {
                    local_rows[q] += 1;
                }
            }
            for (q, (o, c)) in overlap
                .per_pe()
                .iter()
                .zip(overlap.comm().per_pe())
                .enumerate()
            {
                // Interior + boundary is an exact partition of the rows...
                assert_eq!(o.rows, local_rows[q], "PE {q} rows");
                assert_eq!(o.interior_rows() + o.boundary_rows, o.rows, "PE {q}");
                // ...and of the flops the characterization already counts.
                assert_eq!(o.flops(), c.flops, "PE {q} flop split");
                assert_eq!(o.words, c.words, "PE {q} words");
                assert_eq!(o.blocks, c.blocks, "PE {q} blocks");
                // Multi-PE partitions of a connected mesh have both kinds.
                assert!(o.boundary_rows > 0, "PE {q} has no boundary rows");
                assert!(o.interior_rows() > 0, "PE {q} has no interior rows");
            }
        }
    }

    #[test]
    fn overlap_single_pe_is_all_interior() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 1, vec![0, 0]).unwrap();
        let overlap = OverlapAnalysis::new(&mesh, &part);
        let o = &overlap.per_pe()[0];
        assert_eq!(o.boundary_rows, 0);
        assert_eq!(o.boundary_flops, 0);
        assert_eq!(o.interior_rows(), mesh.node_count() as u64);
        assert_eq!(o.flops(), overlap.comm().f_max());
        // Nothing to hide: the model agrees.
        assert_eq!(overlap.predicted_hiding_gain(1e-9, 1e-6, 1e-8), 1.0);
    }

    #[test]
    fn overlap_model_never_predicts_a_slowdown() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let part = RecursiveBisection::inertial().partition(&mesh, 8).unwrap();
        let overlap = OverlapAnalysis::new(&mesh, &part);
        // Sweep t_l across the Fig. 10 regimes. Overlapping can only help
        // (gain ≥ 1, hidden ≤ barrier); the gain peaks where the exchange
        // roughly fills the interior-compute window and decays toward 1 on
        // both sides (pure compute-bound or pure latency-bound).
        let mut best = 1.0f64;
        for t_l in [1e-8, 1e-7, 1e-6, 1e-5, 1e-4] {
            let gain = overlap.predicted_hiding_gain(1e-9, t_l, 1e-8);
            assert!(gain >= 1.0, "t_l = {t_l}: gain {gain} < 1");
            let barrier = overlap.predicted_step_barrier(1e-9, t_l, 1e-8);
            let hidden = overlap.predicted_step_overlapped(1e-9, t_l, 1e-8);
            assert!(hidden <= barrier, "t_l = {t_l}");
            best = best.max(gain);
        }
        assert!(
            best > 1.01,
            "no latency regime benefits from overlap: best gain {best}"
        );
    }

    // --- MaxRateAnalysis ---

    #[test]
    fn maxrate_two_pe_one_node_is_all_intra() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 2, vec![0, 1]).unwrap();
        let a = MaxRateAnalysis::new(&mesh, &part, 1);
        // Both PEs share the node: nothing crosses the slow link.
        assert_eq!(a.cross_blocks(), 0);
        assert_eq!(a.cross_loads()[0].words, 0);
        assert_eq!(a.predicted(22e-6, 55e-9), 0.0);
        // The gather leg carries the full 9-words-each-way exchange.
        assert_eq!(a.intra_loads()[0].words, 18);
        assert_eq!(a.intra_loads()[0].blocks, 2);
    }

    #[test]
    fn maxrate_aggregation_collapses_blocks_and_conserves_words() {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        let mesh = generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap();
        let part = RecursiveBisection::inertial().partition(&mesh, 8).unwrap();
        let flat = CommAnalysis::new(&mesh, &part);
        let agg = MaxRateAnalysis::from_comm(flat.clone(), 2);
        // Words are conserved: intra + cross (directed) == total directed.
        let intra_words: u64 = agg.intra_loads().iter().map(|l| l.words).sum();
        let mut cross_words = 0u64;
        for a in 0..2 {
            for b in 0..2 {
                cross_words += agg.node_traffic(a, b);
            }
        }
        assert_eq!(intra_words + cross_words, flat.total_words());
        // Merged blocks: at most one per directed (node, node) pair —
        // far fewer than the flat directed message count.
        assert!(agg.cross_blocks() <= 2);
        assert!(agg.cross_blocks() < flat.total_messages());
        // The aggregated latency term can only shrink the prediction at
        // latency-dominated links.
        let t_l = 1e-4;
        let t_w = 1e-12;
        let flat_time = quake_core::model::beta::modeled_comm_time(
            &flat
                .per_pe()
                .iter()
                .map(|l| (l.words, l.blocks))
                .collect::<Vec<_>>(),
            t_l,
            t_w,
        );
        assert!(agg.predicted(t_l, t_w) < flat_time);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn maxrate_rejects_more_nodes_than_parts() {
        let mesh = two_tets();
        let part = Partition::new(&mesh, 2, vec![0, 1]).unwrap();
        let _ = MaxRateAnalysis::new(&mesh, &part, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn maxrate_degenerates_to_comm_analysis_at_one_pe_per_node(
            parts_idx in 0usize..4,
            side in 4u32..7,
        ) {
            // With every PE its own node nothing can be gathered: the
            // per-node loads must equal the flat per-PE loads exactly and
            // the max-rate prediction must equal Eq. (2)'s
            // B_max·t_l + C_max·t_w over the same instance.
            let parts = [2usize, 3, 4, 8][parts_idx];
            let domain = Aabb::new(Vec3::ZERO, Vec3::splat(side as f64));
            let mesh = generate_mesh(
                domain, &UniformSizing(1.0), GeneratorOptions::default(),
            ).unwrap();
            let part = RecursiveBisection::inertial()
                .partition(&mesh, parts)
                .unwrap();
            let flat = CommAnalysis::new(&mesh, &part);
            let agg = MaxRateAnalysis::from_comm(flat.clone(), parts);
            for (q, (cross, pe)) in
                agg.cross_loads().iter().zip(flat.per_pe()).enumerate()
            {
                prop_assert_eq!(cross.words, pe.words);
                prop_assert_eq!(cross.blocks, pe.blocks);
                prop_assert_eq!(agg.node_of(q), q);
            }
            // No intra-node leg remains.
            prop_assert!(agg.intra_loads().iter().all(|l| l.words == 0));
            for (t_l, t_w) in [(22e-6, 55e-9), (2.9e-6, 1.2e-9), (0.0, 1e-9)] {
                let loads: Vec<(u64, u64)> =
                    flat.per_pe().iter().map(|l| (l.words, l.blocks)).collect();
                let eq2 = quake_core::model::beta::modeled_comm_time(&loads, t_l, t_w);
                let exact = quake_core::model::beta::exact_comm_time(&loads, t_l, t_w);
                let maxrate = agg.predicted(t_l, t_w);
                // At one PE per node the max-rate model IS the exact
                // per-PE time; Eq. (2) pairs B_max with C_max even when
                // different PEs attain them, so it sits above by at most
                // the §3.4 β factor.
                prop_assert!(
                    (maxrate - exact).abs() <= 1e-12 * exact.max(1.0),
                    "maxrate {} vs exact {}", maxrate, exact
                );
                prop_assert!(
                    maxrate <= eq2 * (1.0 + 1e-12),
                    "maxrate {} above eq2 {}", maxrate, eq2
                );
                // And the two-level variant coincides: no gather leg.
                let two = agg.predicted_with_local(t_l, t_w, 1e-7, 1e-10);
                prop_assert!((two - maxrate).abs() <= 1e-12 * maxrate.max(1.0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_partition_panics() {
        let mesh = two_tets();
        let other = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 1, 2, 3]],
        )
        .unwrap();
        let part = Partition::new(&other, 1, vec![0]).unwrap();
        let _ = CommAnalysis::new(&mesh, &part);
    }
}
