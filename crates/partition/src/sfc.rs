//! Space-filling-curve partitioner: Morton (Z-order) blocks of element
//! centroids — the cheap middle ground between the linear baseline and full
//! recursive bisection, widely used in practice for adaptive meshes.

use crate::geometric::Partitioner;
use crate::partition::{Partition, PartitionError};
use quake_mesh::geometry::Aabb;
use quake_mesh::mesh::TetMesh;
use quake_sparse::dense::Vec3;

/// Partitions elements into contiguous blocks along a Morton (Z-order)
/// curve through their centroids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MortonPartition;

/// Spreads the low 21 bits of `x` so consecutive bits are 3 apart.
fn spread3(mut x: u64) -> u64 {
    x &= 0x1f_ffff;
    x = (x | x << 32) & 0x1f00000000ffff;
    x = (x | x << 16) & 0x1f0000ff0000ff;
    x = (x | x << 8) & 0x100f00f00f00f00f;
    x = (x | x << 4) & 0x10c30c30c30c30c3;
    x = (x | x << 2) & 0x1249249249249249;
    x
}

/// The Morton key of a point within `bbox`, at 21 bits per axis.
pub fn morton_key(p: Vec3, bbox: &Aabb) -> u64 {
    let ext = bbox.extent();
    let quantize = |v: f64, lo: f64, e: f64| -> u64 {
        if e <= 0.0 {
            0
        } else {
            (((v - lo) / e).clamp(0.0, 1.0) * ((1u64 << 21) - 1) as f64) as u64
        }
    };
    let xi = quantize(p.x, bbox.min.x, ext.x);
    let yi = quantize(p.y, bbox.min.y, ext.y);
    let zi = quantize(p.z, bbox.min.z, ext.z);
    spread3(xi) | spread3(yi) << 1 | spread3(zi) << 2
}

impl Partitioner for MortonPartition {
    fn name(&self) -> &'static str {
        "morton"
    }

    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let m = mesh.element_count();
        if m == 0 {
            return Partition::new(mesh, parts, Vec::new());
        }
        let centroids: Vec<Vec3> = (0..m).map(|e| mesh.tetra(e).centroid()).collect();
        let bbox = Aabb::from_points(&centroids).expect("non-empty");
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&e| morton_key(centroids[e], &bbox));
        let mut assign = vec![0usize; m];
        for (rank, &e) in order.iter().enumerate() {
            assign[e] = (rank * parts / m).min(parts - 1);
        }
        Partition::new(mesh, parts, assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{LinearPartition, RandomPartition, RecursiveBisection};
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::ground::UniformSizing;

    fn mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(6.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    #[test]
    fn morton_partitions_evenly() {
        let m = mesh();
        let part = MortonPartition.partition(&m, 8).unwrap();
        let sizes = part.part_sizes();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes: {sizes:?}");
    }

    #[test]
    fn morton_beats_random_loses_to_geometric() {
        let m = mesh();
        let morton = MortonPartition
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        let random = RandomPartition { seed: 1 }
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        let rib = RecursiveBisection::inertial()
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        assert!(morton < random, "morton {morton} vs random {random}");
        // Geometric bisection should be at least as good (usually better).
        assert!(
            rib as f64 <= morton as f64 * 1.2,
            "rib {rib} vs morton {morton}"
        );
    }

    #[test]
    fn morton_respects_spatial_locality_vs_linear() {
        // Our Delaunay emits Morton-sorted points, so LinearPartition is
        // already decent; Morton over centroids must be comparable or better.
        let m = mesh();
        let morton = MortonPartition
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        let linear = LinearPartition
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        assert!(
            (morton as f64) < 1.5 * linear as f64,
            "morton {morton} vs linear {linear}"
        );
    }

    #[test]
    fn morton_key_orders_octants() {
        let bbox = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let low = morton_key(Vec3::splat(0.1), &bbox);
        let high = morton_key(Vec3::splat(0.9), &bbox);
        assert!(low < high);
        assert_eq!(morton_key(Vec3::ZERO, &bbox), 0);
    }

    #[test]
    fn spread3_expected_bits() {
        assert_eq!(spread3(0b1), 0b1);
        assert_eq!(spread3(0b10), 0b1000);
        assert_eq!(spread3(0b11), 0b1001);
    }

    #[test]
    fn zero_parts_rejected() {
        let m = mesh();
        assert!(MortonPartition.partition(&m, 0).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(MortonPartition.name(), "morton");
    }
}
