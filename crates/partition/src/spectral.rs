//! Recursive spectral bisection: the comparator partitioner family the
//! paper cites (Barnard & Simon, reference 3).
//!
//! Each cut splits a subdomain at the median of the Fiedler vector (the
//! eigenvector of the second-smallest eigenvalue of the graph Laplacian) of
//! its element-adjacency graph. The Fiedler vector is computed by power
//! iteration on a spectrally shifted Laplacian with deflation of the
//! constant vector — no external linear-algebra dependency.

use crate::geometric::Partitioner;
use crate::partition::{Partition, PartitionError};
use quake_mesh::mesh::TetMesh;
use std::collections::HashMap;

/// Recursive spectral bisection over the element face-adjacency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpectralBisection {
    /// Power-iteration steps per cut (accuracy/cost knob).
    pub iterations: usize,
}

impl Default for SpectralBisection {
    fn default() -> Self {
        SpectralBisection { iterations: 120 }
    }
}

/// Builds the element adjacency lists: elements sharing a face are
/// neighbors (each interior face joins exactly two tets).
fn element_adjacency(mesh: &TetMesh) -> Vec<Vec<u32>> {
    let mut face_owner: HashMap<[usize; 3], u32> = HashMap::new();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); mesh.element_count()];
    for (e, tet) in mesh.elements().iter().enumerate() {
        for skip in 0..4 {
            let mut f: Vec<usize> = (0..4).filter(|&k| k != skip).map(|k| tet[k]).collect();
            f.sort_unstable();
            let key = [f[0], f[1], f[2]];
            match face_owner.remove(&key) {
                None => {
                    face_owner.insert(key, e as u32);
                }
                Some(other) => {
                    adj[e].push(other);
                    adj[other as usize].push(e as u32);
                }
            }
        }
    }
    adj
}

/// Approximates the Fiedler vector of the subgraph induced by `items`,
/// using power iteration on `(c·I − L)` with deflation of the constant
/// vector. Returns one value per item.
fn fiedler_vector(adj: &[Vec<u32>], items: &[usize], iterations: usize) -> Vec<f64> {
    let n = items.len();
    // Map global element id -> local index.
    let mut local: HashMap<u32, usize> = HashMap::with_capacity(n);
    for (l, &g) in items.iter().enumerate() {
        local.insert(g as u32, l);
    }
    // Local degrees (edges inside the subgraph only).
    let degrees: Vec<f64> = items
        .iter()
        .map(|&g| adj[g].iter().filter(|&&o| local.contains_key(&o)).count() as f64)
        .collect();
    let max_degree = degrees.iter().cloned().fold(1.0, f64::max);
    // Shift so the Laplacian spectrum maps into positives with the Fiedler
    // direction second-dominant: M = (2·d_max)·I − L.
    let shift = 2.0 * max_degree;
    // Deterministic pseudo-random start, orthogonal to the constant vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(12345);
            (x % 10_000) as f64 / 10_000.0 - 0.5
        })
        .collect();
    for _ in 0..iterations {
        // Deflate the constant vector (the Laplacian's kernel).
        let mean: f64 = v.iter().sum::<f64>() / n as f64;
        for x in v.iter_mut() {
            *x -= mean;
        }
        // w = M v = shift·v − (D v − A v).
        let mut w = vec![0.0; n];
        for (l, &g) in items.iter().enumerate() {
            let mut neighbor_sum = 0.0;
            for o in &adj[g] {
                if let Some(&lo) = local.get(o) {
                    neighbor_sum += v[lo];
                }
            }
            w[l] = shift * v[l] - (degrees[l] * v[l] - neighbor_sum);
        }
        // Normalize.
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return v; // disconnected pathological case; fall back
        }
        for x in w.iter_mut() {
            *x /= norm;
        }
        v = w;
    }
    v
}

impl SpectralBisection {
    fn recurse(
        &self,
        adj: &[Vec<u32>],
        items: &mut [usize],
        lo_part: usize,
        hi_part: usize,
        out: &mut [usize],
    ) {
        let parts = hi_part - lo_part;
        if items.is_empty() {
            return;
        }
        if parts == 1 {
            for &e in items.iter() {
                out[e] = lo_part;
            }
            return;
        }
        let left_parts = parts / 2;
        let split = (items.len() * left_parts / parts).max(1);
        let fiedler = fiedler_vector(adj, items, self.iterations);
        // Order items by their Fiedler coordinate and split at the balanced
        // median.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| fiedler[a].partial_cmp(&fiedler[b]).expect("finite iterate"));
        let reordered: Vec<usize> = order.iter().map(|&l| items[l]).collect();
        items.copy_from_slice(&reordered);
        let (left, right) = items.split_at_mut(split);
        self.recurse(adj, left, lo_part, lo_part + left_parts, out);
        self.recurse(adj, right, lo_part + left_parts, hi_part, out);
    }
}

impl Partitioner for SpectralBisection {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn partition(&self, mesh: &TetMesh, parts: usize) -> Result<Partition, PartitionError> {
        if parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        let m = mesh.element_count();
        let adj = element_adjacency(mesh);
        let mut items: Vec<usize> = (0..m).collect();
        let mut out = vec![0usize; m];
        if m > 0 {
            let effective = parts.min(m);
            self.recurse(&adj, &mut items, 0, effective, &mut out);
        }
        Partition::new(mesh, parts, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::{RandomPartition, RecursiveBisection};
    use quake_mesh::generator::{generate_mesh, GeneratorOptions};
    use quake_mesh::geometry::Aabb;
    use quake_mesh::ground::UniformSizing;
    use quake_sparse::dense::Vec3;

    fn mesh() -> TetMesh {
        let domain = Aabb::new(Vec3::ZERO, Vec3::splat(5.0));
        generate_mesh(domain, &UniformSizing(1.0), GeneratorOptions::default()).unwrap()
    }

    #[test]
    fn adjacency_counts_interior_faces() {
        // Two tets sharing one face: each has exactly one neighbor.
        let m = TetMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2, 3], [1, 2, 3, 4]],
        )
        .unwrap();
        let adj = element_adjacency(&m);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
    }

    #[test]
    fn spectral_partitions_evenly() {
        let m = mesh();
        for p in [2usize, 4, 8] {
            let part = SpectralBisection::default().partition(&m, p).unwrap();
            let sizes = part.part_sizes();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= p, "p={p}: {sizes:?}");
        }
    }

    #[test]
    fn spectral_beats_random_and_rivals_geometric() {
        let m = mesh();
        let spectral = SpectralBisection { iterations: 500 }
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        let random = RandomPartition { seed: 2 }
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        let rib = RecursiveBisection::inertial()
            .partition(&m, 8)
            .unwrap()
            .shared_node_count();
        assert!(
            (spectral as f64) < 0.7 * random as f64,
            "spectral {spectral} vs random {random}"
        );
        // The paper says geometric partitions are "competitive with" other
        // modern methods — allow either to win, within a factor.
        assert!(
            (spectral as f64) < 2.0 * rib as f64,
            "spectral {spectral} should rival rib {rib}"
        );
    }

    #[test]
    fn fiedler_separates_a_dumbbell() {
        // Two cliques joined by one edge: the Fiedler vector must separate
        // them by sign.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    adj[a as usize].push(b);
                }
            }
        }
        for a in 4..8u32 {
            for b in 4..8u32 {
                if a != b {
                    adj[a as usize].push(b);
                }
            }
        }
        adj[0].push(4);
        adj[4].push(0);
        let items: Vec<usize> = (0..8).collect();
        let f = fiedler_vector(&adj, &items, 300);
        let left: f64 = f[0..4].iter().sum::<f64>() / 4.0;
        let right: f64 = f[4..8].iter().sum::<f64>() / 4.0;
        assert!(
            left * right < 0.0,
            "cliques should take opposite signs: {left} vs {right}"
        );
    }

    #[test]
    fn zero_parts_rejected() {
        assert!(SpectralBisection::default().partition(&mesh(), 0).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(SpectralBisection::default().name(), "spectral");
    }
}
