//! Sparsity patterns: symbolic structure shared by matrices assembled over
//! the same mesh.
//!
//! A pattern is the node-adjacency structure of the mesh ("K can be likened
//! to an adjacency matrix of the nodes of the mesh"), stored as sorted CSR
//! index arrays without values.

use crate::error::SparseError;

/// A symmetric sparsity pattern over `n` nodes in CSR index form.
///
/// Every node is adjacent to itself (the stiffness matrix always has diagonal
/// blocks). Off-diagonal adjacency is symmetric: `j ∈ adj(i) ⇔ i ∈ adj(j)`.
///
/// # Examples
///
/// ```
/// use quake_sparse::pattern::Pattern;
/// // A path graph 0 - 1 - 2.
/// let p = Pattern::from_edges(3, &[(0, 1), (1, 2)])?;
/// assert_eq!(p.degree(1), 3); // self + two neighbors
/// assert_eq!(p.edge_count(), 2);
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl Pattern {
    /// Builds a pattern from undirected edges between distinct nodes.
    /// Self-loops are implied and must not be listed; duplicate edges are
    /// merged.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if an edge endpoint is `≥ n`,
    /// or [`SparseError::MalformedStructure`] if an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, SparseError> {
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(SparseError::IndexOutOfBounds {
                    row: a,
                    col: b,
                    rows: n,
                    cols: n,
                });
            }
            if a == b {
                return Err(SparseError::MalformedStructure(
                    "explicit self-loop in edge list (self-adjacency is implied)",
                ));
            }
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            adj[i].push(i);
        }
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            col_idx.extend_from_slice(list);
            row_ptr.push(col_idx.len());
        }
        Ok(Pattern {
            n,
            row_ptr,
            col_idx,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges, excluding implied self-loops.
    pub fn edge_count(&self) -> usize {
        (self.col_idx.len() - self.n) / 2
    }

    /// Number of stored adjacency entries (block nonzeros), including
    /// self-adjacency: `2·edges + n`.
    pub fn block_nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Degree of node `i` including itself (the paper's node degree 14 ⇒ 42
    /// scalar nonzeros per row).
    ///
    /// # Panics
    ///
    /// Panics if `i >= node_count()`.
    pub fn degree(&self, i: usize) -> usize {
        assert!(i < self.n, "node {i} out of range");
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// The sorted adjacency list of node `i`, including `i` itself.
    ///
    /// # Panics
    ///
    /// Panics if `i >= node_count()`.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        assert!(i < self.n, "node {i} out of range");
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Average node degree including self (paper: ≈ 14 for Quake meshes).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.block_nnz() as f64 / self.n as f64
        }
    }

    /// The CSR row-pointer array.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The CSR column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Iterates over the undirected edges `(i, j)` with `i < j`
    /// (self-loops excluded).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.neighbors(i)
                .iter()
                .copied()
                .filter_map(move |j| (i < j).then_some((i, j)))
        })
    }

    /// Scalar-row nonzero count for the induced `3n × 3n` stiffness matrix:
    /// `3 × degree` per node row.
    pub fn scalar_nnz(&self) -> usize {
        9 * self.block_nnz()
    }

    /// Flops of one SMVP on the induced stiffness matrix: `2 × 9 × block_nnz`.
    pub fn smvp_flops(&self) -> u64 {
        2 * self.scalar_nnz() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Pattern {
        Pattern::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn counts() {
        let p = path3();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.block_nnz(), 7); // 3 self + 4 directed
        assert_eq!(p.scalar_nnz(), 63);
        assert_eq!(p.smvp_flops(), 126);
    }

    #[test]
    fn degrees_and_neighbors() {
        let p = path3();
        assert_eq!(p.degree(0), 2);
        assert_eq!(p.degree(1), 3);
        assert_eq!(p.neighbors(1), &[0, 1, 2]);
        assert!((p.avg_degree() - 7.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn duplicate_edges_merged() {
        let p = Pattern::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(p.edge_count(), 1);
        assert_eq!(p.degree(0), 2);
    }

    #[test]
    fn self_loop_rejected() {
        assert!(matches!(
            Pattern::from_edges(2, &[(1, 1)]),
            Err(SparseError::MalformedStructure(_))
        ));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        assert!(Pattern::from_edges(2, &[(0, 2)]).is_err());
    }

    #[test]
    fn edges_iterator_round_trips() {
        let input = [(0usize, 1usize), (1, 2), (0, 3), (2, 3)];
        let p = Pattern::from_edges(4, &input).unwrap();
        let mut got: Vec<(usize, usize)> = p.edges().collect();
        got.sort_unstable();
        let mut want = input.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_pattern() {
        let p = Pattern::from_edges(0, &[]).unwrap();
        assert_eq!(p.block_nnz(), 0);
        assert_eq!(p.avg_degree(), 0.0);
        assert_eq!(p.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_self_adjacency() {
        let p = Pattern::from_edges(3, &[]).unwrap();
        assert_eq!(p.degree(2), 1);
        assert_eq!(p.neighbors(2), &[2]);
        assert_eq!(p.edge_count(), 0);
    }
}
