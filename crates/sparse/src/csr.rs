//! Compressed sparse row (CSR) matrices and the scalar SMVP kernel.

use crate::error::SparseError;

/// A sparse matrix in compressed sparse row format.
///
/// This is the canonical storage for the Quake stiffness matrix at scalar
/// granularity, and the operand of the paper's central kernel: the sparse
/// matrix-vector product `y = Kx`, which costs exactly `2·nnz` flops
/// (one multiply and one add per stored entry — the paper's `F = 2m`).
///
/// # Examples
///
/// ```
/// use quake_sparse::coo::Coo;
/// let mut a = Coo::new(2, 2);
/// a.push(0, 0, 2.0)?;
/// a.push(0, 1, 1.0)?;
/// a.push(1, 1, 3.0)?;
/// let k = a.to_csr();
/// let y = k.spmv_alloc(&[1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 3.0]);
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::MalformedStructure`] if `row_ptr` does not have
    /// `rows + 1` monotone entries bounded by `col_idx.len()`, if
    /// `col_idx.len() != values.len()`, or if any column index is out of
    /// range.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::MalformedStructure(
                "row_ptr length must be rows + 1",
            ));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::MalformedStructure(
                "col_idx and values lengths differ",
            ));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&col_idx.len()) {
            return Err(SparseError::MalformedStructure(
                "row_ptr must start at 0 and end at nnz",
            ));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedStructure(
                "row_ptr must be non-decreasing",
            ));
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(SparseError::MalformedStructure("column index out of range"));
        }
        Ok(Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (`m` in the paper; the local SMVP performs
    /// `F = 2m` flops).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Flops performed by one SMVP with this matrix: `2·nnz`
    /// (one multiply and one add per stored entry).
    pub fn smvp_flops(&self) -> u64 {
        2 * self.nnz() as u64
    }

    /// The row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array (`nnz` entries).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array (pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Returns the stored `(column, value)` pairs of row `r`, sorted by
    /// column if the matrix was built through [`crate::coo::Coo`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> RowView<'_> {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        RowView {
            cols: &self.col_idx[lo..hi],
            vals: &self.values[lo..hi],
        }
    }

    /// Value at `(r, c)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row(r)
            .pairs()
            .find_map(|(cc, v)| (cc == c).then_some(v))
            .unwrap_or(0.0)
    }

    /// Sparse matrix-vector product `y = Ax` into a caller-provided buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != cols` or
    /// `y.len() != rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                what: "x vector",
            });
        }
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
                what: "y vector",
            });
        }
        for r in 0..self.rows {
            let mut sum = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = sum;
        }
        Ok(())
    }

    /// Sparse matrix-vector product returning a freshly allocated `y`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != cols`.
    pub fn spmv_alloc(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut y = vec![0.0; self.rows];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Accumulating product `y += Ax`, used when summing subdomain
    /// contributions.
    ///
    /// # Errors
    ///
    /// Same as [`Csr::spmv`].
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                what: "x vector",
            });
        }
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
                what: "y vector",
            });
        }
        for r in 0..self.rows {
            let mut sum = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            y[r] += sum;
        }
        Ok(())
    }

    /// Transpose (also CSR).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut slot = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f64; self.nnz()];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let s = slot[c];
                col_idx[s] = r;
                values[s] = self.values[k];
                slot[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr: counts,
            col_idx,
            values,
        }
    }

    /// True if the matrix is structurally and numerically symmetric to
    /// within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr {
            return false;
        }
        // Rows of the transpose are sorted by construction; compare per-row
        // against sorted copies of our rows.
        for r in 0..self.rows {
            let mut mine: Vec<(usize, f64)> = self.row(r).pairs().collect();
            mine.sort_unstable_by_key(|&(c, _)| c);
            let theirs: Vec<(usize, f64)> = t.row(r).pairs().collect();
            if mine.len() != theirs.len() {
                return false;
            }
            for (&(c1, v1), &(c2, v2)) in mine.iter().zip(theirs.iter()) {
                if c1 != c2 || (v1 - v2).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Applies a symmetric permutation `B = P A Pᵀ`, i.e. `B[p[i], p[j]] = A[i, j]`
    /// where `perm[old] = new`. Used by RCM reordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `perm.len() != rows`, or
    /// [`SparseError::MalformedStructure`] if `perm` is not a permutation.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<Csr, SparseError> {
        assert_eq!(
            self.rows, self.cols,
            "symmetric permutation requires a square matrix"
        );
        if perm.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                found: perm.len(),
                what: "permutation",
            });
        }
        let mut seen = vec![false; self.rows];
        for &p in perm {
            if p >= self.rows || seen[p] {
                return Err(SparseError::MalformedStructure("perm is not a permutation"));
            }
            seen[p] = true;
        }
        let mut inv = vec![0usize; self.rows];
        for (old, &new) in perm.iter().enumerate() {
            inv[new] = old;
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_r in 0..self.rows {
            let old_r = inv[new_r];
            scratch.clear();
            scratch.extend(self.row(old_r).pairs().map(|(c, v)| (perm[c], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw_parts(self.rows, self.cols, row_ptr, col_idx, values)
    }

    /// The structural bandwidth: `max_i max_{j in row i} |i - j|`.
    /// Zero for an empty or diagonal matrix.
    pub fn bandwidth(&self) -> usize {
        let mut bw = 0usize;
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                bw = bw.max(self.col_idx[k].abs_diff(r));
            }
        }
        bw
    }

    /// Average number of stored entries per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }
}

/// A borrowed view of one CSR row's `(column, value)` pairs.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    cols: &'a [usize],
    vals: &'a [f64],
}

impl<'a> RowView<'a> {
    /// Number of stored entries in this row.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True if the row stores no entries.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The column indices of this row.
    pub fn cols(&self) -> &'a [usize] {
        self.cols
    }

    /// The values of this row.
    pub fn vals(&self) -> &'a [f64] {
        self.vals
    }
}

impl<'a> RowView<'a> {
    /// Iterates owned `(column, value)` pairs without allocation.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, f64)> + 'a {
        self.cols.iter().copied().zip(self.vals.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small() -> Csr {
        // [ 2 1 0 ]
        // [ 0 3 4 ]
        // [ 5 0 6 ]
        let mut a = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (1, 2, 4.0),
            (2, 0, 5.0),
            (2, 2, 6.0),
        ] {
            a.push(r, c, v).unwrap();
        }
        a.to_csr()
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let y = a.spmv_alloc(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![4.0, 18.0, 23.0]);
    }

    #[test]
    fn spmv_dim_mismatch_errors() {
        let a = small();
        assert!(a.spmv_alloc(&[1.0, 2.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(a.spmv(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = small();
        let mut y = vec![1.0, 1.0, 1.0];
        a.spmv_add(&[1.0, 2.0, 3.0], &mut y).unwrap();
        assert_eq!(y, vec![5.0, 19.0, 24.0]);
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = Csr::identity(4);
        let x = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(i.spmv_alloc(&x).unwrap(), x);
        assert_eq!(i.smvp_flops(), 8);
    }

    #[test]
    fn transpose_round_trip() {
        let a = small();
        let att = a.transpose().transpose();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(a.get(r, c), att.get(r, c));
            }
        }
    }

    #[test]
    fn transpose_entries() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.get(0, 2), 5.0);
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(2, 1), 4.0);
    }

    #[test]
    fn symmetry_checks() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0).unwrap();
        a.push(0, 1, 2.0).unwrap();
        a.push(1, 0, 2.0).unwrap();
        a.push(1, 1, 3.0).unwrap();
        assert!(a.to_csr().is_symmetric(0.0));
        assert!(!small().is_symmetric(1e-9));
    }

    #[test]
    fn permute_symmetric_reverses() {
        let a = small();
        // perm[old] = new; reverse ordering.
        let b = a.permute_symmetric(&[2, 1, 0]).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(b.get(2 - r, 2 - c), a.get(r, c));
            }
        }
    }

    #[test]
    fn permute_rejects_non_permutation() {
        let a = small();
        assert!(a.permute_symmetric(&[0, 0, 1]).is_err());
        assert!(a.permute_symmetric(&[0, 1]).is_err());
        assert!(a.permute_symmetric(&[0, 1, 5]).is_err());
    }

    #[test]
    fn bandwidth_measures_extent() {
        assert_eq!(Csr::identity(5).bandwidth(), 0);
        assert_eq!(small().bandwidth(), 2);
    }

    #[test]
    fn row_view_accessors() {
        let a = small();
        let r = a.row(1);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.cols(), &[1, 2]);
        assert_eq!(r.vals(), &[3.0, 4.0]);
        let pairs: Vec<(usize, f64)> = r.pairs().collect();
        assert_eq!(pairs, vec![(1, 3.0), (2, 4.0)]);
    }

    #[test]
    fn avg_row_nnz() {
        assert_eq!(small().avg_row_nnz(), 2.0);
        assert_eq!(Coo::new(0, 0).to_csr().avg_row_nnz(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let _ = small().row(3);
    }
}
