//! Small dense linear-algebra helpers: 3-vectors and 3×3 matrices.
//!
//! The Quake stiffness matrices are built from 3×3 blocks (one per mesh-edge,
//! coupling the three displacement degrees of freedom of a node pair), so a
//! tiny fixed-size dense kernel is all the dense algebra the system needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A 3-vector of `f64`, used for node coordinates and per-node displacement.
///
/// # Examples
///
/// ```
/// use quake_sparse::dense::Vec3;
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a.dot(b), 32.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (cheaper than [`Vec3::norm`]).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Scales the vector by `s`.
    #[inline]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Returns the component with index `i` (0 → x, 1 → y, 2 → z).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn component(self, i: usize) -> f64 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 component index {i} out of range"),
        }
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A dense 3×3 matrix stored row-major, used as the block type of the
/// block-CSR stiffness matrix.
///
/// # Examples
///
/// ```
/// use quake_sparse::dense::{Mat3, Vec3};
/// let m = Mat3::identity();
/// let v = Vec3::new(1.0, 2.0, 3.0);
/// assert_eq!(m.mul_vec(v), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries: `m[r][c]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(m: [[f64; 3]; 3]) -> Self {
        Mat3 { m }
    }

    /// The identity matrix.
    #[inline]
    pub fn identity() -> Self {
        let mut m = [[0.0; 3]; 3];
        m[0][0] = 1.0;
        m[1][1] = 1.0;
        m[2][2] = 1.0;
        Mat3 { m }
    }

    /// A diagonal matrix with diagonal `d`.
    #[inline]
    pub fn diag(d: Vec3) -> Self {
        let mut m = [[0.0; 3]; 3];
        m[0][0] = d.x;
        m[1][1] = d.y;
        m[2][2] = d.z;
        Mat3 { m }
    }

    /// The outer product `a bᵀ`.
    #[inline]
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        let a = a.to_array();
        let b = b.to_array();
        let mut m = [[0.0; 3]; 3];
        for (r, &ar) in a.iter().enumerate() {
            for (c, &bc) in b.iter().enumerate() {
                m[r][c] = ar * bc;
            }
        }
        Mat3 { m }
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// The block as a flat row-major 9-tile, `[m00, m01, m02, m10, …]` —
    /// the value layout the register-blocked SMVP microkernel indexes.
    #[inline]
    pub fn as_flat(&self) -> &[f64; 9] {
        // SAFETY: `[[f64; 3]; 3]` and `[f64; 9]` have identical size and
        // alignment, and nested arrays are guaranteed contiguous with no
        // padding, so the reinterpretation is layout-exact.
        unsafe { &*(self.m.as_ptr() as *const [f64; 9]) }
    }

    /// Matrix-matrix product `self · rhs`.
    pub fn mul_mat(&self, rhs: &Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (r, out_row) in out.iter_mut().enumerate() {
            for (c, out_rc) in out_row.iter_mut().enumerate() {
                let mut s = 0.0;
                for k in 0..3 {
                    s += self.m[r][k] * rhs.m[k][c];
                }
                *out_rc = s;
            }
        }
        Mat3 { m: out }
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let mut t = [[0.0; 3]; 3];
        for (r, row) in self.m.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                t[c][r] = v;
            }
        }
        Mat3 { m: t }
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse, or `None` if the matrix is singular
    /// (|det| ≤ `1e-300`, i.e. numerically zero).
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() <= 1e-300 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / d;
        let mut inv = [[0.0; 3]; 3];
        inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
        inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
        inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
        inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
        inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        Some(Mat3 { m: inv })
    }

    /// Trace (sum of diagonal entries).
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m
            .iter()
            .flat_map(|row| row.iter())
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// True if `self` is symmetric to within absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (self.m[0][1] - self.m[1][0]).abs() <= tol
            && (self.m[0][2] - self.m[2][0]).abs() <= tol
            && (self.m[1][2] - self.m[2][1]).abs() <= tol
    }

    /// Eigenvalues and eigenvectors of a **symmetric** 3×3 matrix via cyclic
    /// Jacobi rotations. Returns `(eigenvalues, eigenvectors)` where
    /// `eigenvectors[k]` is the unit eigenvector for `eigenvalues[k]`,
    /// sorted in descending eigenvalue order.
    ///
    /// Used by the inertial partitioner to find the principal axis of a point
    /// cloud's covariance matrix.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the matrix is symmetric.
    pub fn symmetric_eigen(&self) -> ([f64; 3], [Vec3; 3]) {
        debug_assert!(self.is_symmetric(1e-9 * (1.0 + self.frobenius_norm())));
        let mut a = self.m;
        // v accumulates the rotations; starts as identity.
        let mut v = Mat3::identity().m;
        for _sweep in 0..64 {
            // Off-diagonal magnitude.
            let off = (a[0][1] * a[0][1] + a[0][2] * a[0][2] + a[1][2] * a[1][2]).sqrt();
            if off < 1e-14 * (1.0 + self.frobenius_norm()) {
                break;
            }
            for &(p, q) in &[(0usize, 1usize), (0, 2), (1, 2)] {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p,q,θ)ᵀ A J(p,q,θ).
                for k in 0..3 {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..3 {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for vk in v.iter_mut() {
                    let vkp = vk[p];
                    let vkq = vk[q];
                    vk[p] = c * vkp - s * vkq;
                    vk[q] = s * vkp + c * vkq;
                }
            }
        }
        let mut pairs: Vec<(f64, Vec3)> = (0..3)
            .map(|k| (a[k][k], Vec3::new(v[0][k], v[1][k], v[2][k])))
            .collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap());
        (
            [pairs[0].0, pairs[1].0, pairs[2].0],
            [pairs[0].1, pairs[1].1, pairs[2].1],
        )
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::ZERO
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = self.m;
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v += rhs.m[r][c];
            }
        }
        Mat3 { m: out }
    }
}

impl AddAssign for Mat3 {
    fn add_assign(&mut self, rhs: Mat3) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f64) -> Mat3 {
        let mut out = self.m;
        for row in out.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        Mat3 { m: out }
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.m[r][c]
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            writeln!(f, "[{:>12.5e} {:>12.5e} {:>12.5e}]", row[0], row[1], row[2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn vec3_basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_close(a.norm(), 14.0_f64.sqrt(), 1e-15);
        assert_eq!(a.norm_squared(), 14.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        let c = a.cross(b);
        assert_close(c.dot(a), 0.0, 1e-12);
        assert_close(c.dot(b), 0.0, 1e-12);
    }

    #[test]
    fn vec3_min_max_component() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
        assert_eq!(a.component(0), 1.0);
        assert_eq!(a.component(2), -2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vec3_component_out_of_range_panics() {
        let _ = Vec3::ZERO.component(3);
    }

    #[test]
    fn vec3_array_round_trip() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let arr: [f64; 3] = a.into();
        assert_eq!(Vec3::from(arr), a);
    }

    #[test]
    fn mat3_identity_times_vec() {
        let v = Vec3::new(3.0, -1.0, 0.5);
        assert_eq!(Mat3::identity().mul_vec(v), v);
    }

    #[test]
    fn mat3_mul_mat_matches_manual() {
        let a = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]]);
        let b = Mat3::new([[1.0, 0.0, 2.0], [0.0, 1.0, 1.0], [2.0, 1.0, 0.0]]);
        let c = a.mul_mat(&b);
        // First row by hand: [1+0+6, 0+2+3, 2+2+0]
        assert_eq!(c.m[0], [7.0, 5.0, 4.0]);
    }

    #[test]
    fn mat3_inverse_round_trip() {
        let a = Mat3::new([[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]]);
        let inv = a.inverse().expect("invertible");
        let prod = a.mul_mat(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert_close(prod.m[r][c], expect, 1e-12);
            }
        }
    }

    #[test]
    fn mat3_singular_inverse_is_none() {
        let a = Mat3::new([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn mat3_det_and_trace() {
        let a = Mat3::diag(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(a.det(), 24.0);
        assert_eq!(a.trace(), 9.0);
    }

    #[test]
    fn mat3_outer_product() {
        let m = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.m[1][2], 12.0);
        assert_eq!(m.m[2][0], 12.0);
        assert_eq!(m.m[0][0], 4.0);
    }

    #[test]
    fn mat3_transpose_involution() {
        let a = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let a = Mat3::diag(Vec3::new(1.0, 5.0, 3.0));
        let (vals, vecs) = a.symmetric_eigen();
        assert_close(vals[0], 5.0, 1e-12);
        assert_close(vals[1], 3.0, 1e-12);
        assert_close(vals[2], 1.0, 1e-12);
        // Leading eigenvector should be ±e_y.
        assert_close(vecs[0].y.abs(), 1.0, 1e-10);
    }

    #[test]
    fn symmetric_eigen_reconstructs_matrix() {
        let a = Mat3::new([[4.0, 1.0, 0.5], [1.0, 3.0, -1.0], [0.5, -1.0, 2.0]]);
        let (vals, vecs) = a.symmetric_eigen();
        // Reconstruct A = Σ λ_k v_k v_kᵀ.
        let mut recon = Mat3::ZERO;
        for k in 0..3 {
            recon += Mat3::outer(vecs[k], vecs[k]) * vals[k];
        }
        for r in 0..3 {
            for c in 0..3 {
                assert_close(recon.m[r][c], a.m[r][c], 1e-9);
            }
        }
    }

    #[test]
    fn symmetric_eigen_vectors_orthonormal() {
        let a = Mat3::new([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]]);
        let (_, vecs) = a.symmetric_eigen();
        for i in 0..3 {
            assert_close(vecs[i].norm(), 1.0, 1e-10);
            for j in (i + 1)..3 {
                assert_close(vecs[i].dot(vecs[j]), 0.0, 1e-10);
            }
        }
    }

    #[test]
    fn mat3_index_ops() {
        let mut a = Mat3::ZERO;
        a[(1, 2)] = 7.0;
        assert_eq!(a[(1, 2)], 7.0);
        assert_eq!(a[(2, 1)], 0.0);
    }

    #[test]
    fn mat3_is_symmetric() {
        assert!(Mat3::identity().is_symmetric(0.0));
        let a = Mat3::new([[1.0, 2.0, 0.0], [2.1, 1.0, 0.0], [0.0, 0.0, 1.0]]);
        assert!(!a.is_symmetric(1e-3));
        assert!(a.is_symmetric(0.2));
    }
}
