//! Error type for sparse-matrix construction and operations.

use std::error::Error;
use std::fmt;

/// Errors produced by sparse-matrix constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Operand shapes are incompatible, e.g. a matrix-vector product where
    /// the vector length does not equal the matrix column count.
    DimensionMismatch {
        /// What the operation expected (e.g. a length or shape).
        expected: usize,
        /// What it was given.
        found: usize,
        /// Short description of the operand that mismatched.
        what: &'static str,
    },
    /// An explicit entry referenced a row or column outside the matrix.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// A CSR structure array is malformed (row pointers not monotonically
    /// non-decreasing, or lengths inconsistent).
    MalformedStructure(&'static str),
    /// An operation requiring symmetry was applied to a non-symmetric matrix.
    NotSymmetric,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch {
                expected,
                found,
                what,
            } => {
                write!(
                    f,
                    "dimension mismatch for {what}: expected {expected}, found {found}"
                )
            }
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => {
                write!(
                    f,
                    "entry ({row}, {col}) out of bounds for {rows}x{cols} matrix"
                )
            }
            SparseError::MalformedStructure(msg) => {
                write!(f, "malformed sparse structure: {msg}")
            }
            SparseError::NotSymmetric => write!(f, "matrix is not symmetric"),
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SparseError::DimensionMismatch {
            expected: 3,
            found: 4,
            what: "x vector",
        };
        let s = e.to_string();
        assert!(s.contains("expected 3"));
        assert!(s.contains("found 4"));
        let e = SparseError::IndexOutOfBounds {
            row: 9,
            col: 1,
            rows: 3,
            cols: 3,
        };
        assert!(e.to_string().contains("(9, 1)"));
        assert!(SparseError::NotSymmetric.to_string().contains("symmetric"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
