//! Block CSR storage with 3×3 blocks, matching the Quake stiffness matrix.
//!
//! The paper describes `K` as a sparse `3n × 3n` matrix containing a 3×3
//! submatrix for every mesh edge (and self-edge): "K can be likened to an
//! adjacency matrix of the nodes of the mesh". Storing whole blocks halves
//! index overhead relative to scalar CSR and matches how Archimedes-generated
//! codes traverse the matrix.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::{Mat3, Vec3};
use crate::error::SparseError;

/// A sparse matrix of 3×3 blocks in block-compressed-sparse-row format.
///
/// Block row `i` holds one [`Mat3`] per node `j` adjacent to node `i`
/// (including `j == i`). The scalar dimension is `3·n × 3·n` for `n` block
/// rows.
///
/// # Examples
///
/// ```
/// use quake_sparse::bcsr::Bcsr3Builder;
/// use quake_sparse::dense::{Mat3, Vec3};
/// let mut b = Bcsr3Builder::new(2);
/// b.add_block(0, 0, Mat3::identity());
/// b.add_block(1, 1, Mat3::identity() * 2.0);
/// let k = b.build();
/// let y = k.spmv_alloc(&[Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)])?;
/// assert_eq!(y[1], Vec3::new(0.0, 2.0, 0.0));
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr3 {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    blocks: Vec<Mat3>,
}

impl Bcsr3 {
    /// Number of block rows (mesh nodes).
    pub fn block_rows(&self) -> usize {
        self.n
    }

    /// Scalar dimension `3·n`.
    pub fn scalar_dim(&self) -> usize {
        3 * self.n
    }

    /// Number of stored 3×3 blocks.
    pub fn block_nnz(&self) -> usize {
        self.blocks.len()
    }

    /// Number of stored scalar entries (`9 ×` blocks).
    pub fn scalar_nnz(&self) -> usize {
        9 * self.blocks.len()
    }

    /// Flops performed by one blocked SMVP: `2 × 9 ×` blocks (a multiply and
    /// an add per stored scalar), the paper's `F = 2m`.
    pub fn smvp_flops(&self) -> u64 {
        2 * self.scalar_nnz() as u64
    }

    /// The block-row pointer array (`n + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The block column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored blocks, row-major by block row.
    pub fn blocks(&self) -> &[Mat3] {
        &self.blocks
    }

    /// The block at `(i, j)` or `None` if not stored.
    pub fn block(&self, i: usize, j: usize) -> Option<&Mat3> {
        if i >= self.n {
            return None;
        }
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .position(|&c| c == j)
            .map(|k| &self.blocks[lo + k])
    }

    /// Blocked SMVP `y = Kx` over per-node 3-vectors, into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x` or `y` does not hold
    /// one [`Vec3`] per block row.
    pub fn spmv(&self, x: &[Vec3], y: &mut [Vec3]) -> Result<(), SparseError> {
        if x.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: x.len(),
                what: "x block vector",
            });
        }
        if y.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: y.len(),
                what: "y block vector",
            });
        }
        for i in 0..self.n {
            let mut acc = Vec3::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.blocks[k].mul_vec(x[self.col_idx[k]]);
            }
            y[i] = acc;
        }
        Ok(())
    }

    /// Blocked SMVP returning a freshly allocated result.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len()` is not the
    /// number of block rows.
    pub fn spmv_alloc(&self, x: &[Vec3]) -> Result<Vec<Vec3>, SparseError> {
        let mut y = vec![Vec3::ZERO; self.n];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Blocked SMVP over a flat scalar vector of length `3·n`
    /// (`x = [x0x, x0y, x0z, x1x, …]`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on length mismatch.
    pub fn spmv_flat(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != 3 * self.n {
            return Err(SparseError::DimensionMismatch {
                expected: 3 * self.n,
                found: x.len(),
                what: "flat x vector",
            });
        }
        if y.len() != 3 * self.n {
            return Err(SparseError::DimensionMismatch {
                expected: 3 * self.n,
                found: y.len(),
                what: "flat y vector",
            });
        }
        for i in 0..self.n {
            let mut acc = Vec3::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let xv = Vec3::new(x[3 * j], x[3 * j + 1], x[3 * j + 2]);
                acc += self.blocks[k].mul_vec(xv);
            }
            y[3 * i] = acc.x;
            y[3 * i + 1] = acc.y;
            y[3 * i + 2] = acc.z;
        }
        Ok(())
    }

    /// Expands to a scalar CSR matrix of dimension `3n × 3n`.
    pub fn to_scalar_csr(&self) -> Csr {
        let mut coo = Coo::with_capacity(3 * self.n, 3 * self.n, self.scalar_nnz());
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let b = &self.blocks[k];
                for r in 0..3 {
                    for c in 0..3 {
                        coo.push(3 * i + r, 3 * j + c, b.m[r][c])
                            .expect("indices in range by construction");
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// True if the block structure and values are symmetric to within `tol`
    /// (i.e. block `(i, j)` equals the transpose of block `(j, i)`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                match self.block(j, i) {
                    None => return false,
                    Some(bj) => {
                        let bt = bj.transpose();
                        for r in 0..3 {
                            for c in 0..3 {
                                if (self.blocks[k].m[r][c] - bt.m[r][c]).abs() > tol {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Extracts the block-adjacency structure as (row_ptr, col_idx) without
    /// values, used to derive per-node degree statistics (the paper's
    /// "average of 13 neighbors" ⇒ 42 nonzeros per scalar row).
    pub fn adjacency(&self) -> (&[usize], &[usize]) {
        (&self.row_ptr, &self.col_idx)
    }

    /// Applies a symmetric block permutation `B = P A Pᵀ`, i.e.
    /// `B[perm[i], perm[j]] = A[i, j]` where `perm[old] = new`. Blocks are
    /// relabeled, not transposed. Used by RCM reordering of the executed
    /// SMVP path (the block analogue of [`Csr::permute_symmetric`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `perm.len()` is not the
    /// block-row count, or [`SparseError::MalformedStructure`] if `perm` is
    /// not a permutation.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<Bcsr3, SparseError> {
        let inv = self.validated_inverse(perm)?;
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.block_nnz());
        let mut blocks = Vec::with_capacity(self.block_nnz());
        let mut scratch: Vec<(usize, Mat3)> = Vec::new();
        for new_r in 0..self.n {
            let old_r = inv[new_r];
            scratch.clear();
            for k in self.row_ptr[old_r]..self.row_ptr[old_r + 1] {
                scratch.push((perm[self.col_idx[k]], self.blocks[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, b) in &scratch {
                col_idx.push(c);
                blocks.push(b);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Bcsr3 {
            n: self.n,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    /// Like [`Bcsr3::permute_symmetric`], but *order-preserving*: each
    /// relabeled row keeps its entries in the original traversal order
    /// instead of re-sorting them by the new column label. Because
    /// [`Bcsr3::spmv`] accumulates a row in storage order, re-sorting
    /// changes the floating-point summation order; this variant relabels
    /// without touching it, so `P A Pᵀ` multiplied against a permuted `x`
    /// is **bitwise**-identical to `A x` (modulo the row relabeling). The
    /// latency-hiding executor uses it for its boundary-first reordering,
    /// which must not perturb results relative to the barrier path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Bcsr3::permute_symmetric`].
    pub fn permute_symmetric_stable(&self, perm: &[usize]) -> Result<Bcsr3, SparseError> {
        let inv = self.validated_inverse(perm)?;
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.block_nnz());
        let mut blocks = Vec::with_capacity(self.block_nnz());
        for new_r in 0..self.n {
            let old_r = inv[new_r];
            for k in self.row_ptr[old_r]..self.row_ptr[old_r + 1] {
                col_idx.push(perm[self.col_idx[k]]);
                blocks.push(self.blocks[k]);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Bcsr3 {
            n: self.n,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    /// Validates `perm` (`perm[old] = new`) and returns its inverse.
    fn validated_inverse(&self, perm: &[usize]) -> Result<Vec<usize>, SparseError> {
        if perm.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: perm.len(),
                what: "permutation",
            });
        }
        let mut seen = vec![false; self.n];
        for &p in perm {
            if p >= self.n || seen[p] {
                return Err(SparseError::MalformedStructure("perm is not a permutation"));
            }
            seen[p] = true;
        }
        let mut inv = vec![0usize; self.n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new] = old;
        }
        Ok(inv)
    }

    /// A borrowed view of the contiguous block-row range `rows` — the unit
    /// the latency-hiding executor schedules (boundary rows first, then
    /// interior rows, each as one range).
    ///
    /// # Panics
    ///
    /// Panics if `rows` extends past the block-row count.
    pub fn row_range(&self, rows: std::ops::Range<usize>) -> Bcsr3Rows<'_> {
        assert!(
            rows.start <= rows.end && rows.end <= self.n,
            "row range {rows:?} out of bounds for {} block rows",
            self.n
        );
        Bcsr3Rows { matrix: self, rows }
    }

    /// Average block-row degree including the self block (the paper's
    /// "14 × 3 = 42 nonzeros per row" corresponds to degree 14).
    pub fn avg_block_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.block_nnz() as f64 / self.n as f64
        }
    }
}

/// A contiguous block-row slice of a [`Bcsr3`], created by
/// [`Bcsr3::row_range`].
///
/// The view multiplies its rows with the exact arithmetic of
/// [`Bcsr3::spmv`] (same per-row accumulation order), so covering the
/// matrix with disjoint ranges and multiplying each yields a result
/// bitwise-identical to one full `spmv` — the property the overlapped
/// executor's split schedule relies on.
#[derive(Debug, Clone)]
pub struct Bcsr3Rows<'a> {
    matrix: &'a Bcsr3,
    rows: std::ops::Range<usize>,
}

impl Bcsr3Rows<'_> {
    /// The block-row range this view covers.
    pub fn rows(&self) -> std::ops::Range<usize> {
        self.rows.clone()
    }

    /// Blocks stored in the covered rows.
    pub fn block_nnz(&self) -> usize {
        self.matrix.row_ptr[self.rows.end] - self.matrix.row_ptr[self.rows.start]
    }

    /// Flops one SMVP over this range executes (18 per traversed block).
    pub fn smvp_flops(&self) -> u64 {
        2 * 9 * self.block_nnz() as u64
    }

    /// SMVP restricted to the covered rows: writes `y[i]` for `i` in the
    /// range, leaves every other slot untouched. `x` and `y` span the full
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x` or `y` does not
    /// hold one [`Vec3`] per block row of the underlying matrix.
    pub fn spmv_into(&self, x: &[Vec3], y: &mut [Vec3]) -> Result<(), SparseError> {
        let m = self.matrix;
        if x.len() != m.n {
            return Err(SparseError::DimensionMismatch {
                expected: m.n,
                found: x.len(),
                what: "x block vector",
            });
        }
        if y.len() != m.n {
            return Err(SparseError::DimensionMismatch {
                expected: m.n,
                found: y.len(),
                what: "y block vector",
            });
        }
        for i in self.rows.clone() {
            let mut acc = Vec3::ZERO;
            for k in m.row_ptr[i]..m.row_ptr[i + 1] {
                acc += m.blocks[k].mul_vec(x[m.col_idx[k]]);
            }
            y[i] = acc;
        }
        Ok(())
    }
}

/// Incremental builder for [`Bcsr3`], summing duplicate block contributions
/// (finite-element assembly semantics).
#[derive(Debug, Clone)]
pub struct Bcsr3Builder {
    n: usize,
    // Per-row map from block column to accumulated block, kept sorted.
    rows: Vec<Vec<(usize, Mat3)>>,
}

impl Bcsr3Builder {
    /// Creates a builder for an `n × n` block matrix.
    pub fn new(n: usize) -> Self {
        Bcsr3Builder {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.n
    }

    /// Accumulates `K[i, j] += b`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add_block(&mut self, i: usize, j: usize, b: Mat3) {
        assert!(
            i < self.n && j < self.n,
            "block ({i}, {j}) out of range for n = {}",
            self.n
        );
        let row = &mut self.rows[i];
        match row.binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => row[pos].1 += b,
            Err(pos) => row.insert(pos, (j, b)),
        }
    }

    /// Finalizes into an immutable [`Bcsr3`].
    pub fn build(self) -> Bcsr3 {
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0usize);
        let total: usize = self.rows.iter().map(|r| r.len()).sum();
        let mut col_idx = Vec::with_capacity(total);
        let mut blocks = Vec::with_capacity(total);
        for row in &self.rows {
            for &(c, b) in row {
                col_idx.push(c);
                blocks.push(b);
            }
            row_ptr.push(col_idx.len());
        }
        Bcsr3 {
            n: self.n,
            row_ptr,
            col_idx,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Bcsr3 {
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 0, Mat3::identity() * 2.0);
        b.add_block(0, 1, Mat3::identity());
        b.add_block(1, 0, Mat3::identity());
        b.add_block(1, 1, Mat3::identity() * 3.0);
        b.build()
    }

    #[test]
    fn builder_sums_duplicates() {
        let mut b = Bcsr3Builder::new(1);
        b.add_block(0, 0, Mat3::identity());
        b.add_block(0, 0, Mat3::identity() * 4.0);
        let m = b.build();
        assert_eq!(m.block_nnz(), 1);
        assert_eq!(m.block(0, 0).unwrap().m[2][2], 5.0);
    }

    #[test]
    fn dims_and_counts() {
        let m = two_node();
        assert_eq!(m.block_rows(), 2);
        assert_eq!(m.scalar_dim(), 6);
        assert_eq!(m.block_nnz(), 4);
        assert_eq!(m.scalar_nnz(), 36);
        assert_eq!(m.smvp_flops(), 72);
        assert_eq!(m.avg_block_degree(), 2.0);
    }

    #[test]
    fn spmv_matches_manual() {
        let m = two_node();
        let x = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)];
        let y = m.spmv_alloc(&x).unwrap();
        assert_eq!(y[0], Vec3::new(2.0, 1.0, 0.0));
        assert_eq!(y[1], Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn spmv_flat_matches_block() {
        let m = two_node();
        let xb = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 0.0)];
        let yb = m.spmv_alloc(&xb).unwrap();
        let xf = [1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        let mut yf = [0.0; 6];
        m.spmv_flat(&xf, &mut yf).unwrap();
        assert_eq!(yf[0..3], [yb[0].x, yb[0].y, yb[0].z]);
        assert_eq!(yf[3..6], [yb[1].x, yb[1].y, yb[1].z]);
    }

    #[test]
    fn scalar_csr_expansion_agrees() {
        let m = two_node();
        let s = m.to_scalar_csr();
        assert_eq!(s.rows(), 6);
        assert_eq!(s.nnz(), 36);
        let xf = [1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        let ys = s.spmv_alloc(&xf).unwrap();
        let mut yf = [0.0; 6];
        m.spmv_flat(&xf, &mut yf).unwrap();
        for (a, b) in ys.iter().zip(yf.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetry_detection() {
        assert!(two_node().is_symmetric(0.0));
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 1, Mat3::identity());
        // No (1, 0) block: structurally asymmetric.
        assert!(!b.build().is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_values_detected() {
        let mut b = Bcsr3Builder::new(2);
        let mut m01 = Mat3::identity();
        m01.m[0][1] = 5.0;
        b.add_block(0, 1, m01);
        b.add_block(1, 0, Mat3::identity()); // not m01ᵀ
        b.add_block(0, 0, Mat3::identity());
        b.add_block(1, 1, Mat3::identity());
        assert!(!b.build().is_symmetric(1e-9));
    }

    #[test]
    fn spmv_dim_mismatch() {
        let m = two_node();
        assert!(m.spmv_alloc(&[Vec3::ZERO]).is_err());
        let mut y = vec![Vec3::ZERO; 3];
        assert!(m.spmv(&[Vec3::ZERO; 2], &mut y).is_err());
        let mut yf = vec![0.0; 5];
        assert!(m.spmv_flat(&[0.0; 6], &mut yf).is_err());
        assert!(m.spmv_flat(&[0.0; 4], &mut [0.0; 6]).is_err());
    }

    #[test]
    fn block_lookup() {
        let m = two_node();
        assert!(m.block(0, 1).is_some());
        assert!(m.block(5, 0).is_none());
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 0, Mat3::identity());
        assert!(b.build().block(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = Bcsr3Builder::new(1);
        b.add_block(0, 1, Mat3::identity());
    }

    #[test]
    fn permute_symmetric_relabels_blocks() {
        let m = two_node();
        // Swap the two block rows/cols.
        let pm = m.permute_symmetric(&[1, 0]).unwrap();
        assert_eq!(pm.block(0, 0), m.block(1, 1));
        assert_eq!(pm.block(1, 1), m.block(0, 0));
        assert_eq!(pm.block(0, 1), m.block(1, 0));
        // SMVP commutes with the permutation: (PAPᵀ)(Px) = P(Ax).
        let x = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 0.25)];
        let y = m.spmv_alloc(&x).unwrap();
        let px = [x[1], x[0]];
        let py = pm.spmv_alloc(&px).unwrap();
        assert_eq!(py[0], y[1]);
        assert_eq!(py[1], y[0]);
    }

    #[test]
    fn permute_symmetric_identity_is_noop() {
        let m = two_node();
        assert_eq!(m.permute_symmetric(&[0, 1]).unwrap(), m);
    }

    #[test]
    fn permute_symmetric_rejects_bad_perms() {
        let m = two_node();
        assert!(m.permute_symmetric(&[0]).is_err());
        assert!(m.permute_symmetric(&[0, 0]).is_err());
        assert!(m.permute_symmetric(&[0, 2]).is_err());
    }

    /// A ring of `n` nodes with deliberately non-commutative block values,
    /// so any change in summation order shows up in the low bits.
    fn ring(n: usize) -> Bcsr3 {
        let mut b = Bcsr3Builder::new(n);
        for i in 0..n {
            let f = |s: usize| 0.1 + (s as f64) * 0.7 + (s as f64).sin();
            b.add_block(
                i,
                i,
                Mat3::identity() * f(i) + Mat3::outer(Vec3::splat(0.3), Vec3::new(f(i), 1.0, -0.5)),
            );
            let j = (i + 1) % n;
            if i != j {
                b.add_block(
                    i,
                    j,
                    Mat3::outer(Vec3::new(f(i), -1.0, 2.0), Vec3::splat(f(j))),
                );
                b.add_block(
                    j,
                    i,
                    Mat3::outer(Vec3::splat(f(j)), Vec3::new(f(i), -1.0, 2.0)),
                );
            }
        }
        b.build()
    }

    fn assert_bits_eq(a: &[Vec3], b: &[Vec3], what: &str) {
        for (i, (u, v)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                (u.x.to_bits(), u.y.to_bits(), u.z.to_bits()),
                (v.x.to_bits(), v.y.to_bits(), v.z.to_bits()),
                "{what}: row {i} differs"
            );
        }
    }

    #[test]
    fn stable_permutation_is_bitwise_transparent() {
        let n = 9;
        let m = ring(n);
        // A rotation mixes every row's column order when sorted.
        let perm: Vec<usize> = (0..n).map(|i| (i + 4) % n).collect();
        let pm = m.permute_symmetric_stable(&perm).unwrap();
        let x: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(1.0 + i as f64, (i as f64).cos(), 0.25 * i as f64))
            .collect();
        let y = m.spmv_alloc(&x).unwrap();
        let mut px = vec![Vec3::ZERO; n];
        let mut expect = vec![Vec3::ZERO; n];
        for i in 0..n {
            px[perm[i]] = x[i];
            expect[perm[i]] = y[i];
        }
        let py = pm.spmv_alloc(&px).unwrap();
        // Order preservation makes the relabeled product *bitwise* equal,
        // not merely within rounding — the overlapped executor's contract.
        assert_bits_eq(&py, &expect, "stable permutation");
    }

    #[test]
    fn stable_permutation_matches_sorted_logically() {
        let n = 7;
        let m = ring(n);
        let perm: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let sorted = m.permute_symmetric(&perm).unwrap();
        let stable = m.permute_symmetric_stable(&perm).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(sorted.block(i, j), stable.block(i, j), "({i},{j})");
            }
        }
        assert_eq!(sorted.block_nnz(), stable.block_nnz());
    }

    #[test]
    fn row_range_views_cover_full_spmv_bitwise() {
        let n = 8;
        let m = ring(n);
        let x: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i as f64).sin(), 1.0 - i as f64, 0.5))
            .collect();
        let full = m.spmv_alloc(&x).unwrap();
        for split in [0, 1, 3, n] {
            let mut y = vec![Vec3::ZERO; n];
            let lo = m.row_range(0..split);
            let hi = m.row_range(split..n);
            assert_eq!(lo.block_nnz() + hi.block_nnz(), m.block_nnz());
            assert_eq!(lo.smvp_flops() + hi.smvp_flops(), m.smvp_flops());
            lo.spmv_into(&x, &mut y).unwrap();
            hi.spmv_into(&x, &mut y).unwrap();
            assert_bits_eq(&y, &full, &format!("split {split}"));
        }
        // A single-row view writes exactly its row.
        let mut y = vec![Vec3::splat(f64::NAN); n];
        m.row_range(2..3).spmv_into(&x, &mut y).unwrap();
        assert_eq!(y[2], full[2]);
        assert!(y[1].x.is_nan() && y[3].x.is_nan(), "other rows untouched");
        // An empty view is a no-op.
        m.row_range(5..5).spmv_into(&x, &mut y).unwrap();
        assert!(y[5].x.is_nan());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_range_rejects_out_of_bounds() {
        let _ = two_node().row_range(0..3);
    }
}
