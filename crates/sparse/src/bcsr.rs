//! Block CSR storage with 3×3 blocks, matching the Quake stiffness matrix.
//!
//! The paper describes `K` as a sparse `3n × 3n` matrix containing a 3×3
//! submatrix for every mesh edge (and self-edge): "K can be likened to an
//! adjacency matrix of the nodes of the mesh". Storing whole blocks halves
//! index overhead relative to scalar CSR and matches how Archimedes-generated
//! codes traverse the matrix.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::{Mat3, Vec3};
use crate::error::SparseError;

/// A sparse matrix of 3×3 blocks in block-compressed-sparse-row format.
///
/// Block row `i` holds one [`Mat3`] per node `j` adjacent to node `i`
/// (including `j == i`). The scalar dimension is `3·n × 3·n` for `n` block
/// rows.
///
/// # Examples
///
/// ```
/// use quake_sparse::bcsr::Bcsr3Builder;
/// use quake_sparse::dense::{Mat3, Vec3};
/// let mut b = Bcsr3Builder::new(2);
/// b.add_block(0, 0, Mat3::identity());
/// b.add_block(1, 1, Mat3::identity() * 2.0);
/// let k = b.build();
/// let y = k.spmv_alloc(&[Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)])?;
/// assert_eq!(y[1], Vec3::new(0.0, 2.0, 0.0));
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr3 {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    blocks: Vec<Mat3>,
}

impl Bcsr3 {
    /// Number of block rows (mesh nodes).
    pub fn block_rows(&self) -> usize {
        self.n
    }

    /// Scalar dimension `3·n`.
    pub fn scalar_dim(&self) -> usize {
        3 * self.n
    }

    /// Number of stored 3×3 blocks.
    pub fn block_nnz(&self) -> usize {
        self.blocks.len()
    }

    /// Number of stored scalar entries (`9 ×` blocks).
    pub fn scalar_nnz(&self) -> usize {
        9 * self.blocks.len()
    }

    /// Flops performed by one blocked SMVP: `2 × 9 ×` blocks (a multiply and
    /// an add per stored scalar), the paper's `F = 2m`.
    pub fn smvp_flops(&self) -> u64 {
        2 * self.scalar_nnz() as u64
    }

    /// The block-row pointer array (`n + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The block column-index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored blocks, row-major by block row.
    pub fn blocks(&self) -> &[Mat3] {
        &self.blocks
    }

    /// The block at `(i, j)` or `None` if not stored.
    pub fn block(&self, i: usize, j: usize) -> Option<&Mat3> {
        if i >= self.n {
            return None;
        }
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .position(|&c| c == j)
            .map(|k| &self.blocks[lo + k])
    }

    /// Blocked SMVP `y = Kx` over per-node 3-vectors, into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x` or `y` does not hold
    /// one [`Vec3`] per block row.
    pub fn spmv(&self, x: &[Vec3], y: &mut [Vec3]) -> Result<(), SparseError> {
        if x.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: x.len(),
                what: "x block vector",
            });
        }
        if y.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: y.len(),
                what: "y block vector",
            });
        }
        for i in 0..self.n {
            let mut acc = Vec3::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.blocks[k].mul_vec(x[self.col_idx[k]]);
            }
            y[i] = acc;
        }
        Ok(())
    }

    /// Blocked SMVP returning a freshly allocated result.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len()` is not the
    /// number of block rows.
    pub fn spmv_alloc(&self, x: &[Vec3]) -> Result<Vec<Vec3>, SparseError> {
        let mut y = vec![Vec3::ZERO; self.n];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Blocked SMVP over a flat scalar vector of length `3·n`
    /// (`x = [x0x, x0y, x0z, x1x, …]`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on length mismatch.
    pub fn spmv_flat(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != 3 * self.n {
            return Err(SparseError::DimensionMismatch {
                expected: 3 * self.n,
                found: x.len(),
                what: "flat x vector",
            });
        }
        if y.len() != 3 * self.n {
            return Err(SparseError::DimensionMismatch {
                expected: 3 * self.n,
                found: y.len(),
                what: "flat y vector",
            });
        }
        for i in 0..self.n {
            let mut acc = Vec3::ZERO;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let xv = Vec3::new(x[3 * j], x[3 * j + 1], x[3 * j + 2]);
                acc += self.blocks[k].mul_vec(xv);
            }
            y[3 * i] = acc.x;
            y[3 * i + 1] = acc.y;
            y[3 * i + 2] = acc.z;
        }
        Ok(())
    }

    /// Expands to a scalar CSR matrix of dimension `3n × 3n`.
    pub fn to_scalar_csr(&self) -> Csr {
        let mut coo = Coo::with_capacity(3 * self.n, 3 * self.n, self.scalar_nnz());
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let b = &self.blocks[k];
                for r in 0..3 {
                    for c in 0..3 {
                        coo.push(3 * i + r, 3 * j + c, b.m[r][c])
                            .expect("indices in range by construction");
                    }
                }
            }
        }
        coo.to_csr()
    }

    /// True if the block structure and values are symmetric to within `tol`
    /// (i.e. block `(i, j)` equals the transpose of block `(j, i)`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                match self.block(j, i) {
                    None => return false,
                    Some(bj) => {
                        let bt = bj.transpose();
                        for r in 0..3 {
                            for c in 0..3 {
                                if (self.blocks[k].m[r][c] - bt.m[r][c]).abs() > tol {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Extracts the block-adjacency structure as (row_ptr, col_idx) without
    /// values, used to derive per-node degree statistics (the paper's
    /// "average of 13 neighbors" ⇒ 42 nonzeros per scalar row).
    pub fn adjacency(&self) -> (&[usize], &[usize]) {
        (&self.row_ptr, &self.col_idx)
    }

    /// Applies a symmetric block permutation `B = P A Pᵀ`, i.e.
    /// `B[perm[i], perm[j]] = A[i, j]` where `perm[old] = new`. Blocks are
    /// relabeled, not transposed. Used by RCM reordering of the executed
    /// SMVP path (the block analogue of [`Csr::permute_symmetric`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `perm.len()` is not the
    /// block-row count, or [`SparseError::MalformedStructure`] if `perm` is
    /// not a permutation.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<Bcsr3, SparseError> {
        if perm.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: perm.len(),
                what: "permutation",
            });
        }
        let mut seen = vec![false; self.n];
        for &p in perm {
            if p >= self.n || seen[p] {
                return Err(SparseError::MalformedStructure("perm is not a permutation"));
            }
            seen[p] = true;
        }
        let mut inv = vec![0usize; self.n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new] = old;
        }
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.block_nnz());
        let mut blocks = Vec::with_capacity(self.block_nnz());
        let mut scratch: Vec<(usize, Mat3)> = Vec::new();
        for new_r in 0..self.n {
            let old_r = inv[new_r];
            scratch.clear();
            for k in self.row_ptr[old_r]..self.row_ptr[old_r + 1] {
                scratch.push((perm[self.col_idx[k]], self.blocks[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, b) in &scratch {
                col_idx.push(c);
                blocks.push(b);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Bcsr3 {
            n: self.n,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    /// Average block-row degree including the self block (the paper's
    /// "14 × 3 = 42 nonzeros per row" corresponds to degree 14).
    pub fn avg_block_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.block_nnz() as f64 / self.n as f64
        }
    }
}

/// Incremental builder for [`Bcsr3`], summing duplicate block contributions
/// (finite-element assembly semantics).
#[derive(Debug, Clone)]
pub struct Bcsr3Builder {
    n: usize,
    // Per-row map from block column to accumulated block, kept sorted.
    rows: Vec<Vec<(usize, Mat3)>>,
}

impl Bcsr3Builder {
    /// Creates a builder for an `n × n` block matrix.
    pub fn new(n: usize) -> Self {
        Bcsr3Builder {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.n
    }

    /// Accumulates `K[i, j] += b`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add_block(&mut self, i: usize, j: usize, b: Mat3) {
        assert!(
            i < self.n && j < self.n,
            "block ({i}, {j}) out of range for n = {}",
            self.n
        );
        let row = &mut self.rows[i];
        match row.binary_search_by_key(&j, |&(c, _)| c) {
            Ok(pos) => row[pos].1 += b,
            Err(pos) => row.insert(pos, (j, b)),
        }
    }

    /// Finalizes into an immutable [`Bcsr3`].
    pub fn build(self) -> Bcsr3 {
        let mut row_ptr = Vec::with_capacity(self.n + 1);
        row_ptr.push(0usize);
        let total: usize = self.rows.iter().map(|r| r.len()).sum();
        let mut col_idx = Vec::with_capacity(total);
        let mut blocks = Vec::with_capacity(total);
        for row in &self.rows {
            for &(c, b) in row {
                col_idx.push(c);
                blocks.push(b);
            }
            row_ptr.push(col_idx.len());
        }
        Bcsr3 {
            n: self.n,
            row_ptr,
            col_idx,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Bcsr3 {
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 0, Mat3::identity() * 2.0);
        b.add_block(0, 1, Mat3::identity());
        b.add_block(1, 0, Mat3::identity());
        b.add_block(1, 1, Mat3::identity() * 3.0);
        b.build()
    }

    #[test]
    fn builder_sums_duplicates() {
        let mut b = Bcsr3Builder::new(1);
        b.add_block(0, 0, Mat3::identity());
        b.add_block(0, 0, Mat3::identity() * 4.0);
        let m = b.build();
        assert_eq!(m.block_nnz(), 1);
        assert_eq!(m.block(0, 0).unwrap().m[2][2], 5.0);
    }

    #[test]
    fn dims_and_counts() {
        let m = two_node();
        assert_eq!(m.block_rows(), 2);
        assert_eq!(m.scalar_dim(), 6);
        assert_eq!(m.block_nnz(), 4);
        assert_eq!(m.scalar_nnz(), 36);
        assert_eq!(m.smvp_flops(), 72);
        assert_eq!(m.avg_block_degree(), 2.0);
    }

    #[test]
    fn spmv_matches_manual() {
        let m = two_node();
        let x = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)];
        let y = m.spmv_alloc(&x).unwrap();
        assert_eq!(y[0], Vec3::new(2.0, 1.0, 0.0));
        assert_eq!(y[1], Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn spmv_flat_matches_block() {
        let m = two_node();
        let xb = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 0.0)];
        let yb = m.spmv_alloc(&xb).unwrap();
        let xf = [1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        let mut yf = [0.0; 6];
        m.spmv_flat(&xf, &mut yf).unwrap();
        assert_eq!(yf[0..3], [yb[0].x, yb[0].y, yb[0].z]);
        assert_eq!(yf[3..6], [yb[1].x, yb[1].y, yb[1].z]);
    }

    #[test]
    fn scalar_csr_expansion_agrees() {
        let m = two_node();
        let s = m.to_scalar_csr();
        assert_eq!(s.rows(), 6);
        assert_eq!(s.nnz(), 36);
        let xf = [1.0, 2.0, 3.0, -1.0, 0.5, 0.0];
        let ys = s.spmv_alloc(&xf).unwrap();
        let mut yf = [0.0; 6];
        m.spmv_flat(&xf, &mut yf).unwrap();
        for (a, b) in ys.iter().zip(yf.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetry_detection() {
        assert!(two_node().is_symmetric(0.0));
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 1, Mat3::identity());
        // No (1, 0) block: structurally asymmetric.
        assert!(!b.build().is_symmetric(0.0));
    }

    #[test]
    fn asymmetric_values_detected() {
        let mut b = Bcsr3Builder::new(2);
        let mut m01 = Mat3::identity();
        m01.m[0][1] = 5.0;
        b.add_block(0, 1, m01);
        b.add_block(1, 0, Mat3::identity()); // not m01ᵀ
        b.add_block(0, 0, Mat3::identity());
        b.add_block(1, 1, Mat3::identity());
        assert!(!b.build().is_symmetric(1e-9));
    }

    #[test]
    fn spmv_dim_mismatch() {
        let m = two_node();
        assert!(m.spmv_alloc(&[Vec3::ZERO]).is_err());
        let mut y = vec![Vec3::ZERO; 3];
        assert!(m.spmv(&[Vec3::ZERO; 2], &mut y).is_err());
        let mut yf = vec![0.0; 5];
        assert!(m.spmv_flat(&[0.0; 6], &mut yf).is_err());
        assert!(m.spmv_flat(&[0.0; 4], &mut [0.0; 6]).is_err());
    }

    #[test]
    fn block_lookup() {
        let m = two_node();
        assert!(m.block(0, 1).is_some());
        assert!(m.block(5, 0).is_none());
        let mut b = Bcsr3Builder::new(2);
        b.add_block(0, 0, Mat3::identity());
        assert!(b.build().block(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = Bcsr3Builder::new(1);
        b.add_block(0, 1, Mat3::identity());
    }

    #[test]
    fn permute_symmetric_relabels_blocks() {
        let m = two_node();
        // Swap the two block rows/cols.
        let pm = m.permute_symmetric(&[1, 0]).unwrap();
        assert_eq!(pm.block(0, 0), m.block(1, 1));
        assert_eq!(pm.block(1, 1), m.block(0, 0));
        assert_eq!(pm.block(0, 1), m.block(1, 0));
        // SMVP commutes with the permutation: (PAPᵀ)(Px) = P(Ax).
        let x = [Vec3::new(1.0, 2.0, 3.0), Vec3::new(-1.0, 0.5, 0.25)];
        let y = m.spmv_alloc(&x).unwrap();
        let px = [x[1], x[0]];
        let py = pm.spmv_alloc(&px).unwrap();
        assert_eq!(py[0], y[1]);
        assert_eq!(py[1], y[0]);
    }

    #[test]
    fn permute_symmetric_identity_is_noop() {
        let m = two_node();
        assert_eq!(m.permute_symmetric(&[0, 1]).unwrap(), m);
    }

    #[test]
    fn permute_symmetric_rejects_bad_perms() {
        let m = two_node();
        assert!(m.permute_symmetric(&[0]).is_err());
        assert!(m.permute_symmetric(&[0, 0]).is_err());
        assert!(m.permute_symmetric(&[0, 2]).is_err());
    }
}
