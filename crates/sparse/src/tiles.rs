//! SIMD-friendly flat tile layout for [`Bcsr3`] and row-band cache blocking.
//!
//! [`Bcsr3`] stores its blocks as row-major [`Mat3`]s — the natural layout
//! for the scalar register-blocked microkernel, but the wrong transpose for
//! a vector unit: SIMD wants each block *column* contiguous so the three
//! `y += column · x_component` multiply-adds become one packed multiply per
//! column with `x` components broadcast across lanes. [`Bcsr3Tiles`] is the
//! kernel-ready transposition:
//!
//! * each 3×3 block becomes a **column-major 9-word tile**
//!   (`[c0r0 c0r1 c0r2  c1r0 c1r1 c1r2  c2r0 c2r1 c2r2]`), packed
//!   back-to-back at 72-byte strides so the matrix stream carries exactly
//!   the same byte traffic as the [`Mat3`] layout (a 4-lane-padded tile was
//!   measured 33% more bytes — a net loss on meshes that spill the cache);
//! * the backing store is built from [`LaneBlock`]s —
//!   `#[repr(C, align(32))]` groups of four `f64` — so the stream's base is
//!   **32-byte aligned** and construction can audit that invariant loudly
//!   ([`Bcsr3Tiles::audit`]) instead of a kernel silently taking unaligned
//!   penalties;
//! * one **zero tail tile** pads the stream so a vector load of a tile's
//!   last column may read one lane past the 72-byte tile (the idiom a
//!   4-lane load of a 3-lane column needs), and software prefetch of
//!   `tiles[k + d]` stays in bounds for any lookahead `d ≤` one tile;
//! * column indices narrow to `u32` (a 3×3-block matrix with 2³² block
//!   rows would already be a 300-GB index array — asserted at
//!   construction), shaving 4 bytes per block off the streamed index
//!   traffic next to the 72-byte tile.
//!
//! [`BandPlan`] adds row-band cache blocking on top: contiguous row bands
//! sized so each band's source-vector window stays resident in a target
//! cache level. Bands preserve row order — processing them in sequence is
//! the *same* traversal as an unblocked sweep, so banding never perturbs
//! the floating-point summation order (the bitwise-equality contract the
//! executor proves every run). The transform's benefit is locality shaping
//! only: a band's x-window can be swept ahead by software prefetch and is
//! then guaranteed to still be resident when the band's irregular gathers
//! land on it.

use crate::bcsr::Bcsr3;
use std::ops::Range;

/// Four `f64` lanes at the vector unit's natural 32-byte alignment — the
/// building block of the tile stream's backing store.
///
/// `4 × 8 = 32` bytes with 32-byte alignment means a `Vec<LaneBlock>` is
/// gap-free and its base address is always 32-byte aligned, which is the
/// whole point: reinterpreting it as a flat `&[f64]` gives an aligned,
/// contiguous value stream without padding individual 9-word tiles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C, align(32))]
pub struct LaneBlock(pub [f64; 4]);

/// The alignment (bytes) the tile stream's base is guaranteed to have.
pub const STREAM_ALIGN: usize = std::mem::align_of::<LaneBlock>();

/// Words (f64 lanes) per 3×3 tile in the flat stream.
pub const TILE_LANES: usize = 9;

/// A [`Bcsr3`] re-laid for SIMD: column-major 9-word tiles in an aligned
/// flat stream, `u32` column indices, and a zero tail tile for overhanging
/// vector loads and prefetch.
///
/// # Examples
///
/// ```
/// use quake_sparse::bcsr::Bcsr3Builder;
/// use quake_sparse::dense::{Mat3, Vec3};
/// use quake_sparse::tiles::Bcsr3Tiles;
///
/// let mut b = Bcsr3Builder::new(2);
/// b.add_block(0, 0, Mat3::identity());
/// b.add_block(1, 1, Mat3::identity());
/// let m = b.build();
/// let tiles = Bcsr3Tiles::from_bcsr(&m);
/// assert_eq!(tiles.block_rows(), 2);
/// // Tile 0 is the identity, column-major: e0, e1, e2.
/// assert_eq!(tiles.tile(0)[0], 1.0);
/// assert_eq!(tiles.tile(0)[4], 1.0);
/// assert_eq!(tiles.tile(0)[8], 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Bcsr3Tiles {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    /// Aligned backing store; the live stream is `blocks · TILE_LANES`
    /// words plus one zero tail tile, rounded up to whole lane blocks.
    store: Vec<LaneBlock>,
    /// Number of real (non-pad) tiles.
    blocks: usize,
}

impl Bcsr3Tiles {
    /// Transposes `matrix` into the flat tile layout.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has 2³² or more block rows (the `u32` column
    /// index would overflow). Debug builds additionally run the full
    /// [`audit`](Bcsr3Tiles::audit).
    pub fn from_bcsr(matrix: &Bcsr3) -> Self {
        let n = matrix.block_rows();
        assert!(
            u32::try_from(n).is_ok(),
            "matrix with {n} block rows overflows u32 column indices"
        );
        let blocks = matrix.blocks().len();
        // Live words + one zero tail tile, rounded up to whole LaneBlocks;
        // the tail tile doubles as the round-up slack's zero source.
        let words = blocks * TILE_LANES + TILE_LANES;
        let store = vec![LaneBlock::default(); words.div_ceil(4)];
        let mut tiles = Bcsr3Tiles {
            n,
            row_ptr: matrix.row_ptr().to_vec(),
            col_idx: matrix.col_idx().iter().map(|&c| c as u32).collect(),
            store,
            blocks,
        };
        {
            let values = tiles.values_mut();
            for (k, block) in matrix.blocks().iter().enumerate() {
                let tile = &mut values[k * TILE_LANES..(k + 1) * TILE_LANES];
                for (c, col) in tile.chunks_exact_mut(3).enumerate() {
                    for (r, slot) in col.iter_mut().enumerate() {
                        *slot = block.m[r][c];
                    }
                }
            }
        }
        debug_assert!(tiles.audit().is_ok(), "{:?}", tiles.audit());
        tiles
    }

    /// Block-row (and block-column) count.
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.n
    }

    /// Number of stored 3×3 tiles (excluding the tail pad).
    #[inline]
    pub fn block_nnz(&self) -> usize {
        self.blocks
    }

    /// Row pointers: tile `k` of row `r` satisfies
    /// `row_ptr[r] <= k < row_ptr[r + 1]`.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Block-column index per tile.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The flat value stream: `block_nnz()` column-major 9-word tiles
    /// followed by one zero tail tile. The base pointer is 32-byte aligned.
    #[inline]
    pub fn values(&self) -> &[f64] {
        // SAFETY: LaneBlock is #[repr(C, align(32))] over [f64; 4] with no
        // padding, so a Vec<LaneBlock> of L elements is exactly 4·L
        // contiguous f64s; the slice stays within the allocation and the
        // lifetime is tied to &self.
        unsafe {
            std::slice::from_raw_parts(self.store.as_ptr() as *const f64, self.store.len() * 4)
        }
    }

    fn values_mut(&mut self) -> &mut [f64] {
        // SAFETY: as in `values`, plus exclusive access through &mut self.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.store.as_mut_ptr() as *mut f64,
                self.store.len() * 4,
            )
        }
    }

    /// Tile `k` as a column-major 9-word array.
    ///
    /// # Panics
    ///
    /// Panics if `k >= block_nnz()`.
    #[inline]
    pub fn tile(&self, k: usize) -> &[f64; 9] {
        assert!(k < self.blocks, "tile {k} out of {} blocks", self.blocks);
        let values = self.values();
        // SAFETY: the stream holds TILE_LANES words per tile plus a tail
        // tile, so indices k·9..k·9+9 are in bounds for k < blocks.
        unsafe { &*(values.as_ptr().add(k * TILE_LANES) as *const [f64; 9]) }
    }

    /// Verifies every layout invariant the SIMD kernel relies on; returns
    /// the first violation as a message. Construction debug-asserts this,
    /// so a misaligned or short stream fails loudly instead of silently
    /// producing unaligned loads or out-of-bounds prefetch.
    pub fn audit(&self) -> Result<(), String> {
        let base = self.store.as_ptr() as usize;
        if !base.is_multiple_of(STREAM_ALIGN) {
            return Err(format!(
                "tile stream base {base:#x} is not {STREAM_ALIGN}-byte aligned"
            ));
        }
        if self.row_ptr.len() != self.n + 1 {
            return Err(format!(
                "row_ptr has {} entries for {} rows",
                self.row_ptr.len(),
                self.n
            ));
        }
        if self.row_ptr[0] != 0 || self.row_ptr[self.n] != self.blocks {
            return Err("row_ptr does not span 0..block_nnz".into());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr is not monotone".into());
        }
        if self.col_idx.len() != self.blocks {
            return Err("col_idx length does not match block count".into());
        }
        if let Some(&c) = self.col_idx.iter().find(|&&c| c as usize >= self.n) {
            return Err(format!("column {c} out of {} block rows", self.n));
        }
        // The stream must hold every tile plus one full tail tile...
        let need = (self.blocks + 1) * TILE_LANES;
        if self.values().len() < need {
            return Err(format!(
                "stream holds {} words; {need} required (tiles + tail pad)",
                self.values().len()
            ));
        }
        // ...and everything past the last real tile must be zero, so the
        // overhanging lane of a tail-column vector load multiplies to a
        // finite value and prefetch lands on mapped memory.
        if self.values()[self.blocks * TILE_LANES..]
            .iter()
            .any(|&v| v != 0.0)
        {
            return Err("tail pad is not zeroed".into());
        }
        Ok(())
    }
}

/// One cache-blocking band: a contiguous row range and the block-column
/// window its tiles gather from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Band {
    /// Block rows of the band.
    pub rows: Range<usize>,
    /// Smallest contiguous block-column range covering every gather the
    /// band performs (`x[cols]` is the band's source-vector window).
    pub cols: Range<usize>,
}

/// Row-band cache blocking: contiguous bands whose source-vector windows
/// each fit a byte budget (sized from a cache level's capacity).
///
/// Bands partition `0..block_rows` in order, so a banded sweep visits rows
/// — and therefore accumulates floating-point terms — in exactly the
/// unblocked order. The plan only *shapes locality*: a kernel can sweep
/// prefetches over `band.cols` before gathering from it.
///
/// # Examples
///
/// ```
/// use quake_sparse::bcsr::Bcsr3Builder;
/// use quake_sparse::dense::Mat3;
/// use quake_sparse::tiles::{BandPlan, Bcsr3Tiles};
///
/// let mut b = Bcsr3Builder::new(100);
/// for i in 0..100 {
///     b.add_block(i, i, Mat3::identity());
/// }
/// let tiles = Bcsr3Tiles::from_bcsr(&b.build());
/// // 24 bytes per x entry; a 240-byte window holds 10 entries.
/// let plan = BandPlan::for_tiles(&tiles, 240);
/// assert_eq!(plan.bands().len(), 10);
/// assert!(plan.bands().iter().all(|b| b.rows.len() == 10));
/// ```
#[derive(Debug, Clone)]
pub struct BandPlan {
    bands: Vec<Band>,
    window_bytes: usize,
}

/// Bytes one source-vector entry occupies (a `Vec3` of three `f64`).
pub const X_ENTRY_BYTES: usize = 24;

impl BandPlan {
    /// Plans bands over `tiles` so each band's x-window spans at most
    /// `window_bytes` (at least one row per band — a single row whose own
    /// window exceeds the budget still forms a band; blocking cannot help
    /// a row that gathers wider than the cache).
    pub fn for_tiles(tiles: &Bcsr3Tiles, window_bytes: usize) -> Self {
        let n = tiles.block_rows();
        let row_ptr = tiles.row_ptr();
        let col_idx = tiles.col_idx();
        let budget_entries = (window_bytes / X_ENTRY_BYTES).max(1);
        let mut bands = Vec::new();
        let mut start = 0usize;
        let (mut lo, mut hi) = (usize::MAX, 0usize); // current window (min, max+1)
        for r in 0..n {
            let (mut rlo, mut rhi) = (lo, hi);
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                rlo = rlo.min(c as usize);
                rhi = rhi.max(c as usize + 1);
            }
            let fits = rlo == usize::MAX || rhi - rlo <= budget_entries;
            if fits || r == start {
                // Row joins the current band (possibly overflowing a
                // single-row band, which is allowed).
                lo = rlo;
                hi = rhi;
            } else {
                bands.push(Band {
                    rows: start..r,
                    cols: if lo == usize::MAX { 0..0 } else { lo..hi },
                });
                start = r;
                lo = usize::MAX;
                hi = 0;
                for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                    lo = lo.min(c as usize);
                    hi = hi.max(c as usize + 1);
                }
            }
        }
        if start < n || n == 0 {
            bands.push(Band {
                rows: start..n,
                cols: if lo == usize::MAX { 0..0 } else { lo..hi },
            });
        }
        BandPlan {
            bands,
            window_bytes,
        }
    }

    /// The planned bands, in row order, partitioning `0..block_rows`.
    #[inline]
    pub fn bands(&self) -> &[Band] {
        &self.bands
    }

    /// The x-window byte budget the plan was sized for.
    #[inline]
    pub fn window_bytes(&self) -> usize {
        self.window_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcsr::Bcsr3Builder;
    use crate::dense::{Mat3, Vec3};

    fn dense_band_matrix(n: usize, half_band: usize) -> Bcsr3 {
        let mut b = Bcsr3Builder::new(n);
        for r in 0..n {
            let lo = r.saturating_sub(half_band);
            let hi = (r + half_band + 1).min(n);
            for c in lo..hi {
                let v = (r * 31 + c * 7 + 1) as f64;
                b.add_block(
                    r,
                    c,
                    Mat3::new([[v, -v, 0.5], [v * 2.0, v, -1.0], [0.0, v, v]]),
                );
            }
        }
        b.build()
    }

    #[test]
    fn tiles_transpose_blocks_column_major() {
        let mut b = Bcsr3Builder::new(2);
        let m = Mat3::new([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        b.add_block(0, 1, m);
        b.add_block(1, 0, Mat3::identity());
        let tiles = Bcsr3Tiles::from_bcsr(&b.build());
        assert_eq!(tiles.block_nnz(), 2);
        assert_eq!(tiles.col_idx(), &[1, 0]);
        // Column-major: [col0, col1, col2] of the row-major source.
        assert_eq!(
            tiles.tile(0),
            &[1.0, 4.0, 7.0, 2.0, 5.0, 8.0, 3.0, 6.0, 9.0]
        );
    }

    #[test]
    fn stream_is_aligned_and_tail_padded() {
        let m = dense_band_matrix(37, 3);
        let tiles = Bcsr3Tiles::from_bcsr(&m);
        tiles
            .audit()
            .expect("fresh tiles must pass their own audit");
        assert_eq!(tiles.values().as_ptr() as usize % STREAM_ALIGN, 0);
        // Tail: at least one full zero tile past the last real one.
        let live = tiles.block_nnz() * TILE_LANES;
        assert!(tiles.values().len() >= live + TILE_LANES);
        assert!(tiles.values()[live..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn audit_reports_unzeroed_tail() {
        let m = dense_band_matrix(5, 1);
        let mut tiles = Bcsr3Tiles::from_bcsr(&m);
        let live = tiles.block_nnz() * TILE_LANES;
        tiles.values_mut()[live + 2] = 1.0;
        let err = tiles.audit().unwrap_err();
        assert!(err.contains("tail pad"), "unexpected audit error: {err}");
    }

    #[test]
    fn audit_reports_bad_columns() {
        let m = dense_band_matrix(5, 1);
        let mut tiles = Bcsr3Tiles::from_bcsr(&m);
        tiles.col_idx[0] = 99;
        let err = tiles.audit().unwrap_err();
        assert!(err.contains("column 99"), "unexpected audit error: {err}");
    }

    #[test]
    fn tiles_match_source_product_bitwise() {
        // Rebuilding the product from tiles (scalar, column-major order of
        // operations chosen to match Mat3::mul_vec) must be bitwise equal.
        let m = dense_band_matrix(64, 5);
        let tiles = Bcsr3Tiles::from_bcsr(&m);
        let x: Vec<Vec3> = (0..64)
            .map(|i| Vec3::new(i as f64 * 0.37, -(i as f64), 1.0 / (i + 1) as f64))
            .collect();
        let mut want = vec![Vec3::ZERO; 64];
        m.spmv(&x, &mut want).unwrap();
        let (row_ptr, col_idx, values) = (tiles.row_ptr(), tiles.col_idx(), tiles.values());
        for r in 0..64 {
            let mut acc = [0.0f64; 3];
            for k in row_ptr[r]..row_ptr[r + 1] {
                let t = &values[k * TILE_LANES..(k + 1) * TILE_LANES];
                let v = x[col_idx[k] as usize];
                for lane in 0..3 {
                    acc[lane] += t[lane] * v.x + t[3 + lane] * v.y + t[6 + lane] * v.z;
                }
            }
            assert_eq!(acc[0].to_bits(), want[r].x.to_bits(), "row {r}");
            assert_eq!(acc[1].to_bits(), want[r].y.to_bits(), "row {r}");
            assert_eq!(acc[2].to_bits(), want[r].z.to_bits(), "row {r}");
        }
    }

    #[test]
    fn band_plan_partitions_rows_in_order() {
        let m = dense_band_matrix(200, 4);
        let tiles = Bcsr3Tiles::from_bcsr(&m);
        for window in [X_ENTRY_BYTES, 480, 4800, usize::MAX / 2] {
            let plan = BandPlan::for_tiles(&tiles, window);
            let mut next = 0;
            for band in plan.bands() {
                assert_eq!(band.rows.start, next, "bands must be contiguous");
                assert!(!band.rows.is_empty());
                next = band.rows.end;
            }
            assert_eq!(next, 200, "bands must cover every row");
        }
    }

    #[test]
    fn band_windows_cover_their_gathers() {
        let m = dense_band_matrix(150, 6);
        let tiles = Bcsr3Tiles::from_bcsr(&m);
        let plan = BandPlan::for_tiles(&tiles, 40 * X_ENTRY_BYTES);
        for band in plan.bands() {
            for r in band.rows.clone() {
                for k in tiles.row_ptr()[r]..tiles.row_ptr()[r + 1] {
                    let c = tiles.col_idx()[k] as usize;
                    assert!(
                        band.cols.contains(&c),
                        "row {r} gathers column {c} outside window {:?}",
                        band.cols
                    );
                }
            }
        }
    }

    #[test]
    fn band_windows_respect_budget_except_single_rows() {
        let m = dense_band_matrix(150, 6);
        let tiles = Bcsr3Tiles::from_bcsr(&m);
        let budget = 20 * X_ENTRY_BYTES;
        let plan = BandPlan::for_tiles(&tiles, budget);
        assert!(plan.bands().len() > 1, "budget should force multiple bands");
        for band in plan.bands() {
            if band.rows.len() > 1 {
                assert!(
                    band.cols.len() * X_ENTRY_BYTES <= budget,
                    "multi-row band {:?} window {:?} exceeds budget",
                    band.rows,
                    band.cols
                );
            }
        }
    }

    #[test]
    fn empty_matrix_plans_one_empty_band() {
        let tiles = Bcsr3Tiles::from_bcsr(&Bcsr3Builder::new(0).build());
        tiles.audit().expect("empty tiles are valid");
        let plan = BandPlan::for_tiles(&tiles, 4096);
        assert_eq!(plan.bands().len(), 1);
        assert_eq!(plan.bands()[0].rows, 0..0);
    }
}
