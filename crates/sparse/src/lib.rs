//! Sparse-matrix substrate for the Quake SMVP reproduction.
//!
//! This crate provides the matrix formats and kernels that dominate the
//! running time of the Quake family of unstructured finite-element
//! applications (O'Hallaron, Shewchuk & Gross, HPCA 1998):
//!
//! * [`coo::Coo`] — triplet staging for finite-element assembly;
//! * [`csr::Csr`] — scalar compressed sparse rows with the SMVP kernel;
//! * [`bcsr::Bcsr3`] — 3×3-block CSR matching the `3n × 3n` stiffness
//!   matrix (three degrees of freedom per mesh node);
//! * [`sym::SymCsr`] — symmetric (upper-triangle) storage as used by the
//!   Spark98 kernels;
//! * [`pattern::Pattern`] — symbolic node-adjacency structure;
//! * [`reorder`] — reverse Cuthill–McKee bandwidth reduction;
//! * [`tiles`] — SIMD-friendly flat tile layout and row-band cache
//!   blocking over [`bcsr::Bcsr3`];
//! * [`dense`] — `Vec3`/`Mat3` micro-kernels.
//!
//! # Examples
//!
//! Assemble a tiny matrix and run the paper's central kernel:
//!
//! ```
//! use quake_sparse::coo::Coo;
//! let mut k = Coo::new(3, 3);
//! k.push(0, 0, 4.0)?;
//! k.push(1, 1, 4.0)?;
//! k.push(2, 2, 4.0)?;
//! k.push(0, 1, -1.0)?;
//! k.push(1, 0, -1.0)?;
//! let k = k.to_csr();
//! let y = k.spmv_alloc(&[1.0, 1.0, 1.0])?;
//! assert_eq!(y, vec![3.0, 3.0, 4.0]);
//! # Ok::<(), quake_sparse::error::SparseError>(())
//! ```

// Indexed loops over parallel arrays are the clearest form for the numeric
// kernels in this crate; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
pub mod bcsr;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod pattern;
pub mod reorder;
pub mod sym;
pub mod tiles;

pub use bcsr::{Bcsr3, Bcsr3Builder};
pub use coo::Coo;
pub use csr::Csr;
pub use dense::{Mat3, Vec3};
pub use error::SparseError;
pub use pattern::Pattern;
pub use sym::SymCsr;
pub use tiles::{Band, BandPlan, Bcsr3Tiles};
