//! Node reordering for cache locality: reverse Cuthill–McKee (RCM).
//!
//! The paper attributes the low sustained MFLOPS of irregular codes to
//! "irregular memory reference patterns". RCM reduces the bandwidth of the
//! stiffness matrix so that the gather of `x[col]` during the SMVP touches a
//! compact window of the vector. The `quake-memsim` crate quantifies the
//! effect; the `bench_reorder` ablation benchmarks it.

use crate::pattern::Pattern;
use std::collections::VecDeque;

/// Computes a reverse Cuthill–McKee ordering of the pattern's node graph.
///
/// Returns `perm` with `perm[old] = new`. Disconnected components are each
/// ordered from a pseudo-peripheral start node; components are processed in
/// ascending order of their lowest-numbered node.
///
/// # Examples
///
/// ```
/// use quake_sparse::pattern::Pattern;
/// use quake_sparse::reorder::rcm;
/// let p = Pattern::from_edges(4, &[(0, 3), (3, 1), (1, 2)])?;
/// let perm = rcm(&p);
/// assert_eq!(perm.len(), 4);
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
pub fn rcm(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.node_count();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(pattern, start, &visited);
        // Standard Cuthill–McKee BFS with neighbors sorted by degree.
        let mut queue = VecDeque::new();
        queue.push_back(root);
        visited[root] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<usize> = pattern
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| v != u && !visited[v])
                .collect();
            nbrs.sort_unstable_by_key(|&v| pattern.degree(v));
            for v in nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    // Reverse to get RCM; convert order list to perm[old] = new.
    let mut perm = vec![0usize; n];
    for (new, &old) in order.iter().rev().enumerate() {
        perm[old] = new;
    }
    perm
}

/// Finds an approximate pseudo-peripheral node of the component containing
/// `start`, restricted to unvisited nodes: repeated BFS keeping the farthest
/// minimum-degree node of the last level.
fn pseudo_peripheral(pattern: &Pattern, start: usize, visited: &[bool]) -> usize {
    let mut root = start;
    let mut last_ecc = 0usize;
    for _ in 0..8 {
        let (levels, ecc) = bfs_levels(pattern, root, visited);
        if ecc <= last_ecc {
            break;
        }
        last_ecc = ecc;
        // Pick minimum-degree node in the last level.
        let far: Vec<usize> = levels
            .iter()
            .enumerate()
            .filter_map(|(v, &l)| (l == Some(ecc)).then_some(v))
            .collect();
        root = far
            .into_iter()
            .min_by_key(|&v| pattern.degree(v))
            .unwrap_or(root);
    }
    root
}

fn bfs_levels(pattern: &Pattern, root: usize, visited: &[bool]) -> (Vec<Option<usize>>, usize) {
    let n = pattern.node_count();
    let mut level: Vec<Option<usize>> = vec![None; n];
    level[root] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(root);
    let mut ecc = 0usize;
    while let Some(u) = queue.pop_front() {
        let lu = level[u].expect("queued nodes have levels");
        ecc = ecc.max(lu);
        for &v in pattern.neighbors(u) {
            if v != u && !visited[v] && level[v].is_none() {
                level[v] = Some(lu + 1);
                queue.push_back(v);
            }
        }
    }
    (level, ecc)
}

/// Pattern bandwidth under a permutation `perm[old] = new`:
/// `max |perm[i] − perm[j]|` over all edges.
///
/// # Panics
///
/// Panics if `perm.len() != pattern.node_count()`.
pub fn permuted_bandwidth(pattern: &Pattern, perm: &[usize]) -> usize {
    assert_eq!(
        perm.len(),
        pattern.node_count(),
        "perm length must equal node count"
    );
    pattern
        .edges()
        .map(|(i, j)| perm[i].abs_diff(perm[j]))
        .max()
        .unwrap_or(0)
}

/// The identity permutation of length `n`.
pub fn identity_perm(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &v in p {
            if v >= p.len() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    #[test]
    fn rcm_is_a_permutation() {
        let p = Pattern::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap();
        let perm = rcm(&p);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // A path graph whose identity numbering is scrambled: RCM should
        // recover near-optimal bandwidth 1.
        let edges = [
            (0usize, 7usize),
            (7, 3),
            (3, 9),
            (9, 1),
            (1, 8),
            (8, 4),
            (4, 6),
            (6, 2),
            (2, 5),
        ];
        let p = Pattern::from_edges(10, &edges).unwrap();
        let before = permuted_bandwidth(&p, &identity_perm(10));
        let perm = rcm(&p);
        let after = permuted_bandwidth(&p, &perm);
        assert!(
            after < before,
            "RCM should shrink bandwidth ({after} !< {before})"
        );
        assert_eq!(after, 1, "a path graph has optimal bandwidth 1");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let p = Pattern::from_edges(5, &[(0, 1), (3, 4)]).unwrap();
        let perm = rcm(&p);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn rcm_empty_graph() {
        let p = Pattern::from_edges(0, &[]).unwrap();
        assert!(rcm(&p).is_empty());
    }

    #[test]
    fn rcm_single_node() {
        let p = Pattern::from_edges(1, &[]).unwrap();
        assert_eq!(rcm(&p), vec![0]);
    }

    #[test]
    fn bandwidth_of_grid_improves_or_ties() {
        // 4x4 grid graph, row-major numbering (already decent: bw 4).
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * 4 + c;
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 4 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let p = Pattern::from_edges(16, &edges).unwrap();
        let before = permuted_bandwidth(&p, &identity_perm(16));
        let after = permuted_bandwidth(&p, &rcm(&p));
        assert!(after <= before);
    }

    #[test]
    #[should_panic(expected = "perm length")]
    fn permuted_bandwidth_length_mismatch_panics() {
        let p = Pattern::from_edges(3, &[(0, 1)]).unwrap();
        let _ = permuted_bandwidth(&p, &[0, 1]);
    }
}
