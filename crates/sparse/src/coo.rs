//! Coordinate (triplet) sparse format, used as an assembly staging area.
//!
//! Finite-element assembly naturally produces duplicate `(i, j)` contributions
//! (one per element sharing the edge); [`Coo::to_csr`] sums them.

use crate::csr::Csr;
use crate::error::SparseError;

/// A sparse matrix in coordinate (triplet) form.
///
/// Duplicate entries are allowed and are *summed* on conversion to CSR,
/// matching finite-element assembly semantics.
///
/// # Examples
///
/// ```
/// use quake_sparse::coo::Coo;
/// let mut a = Coo::new(2, 2);
/// a.push(0, 0, 1.0)?;
/// a.push(0, 0, 2.0)?; // duplicate: summed
/// a.push(1, 1, 5.0)?;
/// let csr = a.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// Creates an empty `rows × cols` triplet matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted separately).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no triplets are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends the contribution `a[row, col] += val`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the indices exceed the
    /// matrix dimensions.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, val));
        Ok(())
    }

    /// Iterates over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Converts to CSR, summing duplicate entries. Entries that sum to an
    /// exact `0.0` are *kept* (explicit zeros), because the sparsity pattern
    /// of a stiffness matrix is structural, not numerical.
    pub fn to_csr(&self) -> Csr {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates.
        let mut row_counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut slot = row_counts.clone();
        let mut cols = vec![0usize; self.entries.len()];
        let mut vals = vec![0f64; self.entries.len()];
        for &(r, c, v) in &self.entries {
            let s = slot[r];
            cols[s] = c;
            vals[s] = v;
            slot[r] += 1;
        }
        // Per-row: sort by column, merge duplicates into compacted output.
        let mut out_ptr = Vec::with_capacity(self.rows + 1);
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        out_ptr.push(0usize);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                out_cols.push(c);
                out_vals.push(sum);
            }
            out_ptr.push(out_cols.len());
        }
        Csr::from_raw_parts(self.rows, self.cols, out_ptr, out_cols, out_vals)
            .expect("Coo::to_csr constructs valid CSR by construction")
    }
}

impl Extend<(usize, usize, f64)> for Coo {
    /// Extends with triplets, panicking on out-of-bounds indices.
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("triplet out of bounds in Extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut a = Coo::new(3, 3);
        assert!(a.is_empty());
        a.push(0, 1, 2.0).unwrap();
        a.push(2, 2, 1.0).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
    }

    #[test]
    fn push_out_of_bounds_errors() {
        let mut a = Coo::new(2, 2);
        let err = a.push(2, 0, 1.0).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
        let err = a.push(0, 5, 1.0).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn to_csr_sums_duplicates() {
        let mut a = Coo::new(2, 3);
        a.push(0, 2, 1.0).unwrap();
        a.push(0, 2, 4.0).unwrap();
        a.push(0, 0, 2.0).unwrap();
        a.push(1, 1, -1.0).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 2), 5.0);
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(1, 1), -1.0);
        assert_eq!(csr.get(1, 0), 0.0);
    }

    #[test]
    fn to_csr_rows_sorted_by_column() {
        let mut a = Coo::new(1, 5);
        for &c in &[4usize, 1, 3, 0] {
            a.push(0, c, c as f64).unwrap();
        }
        let csr = a.to_csr();
        let cols: Vec<usize> = csr.row(0).pairs().map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 1, 3, 4]);
    }

    #[test]
    fn to_csr_keeps_explicit_zero_sums() {
        let mut a = Coo::new(1, 1);
        a.push(0, 0, 1.0).unwrap();
        a.push(0, 0, -1.0).unwrap();
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 1, "structural zero kept");
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let a = Coo::new(4, 4);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 4);
    }

    #[test]
    fn extend_works() {
        let mut a = Coo::new(2, 2);
        a.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(a.len(), 2);
    }
}
