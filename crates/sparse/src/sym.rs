//! Symmetric sparse storage: diagonal plus strict upper triangle.
//!
//! The Quake stiffness matrix is symmetric, and the Spark98 kernels exploit
//! this by storing each off-diagonal entry once and applying it to both `y_i`
//! (as `K_ij·x_j`) and `y_j` (as `K_ij·x_i`). This halves memory traffic at
//! the cost of a scattered write — a tradeoff the memory-system simulator
//! can quantify.

use crate::csr::Csr;
use crate::error::SparseError;

/// A symmetric sparse matrix storing the diagonal and strict upper triangle.
///
/// # Examples
///
/// ```
/// use quake_sparse::coo::Coo;
/// use quake_sparse::sym::SymCsr;
/// let mut a = Coo::new(2, 2);
/// a.push(0, 0, 2.0)?;
/// a.push(0, 1, 1.0)?;
/// a.push(1, 0, 1.0)?;
/// a.push(1, 1, 3.0)?;
/// let s = SymCsr::from_csr(&a.to_csr(), 1e-12)?;
/// assert_eq!(s.spmv_alloc(&[1.0, 1.0])?, vec![3.0, 4.0]);
/// # Ok::<(), quake_sparse::error::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymCsr {
    n: usize,
    diag: Vec<f64>,
    // Strict upper triangle in CSR by row.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SymCsr {
    /// Builds symmetric storage from a full CSR matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSymmetric`] if the matrix is not symmetric
    /// to within absolute tolerance `tol`, or
    /// [`SparseError::DimensionMismatch`] if it is not square.
    pub fn from_csr(full: &Csr, tol: f64) -> Result<Self, SparseError> {
        if full.rows() != full.cols() {
            return Err(SparseError::DimensionMismatch {
                expected: full.rows(),
                found: full.cols(),
                what: "square matrix",
            });
        }
        if !full.is_symmetric(tol) {
            return Err(SparseError::NotSymmetric);
        }
        let n = full.rows();
        let mut diag = vec![0.0; n];
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for r in 0..n {
            for (c, v) in full.row(r).pairs() {
                if c == r {
                    diag[r] = v;
                } else if c > r {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Ok(SymCsr {
            n,
            diag,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of *stored* entries: diagonal plus strict upper triangle.
    pub fn stored_nnz(&self) -> usize {
        self.n + self.col_idx.len()
    }

    /// Number of *logical* entries of the full matrix
    /// (assuming a fully populated diagonal).
    pub fn logical_nnz(&self) -> usize {
        self.n + 2 * self.col_idx.len()
    }

    /// Symmetric SMVP `y = Ax`: each stored off-diagonal entry updates both
    /// `y[r]` and `y[c]`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on length mismatch.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) -> Result<(), SparseError> {
        if x.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: x.len(),
                what: "x vector",
            });
        }
        if y.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: y.len(),
                what: "y vector",
            });
        }
        for r in 0..self.n {
            y[r] = self.diag[r] * x[r];
        }
        for r in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                acc += v * x[c];
                y[c] += v * x[r];
            }
            y[r] += acc;
        }
        Ok(())
    }

    /// Symmetric SMVP returning a freshly allocated `y`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn spmv_alloc(&self, x: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut y = vec![0.0; self.n];
        self.spmv(x, &mut y)?;
        Ok(y)
    }

    /// Expands back to full CSR storage.
    pub fn to_full_csr(&self) -> Csr {
        let mut coo = crate::coo::Coo::with_capacity(self.n, self.n, self.logical_nnz());
        for r in 0..self.n {
            coo.push(r, r, self.diag[r]).expect("in range");
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                coo.push(r, c, v).expect("in range");
                coo.push(c, r, v).expect("in range");
            }
        }
        coo.to_csr()
    }

    /// The diagonal entries.
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// Borrowed views of the raw storage arrays, for kernels that traverse
    /// the structure directly (e.g. the threaded Spark98-style kernels).
    pub fn parts(&self) -> SymParts<'_> {
        SymParts {
            diag: &self.diag,
            row_ptr: &self.row_ptr,
            col_idx: &self.col_idx,
            values: &self.values,
        }
    }
}

/// Borrowed views of a [`SymCsr`]'s storage: the diagonal plus the strict
/// upper triangle in CSR form.
#[derive(Debug, Clone, Copy)]
pub struct SymParts<'a> {
    /// Diagonal entries (length `dim`).
    pub diag: &'a [f64],
    /// Upper-triangle row pointers (length `dim + 1`).
    pub row_ptr: &'a [usize],
    /// Upper-triangle column indices.
    pub col_idx: &'a [usize],
    /// Upper-triangle values.
    pub values: &'a [f64],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sym3() -> Csr {
        // [ 2 1 0 ]
        // [ 1 3 4 ]
        // [ 0 4 6 ]
        let mut a = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 4.0),
            (2, 1, 4.0),
            (2, 2, 6.0),
        ] {
            a.push(r, c, v).unwrap();
        }
        a.to_csr()
    }

    #[test]
    fn storage_counts() {
        let s = SymCsr::from_csr(&sym3(), 0.0).unwrap();
        assert_eq!(s.dim(), 3);
        assert_eq!(s.stored_nnz(), 5); // 3 diag + 2 upper
        assert_eq!(s.logical_nnz(), 7);
    }

    #[test]
    fn spmv_matches_full() {
        let full = sym3();
        let s = SymCsr::from_csr(&full, 0.0).unwrap();
        let x = [1.0, -2.0, 0.5];
        assert_eq!(s.spmv_alloc(&x).unwrap(), full.spmv_alloc(&x).unwrap());
    }

    #[test]
    fn rejects_asymmetric() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 1.0).unwrap();
        assert_eq!(
            SymCsr::from_csr(&a.to_csr(), 1e-12),
            Err(SparseError::NotSymmetric)
        );
    }

    #[test]
    fn rejects_non_square() {
        let a = Coo::new(2, 3).to_csr();
        assert!(matches!(
            SymCsr::from_csr(&a, 0.0),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn round_trip_to_full() {
        let full = sym3();
        let s = SymCsr::from_csr(&full, 0.0).unwrap();
        let back = s.to_full_csr();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(back.get(r, c), full.get(r, c));
            }
        }
    }

    #[test]
    fn diag_accessor() {
        let s = SymCsr::from_csr(&sym3(), 0.0).unwrap();
        assert_eq!(s.diag(), &[2.0, 3.0, 6.0]);
    }

    #[test]
    fn spmv_dim_mismatch() {
        let s = SymCsr::from_csr(&sym3(), 0.0).unwrap();
        assert!(s.spmv_alloc(&[1.0]).is_err());
        let mut y = vec![0.0; 2];
        assert!(s.spmv(&[1.0, 2.0, 3.0], &mut y).is_err());
    }

    #[test]
    fn missing_diagonal_treated_as_zero() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 1.0).unwrap();
        a.push(1, 0, 1.0).unwrap();
        let s = SymCsr::from_csr(&a.to_csr(), 0.0).unwrap();
        assert_eq!(s.diag(), &[0.0, 0.0]);
        assert_eq!(s.spmv_alloc(&[3.0, 5.0]).unwrap(), vec![5.0, 3.0]);
    }
}
